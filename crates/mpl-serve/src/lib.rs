//! A streaming decomposition service over
//! [`DecompositionSession`](mpl_core::DecompositionSession).
//!
//! The decomposition pipeline is batch-first: a session coalesces the
//! component tasks of many layouts into one largest-first queue and drains
//! it on a shared executor.  This crate puts a long-running TCP front end
//! on top: clients stream `submit` requests, the server coalesces whatever
//! is pending into shared batches on its persistent executors, and each
//! layout's progress and final coloring stream back to the connection that
//! submitted it.  Everything is plain `std` — no crates.io dependencies —
//! like the rest of the workspace.
//!
//! # Wire protocol
//!
//! One frame = one JSON object per line, terminated by `\n` (a trailing
//! `\r` is tolerated, and frames have a configurable size cap).  TCP chunk
//! boundaries carry no meaning: the [`codec::FrameDecoder`] reassembles
//! frames however the bytes arrive.  Every frame has a `"type"` field.
//!
//! Client → server ([`protocol::Request`]):
//!
//! ```text
//! {"type":"submit","id":"j1","layout_text":"# layout a\n0 0 0 20 20\n",
//!  "k":4,"algorithm":"linear","alpha":0.1,"executor":"pool",
//!  "progress":true,"verify":true,"deadline_ms":5000}
//! {"type":"cancel","id":"j1"}
//! {"type":"ping"}
//! {"type":"shutdown"}
//! ```
//!
//! A `submit` carries exactly one layout source — `layout_text` (the
//! workspace's text format), `gds_base64` (a base64 GDSII stream) or
//! `path` (a file on the server) — plus optional per-request parameters:
//! `k` (default 4), `algorithm` (`ilp` | `sdp-backtrack` | `sdp-greedy` |
//! `linear`, default `sdp-backtrack`), `alpha` (default 0.1), `executor`
//! (`pool` | `serial`, default `pool`), `progress` (stream per-component
//! ticks, default false), `verify` (server-side spacing re-check,
//! default false) and `deadline_ms` (soft compute budget, measured from
//! acceptance; omitted = none).  The `id` is an arbitrary client-chosen
//! string echoed on every frame about that submission.
//!
//! # Deadlines and cancellation
//!
//! Both ride the same [`CancelToken`](mpl_core::CancelToken), polled by
//! every engine on its existing amortised clock checks: components that
//! have not started are skipped, components in flight stop at the next
//! poll, and components already colored keep their colors.  The two
//! resolve differently at the terminal frame:
//!
//! * a `cancel` frame for a pending id fires its token, and the
//!   submission resolves with a single terminal `cancelled` frame —
//!   `{"type":"cancelled","id":"j1","components_completed":2,
//!   "components_skipped":7,"bnb_nodes":412}` — in place of its `result`.
//!   Exactly one terminal frame is sent however the cancel races
//!   completion; cancelling an unknown or already-resolved id answers a
//!   non-fatal typed error with code `cancel`.
//! * an expired `deadline_ms` without an explicit cancel resolves as a
//!   partial `result` carrying `"deadline_exceeded":true` (and
//!   `"cancelled":true` per component in its stats), with
//!   `components_completed` / `components_skipped` counting the split.
//!   Skipped components report the all-zero coloring.
//!
//! A reader that disconnects auto-cancels every submission still pending
//! on that connection — with the reader gone, nothing could cancel or
//! collect them any more.
//!
//! # Output backpressure
//!
//! Each connection owns a bounded output queue
//! ([`ServerConfig::output_queue_frames`]) drained by a dedicated writer
//! thread.  When a slow or stalled reader fills it, progress-class frames
//! (`progress`, `tile_progress`, `hier_progress`) are dropped first —
//! newest first, counted in `dropped_progress` — and `queued` / `result`
//! / `cancelled` / `error` frames are never dropped: producers briefly
//! wait for space instead, and the write timeout
//! ([`ServerConfig::write_timeout`]) remains the last-resort guard that
//! declares a connection dead.
//!
//! Server → client ([`protocol::Response`]), per submission in order:
//!
//! ```text
//! {"type":"queued","id":"j1","layout":"a","vertices":9,"components":3}
//! {"type":"progress","id":"j1","done":1,"total":3}      (opt-in, per component)
//! {"type":"result","id":"j1","layout":"a","k":4,"algorithm":"Linear",
//!  "executor":"threads:2","vertices":9,"components":3,"conflicts":0,
//!  "stitches":1,"cost":0.1,"color_seconds":0.002,
//!  "spacing_violations":0,"memo_hits":1,"memo_misses":2,
//!  "colors":[0,1,2,0,3,1,2,0,1]}
//! ```
//!
//! `memo_hits` / `memo_misses` count the layout's components stamped from
//! (respectively colored into) the server's shared translation-canonical
//! memo cache — see the `mpl-memo` crate and the memoization section of
//! the workspace README.
//!
//! or, when anything goes wrong, a typed error frame that leaves the
//! connection usable:
//!
//! ```text
//! {"type":"error","id":"j1","code":"config",
//!  "message":"invalid configuration: mask count K must be in 2..=255, got 0"}
//! ```
//!
//! Error `code`s ([`protocol::ErrorCode`]): `protocol` (malformed frame or
//! field), `parse` (bad layout text / truncated GDS), `config` (the
//! pipeline's typed [`ConfigError`](mpl_core::ConfigError)), `decompose`
//! (planning failures such as degenerate shapes), `io` (unreadable
//! server-side `path`) and `cancel` (a `cancel` frame naming an unknown or
//! already-resolved id — non-fatal).  `ping` answers with the shared memo
//! cache's statistics plus the server's health counters —
//! `{"type":"pong","cache":{"entries":3,"capacity":65536,"hits":7,
//! "misses":3,"evictions":0,"bytes":1544},"queued_frames":0,
//! "dropped_progress":0,"cancelled_requests":0,
//! "deadline_exceeded_requests":0}` — where `queued_frames` is the current
//! depth summed over every connection's output queue, `dropped_progress`
//! counts progress-class frames shed to backpressure, and the last two
//! count submissions that resolved `cancelled` / deadline-expired.
//! `shutdown` answers `{"type":"shutting_down"}` before the server drains
//! its last batch and exits; concurrent `shutdown` frames from different
//! connections shut the server down exactly once.
//!
//! # Determinism
//!
//! Components are independent by construction, so a layout's coloring is a
//! function of the layout and its parameters alone: whatever batch the
//! scheduler coalesces a submission into, however submissions interleave
//! across connections, and whichever executor drains them, the served
//! result is bit-identical to a direct
//! [`DecompositionSession`](mpl_core::DecompositionSession) run
//! (`tests/serve_integration.rs` at the workspace root pins this for all
//! four engines).
//!
//! # Quick start
//!
//! ```
//! use mpl_serve::client::Client;
//! use mpl_serve::protocol::{LayoutSource, Request, Response, SubmitRequest};
//! use mpl_serve::server::{Server, ServerConfig};
//!
//! let handle = Server::spawn(&ServerConfig::default())?; // ephemeral port
//! let mut client = Client::connect(handle.addr())?;
//! let layout = "# layout demo\n0 0 0 20 20\n1 100 0 120 20\n";
//! client.send(&Request::Submit(SubmitRequest::new(
//!     "demo",
//!     LayoutSource::Text(layout.to_string()),
//! )))?;
//! loop {
//!     match client.recv()? {
//!         Response::Result(result) => {
//!             assert_eq!(result.id, "demo");
//!             assert_eq!(result.conflicts, 0);
//!             break;
//!         }
//!         Response::Error { message, .. } => panic!("{message}"),
//!         _ => {} // queued / progress
//!     }
//! }
//! client.shutdown()?;
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod client;
pub mod codec;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use codec::{encode_frame, FrameDecoder, FrameError};
pub use json::{Json, JsonParseError};
pub use protocol::{
    algorithm_wire_name, decode_request, decode_response, encode_request, encode_response,
    CachePayload, ErrorCode, ExecutorChoice, HierPayload, LayoutSource, Request, Response,
    ResultPayload, ServeError, SubmitRequest, TilePayload,
};
pub use server::{Server, ServerConfig, ServerHandle};
