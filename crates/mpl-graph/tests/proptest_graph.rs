//! Property-based tests for the graph substrate.
//!
//! The key invariants checked here back the correctness arguments of the
//! decomposition flow: the Gomory–Hu tree must report exactly the same
//! min-cut values as direct max-flow computations, and biconnected /
//! connected component structure must be consistent with reachability.

use mpl_graph::{connected_components, Biconnectivity, GomoryHuTree, Graph, MaxFlow};
use proptest::prelude::*;

/// A random sparse-to-medium-density graph on up to 12 vertices described by
/// an adjacency bit matrix.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs = n * (n - 1) / 2;
        prop::collection::vec(prop::bool::weighted(0.45), pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if bits[k] {
                        g.add_edge(i, j);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gomory_hu_matches_direct_min_cuts(g in arb_graph(9)) {
        let tree = GomoryHuTree::build(&g);
        let mut flow = MaxFlow::from_unit_graph(&g);
        for u in 0..g.vertex_count() {
            for v in (u + 1)..g.vertex_count() {
                prop_assert_eq!(tree.min_cut(u, v), flow.max_flow(u, v));
            }
        }
    }

    #[test]
    fn min_cut_zero_iff_different_components(g in arb_graph(10)) {
        let tree = GomoryHuTree::build(&g);
        let comps = connected_components(&g);
        for u in 0..g.vertex_count() {
            for v in (u + 1)..g.vertex_count() {
                let same = comps.component_of(u) == comps.component_of(v);
                prop_assert_eq!(tree.min_cut(u, v) > 0, same);
            }
        }
    }

    #[test]
    fn cut_removal_groups_refine_connected_components(g in arb_graph(10), k in 1i64..5) {
        let tree = GomoryHuTree::build(&g);
        let comps = connected_components(&g);
        for group in tree.components_after_removing(k) {
            // All vertices in a surviving group are in the same connected
            // component (their pairwise min cut is >= k >= 1 > 0).
            if group.len() > 1 {
                let c0 = comps.component_of(group[0]);
                for &v in &group[1..] {
                    prop_assert_eq!(comps.component_of(v), c0);
                }
            }
        }
    }

    #[test]
    fn cut_removal_keeps_high_connectivity_pairs_together(g in arb_graph(8), k in 1i64..5) {
        let tree = GomoryHuTree::build(&g);
        let groups = tree.components_after_removing(k);
        let group_of = |v: usize| groups.iter().position(|grp| grp.contains(&v)).expect("covered");
        let mut flow = MaxFlow::from_unit_graph(&g);
        for u in 0..g.vertex_count() {
            for v in (u + 1)..g.vertex_count() {
                // Lemma 2 direction used by the paper: a pair with min cut >= k
                // must stay in the same group after (k-1)-cut removal.
                if flow.max_flow(u, v) >= k {
                    prop_assert_eq!(group_of(u), group_of(v));
                }
            }
        }
    }

    #[test]
    fn bridges_disconnect_their_endpoints(g in arb_graph(10)) {
        let bc = Biconnectivity::compute(&g);
        let comps_before = connected_components(&g).component_count();
        for &(u, v) in bc.bridges() {
            // Rebuild the graph without one copy of that bridge.
            let mut h = Graph::new(g.vertex_count());
            let mut skipped = false;
            for &(a, b) in g.edges() {
                if !skipped && ((a, b) == (u, v) || (a, b) == (v, u)) {
                    skipped = true;
                    continue;
                }
                h.add_edge(a, b);
            }
            let comps_after = connected_components(&h).component_count();
            prop_assert_eq!(comps_after, comps_before + 1);
        }
    }

    #[test]
    fn biconnected_components_partition_edges(g in arb_graph(10)) {
        let bc = Biconnectivity::compute(&g);
        let mut seen = vec![false; g.edge_count()];
        for comp in bc.components() {
            for &e in comp {
                prop_assert!(!seen[e], "edge {} appears in two components", e);
                seen[e] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every edge belongs to a component");
    }

    #[test]
    fn connected_components_agree_with_bfs_reachability(g in arb_graph(10)) {
        let comps = connected_components(&g);
        // BFS from vertex 0 and compare membership.
        let mut reach = vec![false; g.vertex_count()];
        let mut stack = vec![0usize];
        reach[0] = true;
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if !reach[v] {
                    reach[v] = true;
                    stack.push(v);
                }
            }
        }
        for (v, &reachable) in reach.iter().enumerate() {
            prop_assert_eq!(reachable, comps.component_of(v) == comps.component_of(0));
        }
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph(10)) {
        let n = g.vertex_count();
        let subset: Vec<usize> = (0..n).filter(|v| v % 2 == 0).collect();
        let (sub, original) = g.induced_subgraph(&subset);
        for i in 0..sub.vertex_count() {
            for j in 0..sub.vertex_count() {
                if i != j {
                    prop_assert_eq!(sub.has_edge(i, j), g.has_edge(original[i], original[j]));
                }
            }
        }
    }
}
