//! Flat compressed-sparse-row (CSR) adjacency.
//!
//! The decomposition hot path builds an adjacency view of a small graph for
//! *every* component it colors — once per peel, once per biconnectivity
//! split, once per (K−1)-cut division.  Materialising a `Vec<Vec<usize>>`
//! for each of those views costs one heap allocation per vertex; a CSR view
//! is two flat arrays (`offsets`, `targets`) that can be rebuilt in place,
//! so a long batch re-uses the same two buffers for every component.
//!
//! Neighbour order is **stable**: vertex `v`'s neighbour list enumerates the
//! edges incident to `v` in the order the edges were supplied, exactly as
//! pushing onto per-vertex `Vec`s would.  Every algorithm that used to walk
//! `Vec<Vec<usize>>` adjacency therefore visits neighbours in the identical
//! order after switching to [`Csr`].

/// A compressed-sparse-row adjacency view over dense vertex ids `0..n`.
///
/// Each undirected edge `(u, v)` contributes two arcs: `v` in `u`'s
/// neighbour list and `u` in `v`'s.  Parallel edges keep their multiplicity.
///
/// # Example
///
/// ```
/// use mpl_graph::Csr;
///
/// let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
/// assert_eq!(csr.neighbors(1), &[0, 2, 3]);
/// assert_eq!(csr.degree(0), 1);
/// assert_eq!(csr.vertex_count(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes `targets`; length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated neighbour lists.
    targets: Vec<usize>,
}

impl Csr {
    /// An empty adjacency over zero vertices.
    pub fn new() -> Self {
        Csr::default()
    }

    /// Builds the adjacency of `n` vertices from an undirected edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut csr = Csr::new();
        csr.rebuild(n, edges.iter().copied());
        csr
    }

    /// Rebuilds the adjacency in place, reusing the existing buffers.
    ///
    /// `edges` is consumed twice (degree counting, then placement), so it
    /// must be cheaply cloneable — slice iterators, `chain`s and `filter`s
    /// of them all are.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn rebuild<I>(&mut self, n: usize, edges: I)
    where
        I: Iterator<Item = (usize, usize)> + Clone,
    {
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        // Pass 1: count degrees into offsets[v + 1].
        let mut arcs = 0usize;
        for (u, v) in edges.clone() {
            assert!(
                u < n && v < n,
                "edge ({u}, {v}) out of range for {n} vertices"
            );
            self.offsets[u + 1] += 1;
            self.offsets[v + 1] += 1;
            arcs += 2;
        }
        for v in 0..n {
            let base = self.offsets[v];
            self.offsets[v + 1] += base;
        }
        // Pass 2: place arcs, using offsets[v] itself as the write cursor of
        // row v.  After placement offsets[v] has advanced to the row's end
        // (= the start of row v + 1), so one right-shift restores it —
        // no cursor allocation needed.
        self.targets.clear();
        self.targets.resize(arcs, 0);
        for (u, v) in edges {
            self.targets[self.offsets[u]] = v;
            self.offsets[u] += 1;
            self.targets[self.offsets[v]] = u;
            self.offsets[v] += 1;
        }
        for v in (1..=n).rev() {
            self.offsets[v] = self.offsets[v - 1];
        }
        if n > 0 {
            self.offsets[0] = 0;
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The neighbours of `v`, in edge-supply order.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The degree of `v` (parallel edges counted individually).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Total number of stored arcs (twice the edge count).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.vertex_count(), 0);
        assert_eq!(csr.arc_count(), 0);
    }

    #[test]
    fn neighbor_order_matches_push_order() {
        // The reference semantics: adjacency built by pushing both
        // directions of every edge in order.
        let edges = [(2usize, 0usize), (0, 1), (2, 1), (0, 3)];
        let n = 4;
        let mut reference: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v) in &edges {
            reference[u].push(v);
            reference[v].push(u);
        }
        let csr = Csr::from_edges(n, &edges);
        for (v, expected) in reference.iter().enumerate() {
            assert_eq!(csr.neighbors(v), expected.as_slice(), "vertex {v}");
            assert_eq!(csr.degree(v), expected.len());
        }
    }

    #[test]
    fn parallel_edges_keep_multiplicity() {
        let csr = Csr::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(csr.neighbors(0), &[1, 1]);
        assert_eq!(csr.degree(1), 2);
        assert_eq!(csr.arc_count(), 4);
    }

    #[test]
    fn rebuild_reuses_buffers_for_smaller_graphs() {
        let mut csr = Csr::from_edges(5, &[(0, 4), (1, 2), (2, 3)]);
        let capacity = csr.targets.capacity();
        csr.rebuild(3, [(0usize, 1usize)].into_iter());
        assert_eq!(csr.vertex_count(), 3);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(2), &[] as &[usize]);
        assert!(csr.targets.capacity() >= 2);
        assert!(capacity >= csr.targets.capacity());
    }

    #[test]
    fn rebuild_accepts_filtered_chained_iterators() {
        let conflict = [(0usize, 1usize), (1, 2)];
        let stitch = [(2usize, 3usize)];
        let mut csr = Csr::new();
        csr.rebuild(
            4,
            conflict
                .iter()
                .copied()
                .chain(stitch.iter().copied())
                .filter(|&(u, _)| u != 0),
        );
        assert_eq!(csr.neighbors(0), &[] as &[usize]);
        assert_eq!(csr.neighbors(2), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }
}
