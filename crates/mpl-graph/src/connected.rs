//! Connected components (independent component computation).

use crate::Graph;

/// The result of a connected-component decomposition.
///
/// Independent component computation is the first and cheapest graph-division
/// technique in the decomposition flow: color assignment is solved separately
/// per component, so splitting into components shrinks the instances handed
/// to the expensive solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectedComponents {
    label: Vec<usize>,
    count: usize,
}

impl ConnectedComponents {
    /// The number of components.
    pub fn component_count(&self) -> usize {
        self.count
    }

    /// The component label (in `0..component_count()`) of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn component_of(&self, v: usize) -> usize {
        self.label[v]
    }

    /// The component labels for every vertex.
    pub fn labels(&self) -> &[usize] {
        &self.label
    }

    /// Groups vertex ids by component, in ascending vertex order within each
    /// component.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &c) in self.label.iter().enumerate() {
            groups[c].push(v);
        }
        groups
    }
}

/// Computes the connected components of `graph` with an iterative DFS.
///
/// # Example
///
/// ```
/// use mpl_graph::{connected_components, Graph};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// let comps = connected_components(&g);
/// assert_eq!(comps.component_count(), 3);
/// assert_eq!(comps.groups(), vec![vec![0, 1], vec![2], vec![3]]);
/// ```
pub fn connected_components(graph: &Graph) -> ConnectedComponents {
    let n = graph.vertex_count();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = count;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in graph.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    ConnectedComponents { label, count }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        let comps = connected_components(&Graph::new(0));
        assert_eq!(comps.component_count(), 0);
        assert!(comps.groups().is_empty());
    }

    #[test]
    fn isolated_vertices_are_singleton_components() {
        let comps = connected_components(&Graph::new(3));
        assert_eq!(comps.component_count(), 3);
        assert_eq!(comps.labels(), &[0, 1, 2]);
    }

    #[test]
    fn path_is_one_component() {
        let mut g = Graph::new(5);
        for i in 0..4 {
            g.add_edge(i, i + 1);
        }
        let comps = connected_components(&g);
        assert_eq!(comps.component_count(), 1);
        assert!(comps.labels().iter().all(|&c| c == 0));
    }

    #[test]
    fn two_cliques_are_two_components() {
        let mut g = Graph::new(6);
        for i in 0..3 {
            for j in (i + 1)..3 {
                g.add_edge(i, j);
                g.add_edge(i + 3, j + 3);
            }
        }
        let comps = connected_components(&g);
        assert_eq!(comps.component_count(), 2);
        assert_eq!(comps.component_of(0), comps.component_of(2));
        assert_ne!(comps.component_of(0), comps.component_of(5));
        assert_eq!(comps.groups(), vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn labels_are_dense_and_start_at_zero() {
        let mut g = Graph::new(7);
        g.add_edge(5, 6);
        g.add_edge(2, 3);
        let comps = connected_components(&g);
        let mut labels: Vec<usize> = comps.labels().to_vec();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels, (0..comps.component_count()).collect::<Vec<_>>());
    }
}
