//! Articulation points, bridges, and 2-vertex-connected components.

use crate::Graph;

/// The biconnectivity structure of an undirected graph: articulation points
/// (cut vertices), bridges (1-cuts), and the partition of edges into
/// 2-vertex-connected (biconnected) components.
///
/// Splitting the decomposition graph at articulation points is one of the
/// graph-division techniques inherited from triple-patterning decomposers:
/// each biconnected component can be colored independently and the solutions
/// merged at the shared cut vertices without creating new conflicts (a cut
/// vertex can always keep the color chosen in the first component because
/// color permutations within the second component are free).
///
/// # Example
///
/// ```
/// use mpl_graph::{Biconnectivity, Graph};
///
/// // Two triangles sharing vertex 2 ("bow-tie").
/// let mut g = Graph::new(5);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 0);
/// g.add_edge(2, 3);
/// g.add_edge(3, 4);
/// g.add_edge(4, 2);
/// let bc = Biconnectivity::compute(&g);
/// assert!(bc.is_articulation(2));
/// assert_eq!(bc.components().len(), 2);
/// assert!(bc.bridges().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Biconnectivity {
    articulation: Vec<bool>,
    bridges: Vec<(usize, usize)>,
    /// Edge-index partition: each biconnected component is a list of edge
    /// indices into the original graph's edge list.
    components: Vec<Vec<usize>>,
}

impl Biconnectivity {
    /// Runs Tarjan's biconnectivity algorithm (iterative, so deep structures
    /// cannot overflow the call stack) on `graph`.
    pub fn compute(graph: &Graph) -> Self {
        Biconnectivity::compute_from_edges(graph.vertex_count(), graph.edges())
    }

    /// Runs the same algorithm directly on an undirected edge list over
    /// vertices `0..n` (the hot-path entry point: no [`Graph`] needs to be
    /// materialised per component).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn compute_from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        // Flat (neighbor, edge-index) incidence in counting-sort CSR form —
        // per-vertex entries keep edge order, exactly like push lists.
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in edges {
            assert!(
                u < n && v < n,
                "edge ({u}, {v}) out of range for {n} vertices"
            );
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for v in 0..n {
            let base = offsets[v];
            offsets[v + 1] += base;
        }
        let mut incidence = vec![(0usize, 0usize); edges.len() * 2];
        for (index, &(u, v)) in edges.iter().enumerate() {
            incidence[offsets[u]] = (v, index);
            offsets[u] += 1;
            incidence[offsets[v]] = (u, index);
            offsets[v] += 1;
        }
        for v in (1..=n).rev() {
            offsets[v] = offsets[v - 1];
        }
        if n > 0 {
            offsets[0] = 0;
        }
        let mut state = State {
            edges,
            inc_offsets: offsets,
            incidence,
            disc: vec![usize::MAX; n],
            low: vec![0; n],
            articulation: vec![false; n],
            bridges: Vec::new(),
            components: Vec::new(),
            edge_stack: Vec::new(),
            timer: 0,
        };
        for root in 0..n {
            if state.disc[root] == usize::MAX {
                state.dfs(root);
            }
        }
        Biconnectivity {
            articulation: state.articulation,
            bridges: state.bridges,
            components: state.components,
        }
    }

    /// Returns `true` if `v` is an articulation point (cut vertex).
    pub fn is_articulation(&self, v: usize) -> bool {
        self.articulation[v]
    }

    /// All articulation points, in ascending order.
    pub fn articulation_points(&self) -> Vec<usize> {
        self.articulation
            .iter()
            .enumerate()
            .filter_map(|(v, &a)| a.then_some(v))
            .collect()
    }

    /// All bridge edges `(u, v)` — edges whose removal disconnects the graph
    /// (the paper's 1-cuts).
    pub fn bridges(&self) -> &[(usize, usize)] {
        &self.bridges
    }

    /// The biconnected components as lists of edge indices into the original
    /// graph's [`Graph::edges`] list.
    pub fn components(&self) -> &[Vec<usize>] {
        &self.components
    }

    /// The biconnected components as lists of vertex ids (each sorted and
    /// deduplicated).  Isolated vertices do not appear in any component.
    pub fn vertex_components(&self, graph: &Graph) -> Vec<Vec<usize>> {
        self.vertex_components_from_edges(graph.edges())
    }

    /// [`Biconnectivity::vertex_components`] over a plain edge list (must be
    /// the list the structure was computed from).
    pub fn vertex_components_from_edges(&self, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        self.components
            .iter()
            .map(|edge_indices| {
                let mut vertices: Vec<usize> = edge_indices
                    .iter()
                    .flat_map(|&e| {
                        let (u, v) = edges[e];
                        [u, v]
                    })
                    .collect();
                vertices.sort_unstable();
                vertices.dedup();
                vertices
            })
            .collect()
    }
}

struct State<'a> {
    edges: &'a [(usize, usize)],
    inc_offsets: Vec<usize>,
    incidence: Vec<(usize, usize)>,
    disc: Vec<usize>,
    low: Vec<usize>,
    articulation: Vec<bool>,
    bridges: Vec<(usize, usize)>,
    components: Vec<Vec<usize>>,
    edge_stack: Vec<usize>,
    timer: usize,
}

struct Frame {
    vertex: usize,
    parent_edge: Option<usize>,
    next_neighbor: usize,
    child_count: usize,
}

impl State<'_> {
    /// Iterative DFS implementing the standard low-link biconnectivity
    /// computation.
    fn dfs(&mut self, root: usize) {
        let mut stack = vec![Frame {
            vertex: root,
            parent_edge: None,
            next_neighbor: 0,
            child_count: 0,
        }];
        self.disc[root] = self.timer;
        self.low[root] = self.timer;
        self.timer += 1;

        while let Some(frame) = stack.last_mut() {
            let u = frame.vertex;
            if frame.next_neighbor < self.inc_offsets[u + 1] - self.inc_offsets[u] {
                let slot = self.inc_offsets[u] + frame.next_neighbor;
                frame.next_neighbor += 1;
                let (v, edge_index) = self.incidence[slot];
                if Some(edge_index) == frame.parent_edge {
                    continue;
                }
                if self.disc[v] == usize::MAX {
                    self.edge_stack.push(edge_index);
                    frame.child_count += 1;
                    self.disc[v] = self.timer;
                    self.low[v] = self.timer;
                    self.timer += 1;
                    stack.push(Frame {
                        vertex: v,
                        parent_edge: Some(edge_index),
                        next_neighbor: 0,
                        child_count: 0,
                    });
                } else if self.disc[v] < self.disc[u] {
                    // Back edge.
                    self.edge_stack.push(edge_index);
                    self.low[u] = self.low[u].min(self.disc[v]);
                }
            } else {
                // Post-order: propagate low-link to the parent.
                let finished = stack.pop().expect("frame exists");
                let u = finished.vertex;
                let stack_depth = stack.len();
                if let Some(parent_frame) = stack.last_mut() {
                    let p = parent_frame.vertex;
                    self.low[p] = self.low[p].min(self.low[u]);
                    let parent_edge = finished.parent_edge.expect("non-root has parent edge");
                    if self.low[u] >= self.disc[p] {
                        // p is an articulation point (unless it is the root
                        // with a single child, handled below) and the edges
                        // on the stack down to parent_edge form a biconnected
                        // component.
                        if !(stack_depth == 1 && parent_frame.child_count == 1) {
                            self.articulation[p] = true;
                        }
                        let mut component = Vec::new();
                        while let Some(&top) = self.edge_stack.last() {
                            self.edge_stack.pop();
                            component.push(top);
                            if top == parent_edge {
                                break;
                            }
                        }
                        if !component.is_empty() {
                            self.components.push(component);
                        }
                    }
                    if self.low[u] > self.disc[p] {
                        let (a, b) = self.edges[parent_edge];
                        self.bridges.push((a, b));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn path_every_edge_is_a_bridge() {
        let g = path(5);
        let bc = Biconnectivity::compute(&g);
        assert_eq!(bc.bridges().len(), 4);
        assert_eq!(bc.articulation_points(), vec![1, 2, 3]);
        assert_eq!(bc.components().len(), 4);
    }

    #[test]
    fn cycle_has_no_bridges_or_articulation_points() {
        let g = cycle(6);
        let bc = Biconnectivity::compute(&g);
        assert!(bc.bridges().is_empty());
        assert!(bc.articulation_points().is_empty());
        assert_eq!(bc.components().len(), 1);
        assert_eq!(bc.components()[0].len(), 6);
    }

    #[test]
    fn bow_tie_splits_into_two_triangles() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 2);
        let bc = Biconnectivity::compute(&g);
        assert_eq!(bc.articulation_points(), vec![2]);
        let mut comps = bc.vertex_components(&g);
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![2, 3, 4]]);
    }

    #[test]
    fn two_cycles_joined_by_a_bridge() {
        // 0-1-2-0  3-4-5-3  bridge 2-3
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        g.add_edge(2, 3);
        let bc = Biconnectivity::compute(&g);
        assert_eq!(bc.bridges(), &[(2, 3)]);
        assert_eq!(bc.articulation_points(), vec![2, 3]);
        assert_eq!(bc.components().len(), 3);
    }

    #[test]
    fn disconnected_graph_handles_each_part() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(4, 5);
        let bc = Biconnectivity::compute(&g);
        assert_eq!(bc.bridges(), &[(4, 5)]);
        assert!(bc.articulation_points().is_empty());
        assert_eq!(bc.components().len(), 2);
    }

    #[test]
    fn isolated_vertices_produce_no_components() {
        let g = Graph::new(3);
        let bc = Biconnectivity::compute(&g);
        assert!(bc.components().is_empty());
        assert!(bc.bridges().is_empty());
        assert!(bc.articulation_points().is_empty());
    }

    #[test]
    fn complete_graph_is_one_component() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j);
            }
        }
        let bc = Biconnectivity::compute(&g);
        assert!(bc.articulation_points().is_empty());
        assert!(bc.bridges().is_empty());
        assert_eq!(bc.components().len(), 1);
        assert_eq!(bc.components()[0].len(), 10);
    }

    #[test]
    fn star_center_is_articulation() {
        let mut g = Graph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        let bc = Biconnectivity::compute(&g);
        assert_eq!(bc.articulation_points(), vec![0]);
        assert_eq!(bc.bridges().len(), 4);
        assert_eq!(bc.components().len(), 4);
    }
}
