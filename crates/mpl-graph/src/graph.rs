//! A compact undirected graph.

use crate::Csr;
use std::fmt;
use std::sync::OnceLock;

/// An undirected graph over dense vertex ids `0..n`, stored as an edge list
/// plus a lazily built flat [`Csr`] adjacency (no per-vertex `Vec`s).
///
/// Parallel edges are permitted (and are counted separately by [`Graph::degree`]);
/// self-loops are rejected because they are meaningless for both coloring and
/// cut computation.
///
/// # Example
///
/// ```
/// use mpl_graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    vertex_count: usize,
    edges: Vec<(usize, usize)>,
    /// Adjacency, built on first query and invalidated by mutation.
    /// Neighbour order matches edge-insertion order exactly, like the
    /// per-vertex push lists this replaced.
    adjacency: OnceLock<Csr>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            vertex_count: n,
            edges: Vec::new(),
            adjacency: OnceLock::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges (parallel edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_count == 0
    }

    /// Adds a vertex and returns its id.
    pub fn add_vertex(&mut self) -> usize {
        self.adjacency.take();
        self.vertex_count += 1;
        self.vertex_count - 1
    }

    /// Adds an undirected edge between `u` and `v` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> usize {
        assert!(u != v, "self-loop {u}-{v} is not allowed");
        assert!(
            u < self.vertex_count && v < self.vertex_count,
            "edge ({u}, {v}) out of range for {} vertices",
            self.vertex_count
        );
        self.adjacency.take();
        let index = self.edges.len();
        self.edges.push((u, v));
        index
    }

    /// The flat CSR adjacency, built on first use.
    #[inline]
    pub fn adjacency(&self) -> &Csr {
        self.adjacency
            .get_or_init(|| Csr::from_edges(self.vertex_count, &self.edges))
    }

    /// The neighbours of `u` (with multiplicity for parallel edges), in
    /// edge-insertion order.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        self.adjacency().neighbors(u)
    }

    /// The degree of `u` (parallel edges counted individually).
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency().degree(u)
    }

    /// Returns `true` if at least one edge joins `u` and `v`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        // Scan the smaller neighbour list.
        if self.degree(u) <= self.degree(v) {
            self.neighbors(u).contains(&v)
        } else {
            self.neighbors(v).contains(&u)
        }
    }

    /// The edge list, in insertion order.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> std::ops::Range<usize> {
        0..self.vertex_count
    }

    /// Builds the subgraph induced by `vertices`.
    ///
    /// Returns the induced graph together with the mapping from new (dense)
    /// vertex ids to the original ids, in the order given by `vertices`.
    /// Duplicate entries in `vertices` are ignored after the first
    /// occurrence.
    ///
    /// # Panics
    ///
    /// Panics if any referenced vertex is out of range.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut new_id = vec![usize::MAX; self.vertex_count];
        let mut original = Vec::with_capacity(vertices.len());
        for &v in vertices {
            assert!(v < self.vertex_count, "vertex {v} out of range");
            if new_id[v] == usize::MAX {
                new_id[v] = original.len();
                original.push(v);
            }
        }
        let mut sub = Graph::new(original.len());
        for &(u, v) in &self.edges {
            if new_id[u] != usize::MAX && new_id[v] != usize::MAX {
                sub.add_edge(new_id[u], new_id[v]);
            }
        }
        (sub, original)
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // The adjacency cache is derived data; equality is the edge list.
        self.vertex_count == other.vertex_count && self.edges == other.edges
    }
}

impl Eq for Graph {}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(|V|={}, |E|={})",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.to_string(), "Graph(|V|=4, |E|=3)");
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = Graph::new(0);
        assert!(g.is_empty());
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn mutation_after_query_invalidates_the_adjacency_cache() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert_eq!(g.neighbors(0), &[1]); // builds the cache
        g.add_edge(0, 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        let v = g.add_vertex();
        g.add_edge(1, v);
        assert_eq!(g.neighbors(1), &[0, 3]);
    }

    #[test]
    fn equality_ignores_the_adjacency_cache() {
        let mut a = Graph::new(3);
        a.add_edge(0, 1);
        let mut b = Graph::new(3);
        b.add_edge(0, 1);
        let _ = a.neighbors(0); // build a's cache only
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_edges_are_counted() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_are_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 0);
        let (sub, original) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(original, vec![1, 2, 3]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2); // 1-2 and 2-3
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let (sub, original) = g.induced_subgraph(&[1, 1, 0]);
        assert_eq!(original, vec![1, 0]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn vertices_iterates_all_ids() {
        let g = Graph::new(3);
        assert_eq!(g.vertices().collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
