//! Graph algorithms substrate for multiple-patterning layout decomposition.
//!
//! The layout decomposition flow of Yu & Pan (DAC 2014) reduces mask
//! assignment to coloring a *decomposition graph* and relies on a collection
//! of classical graph algorithms to divide that graph into small components
//! before coloring:
//!
//! * [`Graph`] — a compact undirected graph over a flat [`Csr`] adjacency.
//! * [`connected_components`] — independent component computation.
//! * [`Biconnectivity`] — articulation points, bridges and 2-vertex-connected
//!   components (Tarjan's algorithm).
//! * [`MaxFlow`] — Dinic's blocking-flow maximum-flow algorithm, used both
//!   directly for minimum s–t cuts and as the engine for Gomory–Hu trees.
//! * [`GomoryHuTree`] — Gusfield's "very simple" all-pairs minimum-cut tree,
//!   the data structure behind the paper's GH-tree based 3-cut removal.
//! * [`threshold_components`] — the capped-flow shortcut for the (K−1)-cut
//!   division: the same partition the GH tree yields at threshold K, using
//!   at most K augmenting paths per max-flow query.
//!
//! All algorithms are deterministic and allocation-conscious; vertex ids are
//! dense `usize` indices `0..n`.
//!
//! # Example
//!
//! ```
//! use mpl_graph::{connected_components, Graph};
//!
//! let mut g = Graph::new(5);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(3, 4);
//! let comps = connected_components(&g);
//! assert_eq!(comps.component_count(), 2);
//! assert_eq!(comps.component_of(0), comps.component_of(2));
//! assert_ne!(comps.component_of(0), comps.component_of(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biconnected;
mod clique;
mod connected;
mod csr;
mod gomory_hu;
mod graph;
mod maxflow;
mod partition;
mod simplify;

pub use biconnected::Biconnectivity;
pub use clique::{conflict_lower_bound, greedy_disjoint_cliques};
pub use connected::{connected_components, ConnectedComponents};
pub use csr::Csr;
pub use gomory_hu::GomoryHuTree;
pub use graph::Graph;
pub use maxflow::MaxFlow;
pub use partition::{threshold_components, threshold_components_with, ThresholdScratch};
pub use simplify::{simplify, Simplification, SimplifyOp};
