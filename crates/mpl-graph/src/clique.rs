//! Greedy clique cover — a certified lower bound on unresolved conflicts.
//!
//! A clique of `K + 1` mutually conflicting vertices cannot be colored with
//! `K` masks without at least one conflict; more generally a clique of size
//! `c` forces at least `c − K` conflicts.  A set of *vertex-disjoint*
//! cliques therefore certifies a lower bound on the conflict count of any
//! K-coloring — the bound the integration tests use to confirm that the
//! exact engine's results are genuinely optimal and that the heuristics are
//! compared against a sound baseline.

use crate::Graph;

/// Greedily extracts vertex-disjoint cliques, largest first.
///
/// The procedure repeatedly grows a maximal clique from the highest-degree
/// unused vertex and removes it from further consideration.  It is a
/// heuristic: the returned cliques are maximal but not necessarily maximum,
/// so the derived bound is valid but possibly loose.
pub fn greedy_disjoint_cliques(graph: &Graph) -> Vec<Vec<usize>> {
    let n = graph.vertex_count();
    let mut used = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let mut cliques = Vec::new();
    for &seed in &order {
        if used[seed] {
            continue;
        }
        let mut clique = vec![seed];
        // Candidate set: unused neighbours of the seed (deduplicated).
        let mut candidates: Vec<usize> = graph
            .neighbors(seed)
            .iter()
            .copied()
            .filter(|&v| !used[v] && v != seed)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        // Grow the clique by repeatedly taking the candidate with the most
        // neighbours among the remaining candidates (a standard maximal-
        // clique heuristic that avoids being distracted by bridge edges).
        while !candidates.is_empty() {
            let best = candidates
                .iter()
                .copied()
                .max_by_key(|&c| {
                    candidates
                        .iter()
                        .filter(|&&other| other != c && graph.has_edge(c, other))
                        .count()
                })
                .expect("candidates is non-empty");
            clique.push(best);
            candidates.retain(|&c| c != best && graph.has_edge(c, best));
        }
        for &member in &clique {
            used[member] = true;
        }
        if clique.len() > 1 {
            cliques.push(clique);
        }
    }
    cliques
}

/// A certified lower bound on the number of conflicts of any `k`-coloring of
/// `graph`: the sum of `max(0, |clique| − k)` over a set of vertex-disjoint
/// cliques.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn conflict_lower_bound(graph: &Graph, k: usize) -> usize {
    assert!(k >= 1, "at least one color is required");
    greedy_disjoint_cliques(graph)
        .iter()
        .map(|clique| clique.len().saturating_sub(k))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn empty_and_edgeless_graphs_have_no_cliques() {
        assert!(greedy_disjoint_cliques(&Graph::new(0)).is_empty());
        assert!(greedy_disjoint_cliques(&Graph::new(5)).is_empty());
        assert_eq!(conflict_lower_bound(&Graph::new(5), 4), 0);
    }

    #[test]
    fn single_clique_is_recovered_whole() {
        let g = clique_graph(6);
        let cliques = greedy_disjoint_cliques(&g);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 6);
        assert_eq!(conflict_lower_bound(&g, 4), 2);
        assert_eq!(conflict_lower_bound(&g, 6), 0);
    }

    #[test]
    fn disjoint_cliques_are_all_found() {
        // Two K5s joined by a single edge.
        let mut g = Graph::new(10);
        for base in [0, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.add_edge(base + i, base + j);
                }
            }
        }
        g.add_edge(4, 5);
        let cliques = greedy_disjoint_cliques(&g);
        assert_eq!(cliques.iter().filter(|c| c.len() == 5).count(), 2);
        assert_eq!(conflict_lower_bound(&g, 4), 2);
    }

    #[test]
    fn bound_is_sound_for_a_cycle() {
        // A 5-cycle is 3-colorable: the bound must be 0 for k >= 2 because
        // the largest clique is an edge.
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        assert_eq!(conflict_lower_bound(&g, 4), 0);
        assert_eq!(conflict_lower_bound(&g, 2), 0);
        // With one color every edge conflicts; the clique bound only
        // certifies the disjoint-edge part (2 disjoint edges).
        assert_eq!(conflict_lower_bound(&g, 1), 2);
    }

    #[test]
    fn cliques_are_vertex_disjoint() {
        let mut g = clique_graph(7);
        g.add_edge(0, 7 - 1); // already present; add some extra structure
        let cliques = greedy_disjoint_cliques(&g);
        let mut seen = std::collections::HashSet::new();
        for clique in &cliques {
            for &v in clique {
                assert!(seen.insert(v), "vertex {v} appears in two cliques");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn zero_colors_panics() {
        let _ = conflict_lower_bound(&Graph::new(3), 0);
    }
}
