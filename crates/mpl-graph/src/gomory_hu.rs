//! Gomory–Hu trees via Gusfield's algorithm.

use crate::{Graph, MaxFlow};

/// A Gomory–Hu tree: a weighted tree on the vertices of an undirected graph
/// such that, for any pair `(u, v)`, the minimum-weight edge on the tree path
/// between `u` and `v` equals the minimum cut between `u` and `v` in the
/// original graph.
///
/// The paper's GH-tree based 3-cut removal (Algorithm 3, Section 4.1) builds
/// this tree on every decomposition-graph component, removes all tree edges
/// with weight less than K (K = 4 for quadruple patterning), colors the
/// resulting sub-components independently, and rejoins them with a color
/// rotation that never increases the conflict count (Lemma 1 / Theorem 2).
///
/// The construction is Gusfield's simplification of the original Gomory–Hu
/// procedure: exactly `n − 1` max-flow computations on the *unmodified*
/// graph, with no vertex contraction.
///
/// # Example
///
/// ```
/// use mpl_graph::{GomoryHuTree, Graph};
///
/// // Two triangles joined by a single edge: the joining edge is a 1-cut.
/// let mut g = Graph::new(6);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 0);
/// g.add_edge(3, 4);
/// g.add_edge(4, 5);
/// g.add_edge(5, 3);
/// g.add_edge(2, 3);
/// let tree = GomoryHuTree::build(&g);
/// assert_eq!(tree.min_cut(0, 5), 1);
/// assert_eq!(tree.min_cut(0, 1), 2);
/// // Removing tree edges with weight < 2 cuts the 1-cut joining the
/// // triangles and keeps each (2-edge-connected) triangle together.
/// let comps = tree.components_after_removing(2);
/// assert_eq!(comps.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GomoryHuTree {
    /// `parent[v]` is the tree parent of `v`; `parent[0] == 0`.
    parent: Vec<usize>,
    /// `weight[v]` is the weight of the tree edge `(v, parent[v])`;
    /// `weight[0]` is unused.
    weight: Vec<i64>,
}

impl GomoryHuTree {
    /// Builds the Gomory–Hu tree of `graph` with unit edge capacities, using
    /// Gusfield's algorithm on top of Dinic max-flow.
    ///
    /// For a graph with `n` vertices this solves `n − 1` max-flow problems.
    /// Disconnected graphs are supported: vertices in different components
    /// are joined by tree edges of weight 0.
    pub fn build(graph: &Graph) -> Self {
        let n = graph.vertex_count();
        let mut parent = vec![0usize; n];
        let mut weight = vec![0i64; n];
        if n == 0 {
            return GomoryHuTree { parent, weight };
        }
        let mut flow = MaxFlow::from_unit_graph(graph);
        for i in 1..n {
            let p = parent[i];
            let f = flow.max_flow(i, p);
            weight[i] = f;
            let side = flow.min_cut_side(i);
            // Re-hang the children of p that fall on i's side of the cut.
            for j in (i + 1)..n {
                if side[j] && parent[j] == p {
                    parent[j] = i;
                }
            }
            // Standard Gusfield adjustment for the grandparent relation.
            if side[parent[p]] && p != 0 {
                parent[i] = parent[p];
                parent[p] = i;
                weight[i] = weight[p];
                weight[p] = f;
            }
        }
        GomoryHuTree { parent, weight }
    }

    /// Number of vertices in the tree.
    pub fn vertex_count(&self) -> usize {
        self.parent.len()
    }

    /// The tree edges as `(child, parent, weight)` triples (vertex 0 is the
    /// root and contributes no edge).
    pub fn edges(&self) -> Vec<(usize, usize, i64)> {
        (1..self.parent.len())
            .map(|v| (v, self.parent[v], self.weight[v]))
            .collect()
    }

    /// The minimum cut value between `u` and `v` in the original graph:
    /// the minimum edge weight on the tree path between them.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either vertex is out of range.
    pub fn min_cut(&self, u: usize, v: usize) -> i64 {
        assert!(u != v, "min cut requires two distinct vertices");
        assert!(
            u < self.vertex_count() && v < self.vertex_count(),
            "vertex out of range"
        );
        // Walk both vertices towards the root, tracking the minimum edge
        // weight seen from each side; the tree is small so an ancestor-set
        // walk is sufficient.
        let depth = |mut x: usize| {
            let mut d = 0usize;
            while self.parent[x] != x && x != 0 {
                x = self.parent[x];
                d += 1;
            }
            d
        };
        let (mut a, mut b) = (u, v);
        let (mut da, mut db) = (depth(a), depth(b));
        let mut best = i64::MAX;
        while da > db {
            best = best.min(self.weight[a]);
            a = self.parent[a];
            da -= 1;
        }
        while db > da {
            best = best.min(self.weight[b]);
            b = self.parent[b];
            db -= 1;
        }
        while a != b {
            best = best.min(self.weight[a]);
            best = best.min(self.weight[b]);
            a = self.parent[a];
            b = self.parent[b];
        }
        best
    }

    /// Removes every tree edge whose weight is **strictly less than**
    /// `threshold` and returns the resulting groups of vertices.
    ///
    /// With `threshold = K` this implements the paper's (K−1)-cut removal:
    /// vertices whose pairwise min-cut is at least K stay together, everyone
    /// else is split apart (Lemma 2).
    pub fn components_after_removing(&self, threshold: i64) -> Vec<Vec<usize>> {
        let n = self.vertex_count();
        let mut dsu = DisjointSet::new(n);
        for v in 1..n {
            if self.weight[v] >= threshold {
                dsu.union(v, self.parent[v]);
            }
        }
        dsu.groups()
    }
}

/// A minimal union–find used to group vertices after cut-edge removal.
#[derive(Debug, Clone)]
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for v in 0..n {
            let root = self.find(v);
            by_root.entry(root).or_default().push(v);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaxFlow;

    /// Cross-check every pair against a direct Dinic min-cut.
    fn assert_tree_matches_direct_cuts(graph: &Graph) {
        let tree = GomoryHuTree::build(graph);
        let mut flow = MaxFlow::from_unit_graph(graph);
        for u in 0..graph.vertex_count() {
            for v in (u + 1)..graph.vertex_count() {
                let direct = flow.max_flow(u, v);
                assert_eq!(
                    tree.min_cut(u, v),
                    direct,
                    "min cut mismatch for pair ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn cycle_all_pairs_cut_is_two() {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        assert_tree_matches_direct_cuts(&g);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.min_cut(0, 3), 2);
    }

    #[test]
    fn complete_graph_cuts_equal_degree() {
        let n = 6;
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        assert_tree_matches_direct_cuts(&g);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.min_cut(2, 4), (n - 1) as i64);
        // No edge has weight < 4, so nothing splits at threshold 4.
        assert_eq!(tree.components_after_removing(4).len(), 1);
    }

    #[test]
    fn paper_figure6_style_graph() {
        // Fig. 6 of the paper: a 5-vertex graph whose GH-tree has edges of
        // weight 3 and 4; removing edges with weight < 4 yields three
        // components.  We model a similar structure: a K4 on {0,1,2,3} with a
        // pendant triangle-ish attachment at 4 connected by 3 edges.
        let mut g = Graph::new(5);
        // K4 core.
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j);
            }
        }
        // Vertex 4 attached with 3 edges -> min cut 3 from 4 to the core.
        g.add_edge(4, 0);
        g.add_edge(4, 1);
        g.add_edge(4, 2);
        assert_tree_matches_direct_cuts(&g);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.min_cut(4, 3), 3);
        // Vertices 0, 1, 2 are pairwise 4-edge-connected; vertices 3 and 4
        // have degree 3, so the 3-cut removal isolates each of them.
        let mut comps = tree.components_after_removing(4);
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn two_triangles_with_bridge() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        g.add_edge(2, 3);
        assert_tree_matches_direct_cuts(&g);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.min_cut(0, 4), 1);
        let comps = tree.components_after_removing(2);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn disconnected_graph_gets_zero_weight_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.min_cut(0, 2), 0);
        assert_eq!(tree.min_cut(0, 1), 1);
        let comps = tree.components_after_removing(1);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty = GomoryHuTree::build(&Graph::new(0));
        assert_eq!(empty.vertex_count(), 0);
        assert!(empty.edges().is_empty());
        let single = GomoryHuTree::build(&Graph::new(1));
        assert_eq!(single.vertex_count(), 1);
        assert_eq!(single.components_after_removing(4), vec![vec![0]]);
    }

    #[test]
    fn random_graphs_match_direct_cuts() {
        // Deterministic pseudo-random graphs (linear congruential) to avoid
        // an external RNG dependency in unit tests.
        let mut seed: u64 = 0x243F6A8885A308D3;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for case in 0..8 {
            let n = 5 + case % 4;
            let mut g = Graph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 100 < 55 {
                        g.add_edge(i, j);
                    }
                }
            }
            assert_tree_matches_direct_cuts(&g);
        }
    }

    #[test]
    fn components_after_removing_threshold_zero_keeps_everything_together() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let tree = GomoryHuTree::build(&g);
        // threshold 0: even zero-weight edges survive, all in one group.
        assert_eq!(tree.components_after_removing(0).len(), 1);
    }
}
