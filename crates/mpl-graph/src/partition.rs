//! Threshold connectivity partition via capped max-flows.
//!
//! The paper's (K−1)-cut removal (Algorithm 3) only needs the partition of
//! a component into groups whose pairwise min-cut is at least K — the
//! *values* of the cuts below K are irrelevant.  Min-cut values obey the
//! ultrametric-like inequality `mincut(u, w) ≥ min(mincut(u, v),
//! mincut(v, w))`, so "min-cut ≥ K" is an equivalence relation and the
//! groups are exactly the components of the Gomory–Hu tree after removing
//! edges lighter than K ([`GomoryHuTree::components_after_removing`]).
//!
//! [`threshold_components`] computes that partition directly with **capped**
//! max-flows ([`MaxFlow::max_flow_capped`]): a flow query stops after K
//! augmenting paths, because reaching K already proves "≥ K".  Every query
//! either certifies one vertex into its representative's group (`f ≥ K`) or
//! yields a genuine cut splitting the working set (`f < K`, so the flow is
//! maximal and the residual side is a real min cut — and every pair across
//! it has min-cut < K).  Each query therefore consumes one of at most
//! `n − 1` certificates, and with unit capacities each pushes at most K
//! augmenting paths: O(n·K) augmentations total instead of the O(n·F) of
//! full Gusfield max-flows.
//!
//! [`GomoryHuTree::components_after_removing`]:
//! crate::GomoryHuTree::components_after_removing

use crate::{Graph, MaxFlow};

/// Reusable buffers for [`threshold_components_with`], so a batch of
/// components performs O(1) allocations per partition call.
#[derive(Debug, Clone, Default)]
pub struct ThresholdScratch {
    side: Vec<bool>,
    order: Vec<usize>,
    tmp: Vec<usize>,
    ranges: Vec<(usize, usize)>,
}

/// Partitions `0..n` into the groups of pairwise min-cut ≥ `threshold`
/// (unit capacities over the undirected `edges`), reusing `flow` and
/// `scratch` buffers.
///
/// Groups are returned with ascending vertex ids, ordered by their smallest
/// member — bit-identical to
/// [`GomoryHuTree::components_after_removing`](crate::GomoryHuTree::components_after_removing)
/// on the same graph (the partition is unique, and so is this ordering).
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`.
pub fn threshold_components_with(
    flow: &mut MaxFlow,
    scratch: &mut ThresholdScratch,
    n: usize,
    edges: &[(usize, usize)],
    threshold: i64,
) -> Vec<Vec<usize>> {
    if n == 0 {
        return Vec::new();
    }
    if threshold <= 0 {
        // Even zero-weight (disconnected) tree edges survive a non-positive
        // threshold: everything stays together.
        return vec![(0..n).collect()];
    }
    flow.assign_unit_graph(n, edges);
    scratch.order.clear();
    scratch.order.extend(0..n);
    scratch.ranges.clear();
    scratch.ranges.push((0, n));
    let mut groups: Vec<Vec<usize>> = Vec::new();

    while let Some((start, mut end)) = scratch.ranges.pop() {
        let s = scratch.order[start];
        let mut i = start + 1;
        while i < end {
            let t = scratch.order[i];
            let f = flow.max_flow_capped(s, t, threshold);
            if f >= threshold {
                // Certified: mincut(s, t) ≥ threshold, so t joins s's group.
                i += 1;
                continue;
            }
            // The flow is maximal (f < cap), so the residual side is a
            // genuine minimum s–t cut of value < threshold: every pair
            // across it is separated for good.  Split the working set,
            // keeping ascending order on both sides.  Everything already
            // certified sits on s's side (a cut < threshold cannot separate
            // a pair with min-cut ≥ threshold from s).
            flow.min_cut_side_into(s, &mut scratch.side);
            scratch.tmp.clear();
            scratch.tmp.extend(
                scratch.order[start..end]
                    .iter()
                    .copied()
                    .filter(|&v| scratch.side[v]),
            );
            let near = scratch.tmp.len();
            scratch.tmp.extend(
                scratch.order[start..end]
                    .iter()
                    .copied()
                    .filter(|&v| !scratch.side[v]),
            );
            scratch.order[start..end].copy_from_slice(&scratch.tmp);
            debug_assert!(near >= i - start, "a certified vertex crossed the cut");
            scratch.ranges.push((start + near, end));
            end = start + near;
            // `i` is unchanged: the certified vertices are exactly the set
            // members smaller than `t`, which the stable split keeps at
            // positions start+1 .. i.
        }
        groups.push(scratch.order[start..end].to_vec());
    }
    groups.sort_by_key(|group| group[0]);
    groups
}

/// Convenience wrapper over [`threshold_components_with`] with fresh
/// buffers.
pub fn threshold_components(graph: &Graph, threshold: i64) -> Vec<Vec<usize>> {
    let mut flow = MaxFlow::new(0);
    let mut scratch = ThresholdScratch::default();
    threshold_components_with(
        &mut flow,
        &mut scratch,
        graph.vertex_count(),
        graph.edges(),
        threshold,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GomoryHuTree;

    fn assert_matches_gomory_hu(graph: &Graph, thresholds: std::ops::RangeInclusive<i64>) {
        let tree = GomoryHuTree::build(graph);
        for threshold in thresholds {
            let expected = tree.components_after_removing(threshold);
            let got = threshold_components(graph, threshold);
            assert_eq!(got, expected, "threshold {threshold} on {graph}");
        }
    }

    #[test]
    fn two_triangles_with_bridge_split_at_two() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        g.add_edge(2, 3);
        assert_matches_gomory_hu(&g, 0..=4);
    }

    #[test]
    fn k4_with_pendant_matches() {
        let mut g = Graph::new(5);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j);
            }
        }
        g.add_edge(4, 0);
        g.add_edge(4, 1);
        g.add_edge(4, 2);
        assert_matches_gomory_hu(&g, 1..=5);
    }

    #[test]
    fn disconnected_and_empty_graphs() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_matches_gomory_hu(&g, 0..=2);
        assert!(threshold_components(&Graph::new(0), 4).is_empty());
        assert_eq!(threshold_components(&Graph::new(1), 4), vec![vec![0usize]]);
    }

    #[test]
    fn random_graphs_match_gomory_hu_for_every_threshold() {
        let mut seed: u64 = 0x243F6A8885A308D3;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for case in 0..12 {
            let n = 4 + case % 6;
            let mut g = Graph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 100 < 45 {
                        g.add_edge(i, j);
                    }
                }
            }
            assert_matches_gomory_hu(&g, 0..=6);
        }
    }

    #[test]
    fn augmenting_paths_stay_under_n_times_k() {
        let n = 12;
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        let mut flow = MaxFlow::new(0);
        let mut scratch = ThresholdScratch::default();
        for k in 1..=5i64 {
            let before = flow.augmenting_paths();
            let groups = threshold_components_with(&mut flow, &mut scratch, n, g.edges(), k);
            assert_eq!(groups.len(), 1, "K{n} is {k}-connected");
            let pushed = flow.augmenting_paths() - before;
            assert!(
                pushed <= (n as u64) * (k as u64),
                "k={k}: {pushed} paths exceeds n*k"
            );
        }
    }

    #[test]
    fn scratch_reuse_across_graphs_is_clean() {
        let mut flow = MaxFlow::new(0);
        let mut scratch = ThresholdScratch::default();
        let mut big = Graph::new(8);
        for i in 0..8 {
            big.add_edge(i, (i + 1) % 8);
        }
        let first = threshold_components_with(&mut flow, &mut scratch, 8, big.edges(), 2);
        assert_eq!(first.len(), 1);
        let second = threshold_components_with(&mut flow, &mut scratch, 3, &[(0, 1)], 2);
        assert_eq!(second, vec![vec![0], vec![1], vec![2]]);
    }
}
