//! Dinic's blocking-flow maximum-flow algorithm.

use crate::Graph;

const INF: i64 = i64::MAX / 4;

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    capacity: i64,
    flow: i64,
}

/// A maximum-flow solver (Dinic's algorithm) over a directed flow network.
///
/// The decomposition flow uses max-flow in two places:
///
/// * directly, to compute minimum s–t cuts between candidate vertices, and
/// * inside the (K−1)-cut graph division — either via the full
///   [Gomory–Hu tree](crate::GomoryHuTree) or via the capped
///   [`threshold_components`](crate::threshold_components) partition, which
///   only asks "is the min cut at least K?" and therefore uses
///   [`MaxFlow::max_flow_capped`] to stop after at most K augmenting paths.
///
/// Undirected edges are modelled as two directed arcs of equal capacity, per
/// the standard reduction.  Adjacency is stored as a flat CSR over arc ids,
/// frozen on the first flow query and rebuilt automatically if edges are
/// added afterwards; [`MaxFlow::clear`] resets the network for a new graph
/// while keeping every buffer's capacity, so batch workloads build one
/// network per component without re-allocating.
///
/// # Example
///
/// ```
/// use mpl_graph::MaxFlow;
///
/// // A 4-vertex diamond: two disjoint paths from 0 to 3.
/// let mut flow = MaxFlow::new(4);
/// flow.add_undirected_edge(0, 1, 1);
/// flow.add_undirected_edge(1, 3, 1);
/// flow.add_undirected_edge(0, 2, 1);
/// flow.add_undirected_edge(2, 3, 1);
/// assert_eq!(flow.max_flow(0, 3), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MaxFlow {
    vertex_count: usize,
    edges: Vec<FlowEdge>,
    /// CSR over arc ids: `arcs[offsets[v]..offsets[v + 1]]` are the arcs
    /// leaving `v`, in insertion order.  Rebuilt lazily when stale.
    offsets: Vec<usize>,
    arcs: Vec<usize>,
    adjacency_stale: bool,
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: Vec<usize>,
    augmenting_paths: u64,
}

impl Default for MaxFlow {
    /// An empty zero-vertex network (populate via [`MaxFlow::assign_unit_graph`]).
    fn default() -> Self {
        MaxFlow::new(0)
    }
}

impl MaxFlow {
    /// Creates an empty flow network with `n` vertices.
    pub fn new(n: usize) -> Self {
        MaxFlow {
            vertex_count: n,
            edges: Vec::new(),
            offsets: Vec::new(),
            arcs: Vec::new(),
            adjacency_stale: true,
            level: vec![-1; n],
            iter: vec![0; n],
            queue: Vec::new(),
            augmenting_paths: 0,
        }
    }

    /// Resets the network to `n` vertices and no edges, keeping the
    /// capacity of every internal buffer (and the cumulative
    /// [`MaxFlow::augmenting_paths`] counter).
    pub fn clear(&mut self, n: usize) {
        self.vertex_count = n;
        self.edges.clear();
        self.adjacency_stale = true;
        self.level.clear();
        self.level.resize(n, -1);
        self.iter.clear();
        self.iter.resize(n, 0);
    }

    /// Builds a unit-capacity flow network from an undirected [`Graph`];
    /// every graph edge becomes an undirected capacity-1 connection, so the
    /// resulting max-flow values are edge-connectivities, as required for the
    /// paper's (K−1)-cut detection.
    pub fn from_unit_graph(graph: &Graph) -> Self {
        let mut flow = MaxFlow::new(graph.vertex_count());
        flow.assign_unit_graph(graph.vertex_count(), graph.edges());
        flow
    }

    /// Re-initialises the network as the unit-capacity version of an
    /// undirected edge list, reusing buffers (see [`MaxFlow::clear`]).
    pub fn assign_unit_graph(&mut self, n: usize, edges: &[(usize, usize)]) {
        self.clear(n);
        for &(u, v) in edges {
            self.add_undirected_edge(u, v, 1);
        }
    }

    /// Number of vertices in the network.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Cumulative number of augmenting paths pushed by every flow query
    /// since construction (a hardware-independent work counter; survives
    /// [`MaxFlow::clear`]).
    pub fn augmenting_paths(&self) -> u64 {
        self.augmenting_paths
    }

    /// Adds a directed arc `from -> to` with the given capacity (and its
    /// zero-capacity reverse arc).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: i64) {
        assert!(
            from < self.vertex_count() && to < self.vertex_count(),
            "arc ({from}, {to}) out of range"
        );
        assert!(capacity >= 0, "capacity must be non-negative");
        self.adjacency_stale = true;
        self.edges.push(FlowEdge {
            to,
            capacity,
            flow: 0,
        });
        self.edges.push(FlowEdge {
            to: from,
            capacity: 0,
            flow: 0,
        });
    }

    /// Adds an undirected edge of the given capacity (capacity in both
    /// directions).
    pub fn add_undirected_edge(&mut self, u: usize, v: usize, capacity: i64) {
        assert!(
            u < self.vertex_count() && v < self.vertex_count(),
            "edge ({u}, {v}) out of range"
        );
        assert!(capacity >= 0, "capacity must be non-negative");
        self.adjacency_stale = true;
        self.edges.push(FlowEdge {
            to: v,
            capacity,
            flow: 0,
        });
        self.edges.push(FlowEdge {
            to: u,
            capacity,
            flow: 0,
        });
    }

    /// Rebuilds the arc CSR if edges changed since the last flow query.
    fn ensure_adjacency(&mut self) {
        if !self.adjacency_stale {
            return;
        }
        let n = self.vertex_count;
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        // The tail of arc `a` is the head of its paired reverse arc `a ^ 1`.
        for a in 0..self.edges.len() {
            let tail = self.edges[a ^ 1].to;
            self.offsets[tail + 1] += 1;
        }
        for v in 0..n {
            let base = self.offsets[v];
            self.offsets[v + 1] += base;
        }
        self.arcs.clear();
        self.arcs.resize(self.edges.len(), 0);
        for a in 0..self.edges.len() {
            let tail = self.edges[a ^ 1].to;
            self.arcs[self.offsets[tail]] = a;
            self.offsets[tail] += 1;
        }
        for v in (1..=n).rev() {
            self.offsets[v] = self.offsets[v - 1];
        }
        if n > 0 {
            self.offsets[0] = 0;
        }
        self.adjacency_stale = false;
    }

    fn residual(&self, edge: usize) -> i64 {
        self.edges[edge].capacity - self.edges[edge].flow
    }

    fn bfs(&mut self, source: usize, sink: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        self.queue.clear();
        self.level[source] = 0;
        self.queue.push(source);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &e in &self.arcs[self.offsets[u]..self.offsets[u + 1]] {
                let to = self.edges[e].to;
                if self.residual(e) > 0 && self.level[to] < 0 {
                    self.level[to] = self.level[u] + 1;
                    self.queue.push(to);
                }
            }
        }
        self.level[sink] >= 0
    }

    fn dfs(&mut self, u: usize, sink: usize, pushed: i64) -> i64 {
        if u == sink {
            return pushed;
        }
        while self.iter[u] < self.offsets[u + 1] - self.offsets[u] {
            let e = self.arcs[self.offsets[u] + self.iter[u]];
            let to = self.edges[e].to;
            if self.residual(e) > 0 && self.level[to] == self.level[u] + 1 {
                let amount = self.dfs(to, sink, pushed.min(self.residual(e)));
                if amount > 0 {
                    self.edges[e].flow += amount;
                    self.edges[e ^ 1].flow -= amount;
                    return amount;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Resets all flow to zero, allowing the network to be reused.
    pub fn reset(&mut self) {
        for edge in &mut self.edges {
            edge.flow = 0;
        }
    }

    /// Computes the maximum flow (equivalently, the minimum cut value) from
    /// `source` to `sink`.  The flow state is retained so that
    /// [`MaxFlow::min_cut_side`] can recover the source side of a minimum cut.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        self.max_flow_capped(source, sink, INF)
    }

    /// Computes `min(max_flow(source, sink), cap)`, stopping as soon as
    /// `cap` units have been pushed.
    ///
    /// With unit capacities every augmenting path carries one unit, so the
    /// query performs at most `cap` augmentations — the early exit that
    /// turns the (K−1)-cut division's "is the min cut ≥ K?" questions from
    /// O(E·F) into O(E·K) each.  When the returned value is **less** than
    /// `cap` the flow is maximal and [`MaxFlow::min_cut_side`] is a genuine
    /// minimum cut; when it equals `cap` the flow may have stopped early
    /// and the residual reachability is meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink`, either endpoint is out of range, or
    /// `cap` is negative.
    pub fn max_flow_capped(&mut self, source: usize, sink: usize, cap: i64) -> i64 {
        assert!(source != sink, "source and sink must differ");
        assert!(
            source < self.vertex_count() && sink < self.vertex_count(),
            "source/sink out of range"
        );
        assert!(cap >= 0, "flow cap must be non-negative");
        self.ensure_adjacency();
        self.reset();
        let mut total = 0;
        while total < cap && self.bfs(source, sink) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            while total < cap {
                let pushed = self.dfs(source, sink, cap - total);
                if pushed == 0 {
                    break;
                }
                self.augmenting_paths += 1;
                total += pushed;
            }
        }
        total
    }

    /// After [`MaxFlow::max_flow`], returns the set of vertices reachable from
    /// `source` in the residual network — the source side of a minimum cut.
    pub fn min_cut_side(&self, source: usize) -> Vec<bool> {
        let mut side = vec![false; self.vertex_count()];
        self.min_cut_side_into(source, &mut side);
        side
    }

    /// Buffer-reusing variant of [`MaxFlow::min_cut_side`]: fills `side`
    /// (resized to the vertex count) with the residual reachability from
    /// `source`.
    pub fn min_cut_side_into(&self, source: usize, side: &mut Vec<bool>) {
        assert!(
            !self.adjacency_stale,
            "min_cut_side requires a preceding max_flow call"
        );
        side.clear();
        side.resize(self.vertex_count(), false);
        let mut stack = vec![source];
        side[source] = true;
        while let Some(u) = stack.pop() {
            for &e in &self.arcs[self.offsets[u]..self.offsets[u + 1]] {
                let to = self.edges[e].to;
                if self.residual(e) > 0 && !side[to] {
                    side[to] = true;
                    stack.push(to);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_capacity_limits_flow() {
        let mut f = MaxFlow::new(3);
        f.add_edge(0, 1, 5);
        f.add_edge(1, 2, 3);
        assert_eq!(f.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut f = MaxFlow::new(4);
        f.add_edge(0, 1, 2);
        f.add_edge(1, 3, 2);
        f.add_edge(0, 2, 3);
        f.add_edge(2, 3, 1);
        assert_eq!(f.max_flow(0, 3), 3);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure 26.1-style network.
        let mut f = MaxFlow::new(6);
        f.add_edge(0, 1, 16);
        f.add_edge(0, 2, 13);
        f.add_edge(1, 2, 10);
        f.add_edge(2, 1, 4);
        f.add_edge(1, 3, 12);
        f.add_edge(3, 2, 9);
        f.add_edge(2, 4, 14);
        f.add_edge(4, 3, 7);
        f.add_edge(3, 5, 20);
        f.add_edge(4, 5, 4);
        assert_eq!(f.max_flow(0, 5), 23);
    }

    #[test]
    fn undirected_edge_connectivity_of_cycle_is_two() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        let mut f = MaxFlow::from_unit_graph(&g);
        assert_eq!(f.max_flow(0, 2), 2);
    }

    #[test]
    fn edge_connectivity_of_complete_graph() {
        let n = 5;
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        let mut f = MaxFlow::from_unit_graph(&g);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    assert_eq!(f.max_flow(s, t), (n - 1) as i64);
                }
            }
        }
    }

    #[test]
    fn capped_flow_agrees_with_full_flow_on_the_threshold_question() {
        // Deterministic pseudo-random unit graphs: for every pair, capped
        // flow at K must classify "min cut < K vs >= K" exactly like the
        // full flow, and must equal the full flow whenever it is below K.
        let mut seed: u64 = 0x0DDB1A5E5BAD5EED;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..10 {
            let n = 5 + (case % 4);
            let mut g = Graph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 100 < 55 {
                        g.add_edge(i, j);
                    }
                }
            }
            let mut full = MaxFlow::from_unit_graph(&g);
            let mut capped = MaxFlow::from_unit_graph(&g);
            for k in 1..=5i64 {
                for s in 0..n {
                    for t in (s + 1)..n {
                        let exact = full.max_flow(s, t);
                        let fast = capped.max_flow_capped(s, t, k);
                        assert_eq!(fast >= k, exact >= k, "case {case} k={k} pair ({s},{t})");
                        if fast < k {
                            assert_eq!(fast, exact, "case {case} k={k} pair ({s},{t})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn capped_flow_counts_at_most_cap_augmenting_paths_per_query() {
        let n = 8;
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        let mut f = MaxFlow::from_unit_graph(&g);
        let before = f.augmenting_paths();
        assert_eq!(f.max_flow_capped(0, 7, 4), 4);
        assert!(f.augmenting_paths() - before <= 4);
    }

    #[test]
    fn clear_reuses_the_network_for_a_new_graph() {
        let mut f = MaxFlow::new(4);
        f.add_undirected_edge(0, 1, 10);
        f.add_undirected_edge(1, 2, 1);
        f.add_undirected_edge(2, 3, 10);
        assert_eq!(f.max_flow(0, 3), 1);
        f.assign_unit_graph(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(f.vertex_count(), 3);
        assert_eq!(f.max_flow(0, 2), 2);
    }

    #[test]
    fn min_cut_side_separates_source_from_sink() {
        let mut f = MaxFlow::new(4);
        // Bottleneck between 1 and 2.
        f.add_undirected_edge(0, 1, 10);
        f.add_undirected_edge(1, 2, 1);
        f.add_undirected_edge(2, 3, 10);
        assert_eq!(f.max_flow(0, 3), 1);
        let side = f.min_cut_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn disconnected_vertices_have_zero_flow() {
        let mut f = MaxFlow::new(4);
        f.add_undirected_edge(0, 1, 7);
        assert_eq!(f.max_flow(0, 3), 0);
        let side = f.min_cut_side(0);
        assert!(side[0] && side[1] && !side[2] && !side[3]);
    }

    #[test]
    fn reuse_after_reset_gives_same_answer() {
        let mut f = MaxFlow::new(3);
        f.add_undirected_edge(0, 1, 2);
        f.add_undirected_edge(1, 2, 3);
        assert_eq!(f.max_flow(0, 2), 2);
        assert_eq!(f.max_flow(0, 2), 2);
        assert_eq!(f.max_flow(2, 0), 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_and_sink_panics() {
        let mut f = MaxFlow::new(2);
        f.add_undirected_edge(0, 1, 1);
        let _ = f.max_flow(1, 1);
    }
}
