//! Dinic's blocking-flow maximum-flow algorithm.

use crate::Graph;

const INF: i64 = i64::MAX / 4;

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    capacity: i64,
    flow: i64,
}

/// A maximum-flow solver (Dinic's algorithm) over a directed flow network.
///
/// The decomposition flow uses max-flow in two places:
///
/// * directly, to compute minimum s–t cuts between candidate vertices, and
/// * inside [Gusfield's Gomory–Hu construction](crate::GomoryHuTree), which
///   solves exactly `n - 1` max-flow problems to obtain all-pairs min-cuts.
///
/// Undirected edges are modelled as two directed arcs of equal capacity, per
/// the standard reduction.
///
/// # Example
///
/// ```
/// use mpl_graph::MaxFlow;
///
/// // A 4-vertex diamond: two disjoint paths from 0 to 3.
/// let mut flow = MaxFlow::new(4);
/// flow.add_undirected_edge(0, 1, 1);
/// flow.add_undirected_edge(1, 3, 1);
/// flow.add_undirected_edge(0, 2, 1);
/// flow.add_undirected_edge(2, 3, 1);
/// assert_eq!(flow.max_flow(0, 3), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MaxFlow {
    adjacency: Vec<Vec<usize>>,
    edges: Vec<FlowEdge>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl MaxFlow {
    /// Creates an empty flow network with `n` vertices.
    pub fn new(n: usize) -> Self {
        MaxFlow {
            adjacency: vec![Vec::new(); n],
            edges: Vec::new(),
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Builds a unit-capacity flow network from an undirected [`Graph`];
    /// every graph edge becomes an undirected capacity-1 connection, so the
    /// resulting max-flow values are edge-connectivities, as required for the
    /// paper's (K−1)-cut detection.
    pub fn from_unit_graph(graph: &Graph) -> Self {
        let mut flow = MaxFlow::new(graph.vertex_count());
        for &(u, v) in graph.edges() {
            flow.add_undirected_edge(u, v, 1);
        }
        flow
    }

    /// Number of vertices in the network.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds a directed arc `from -> to` with the given capacity (and its
    /// zero-capacity reverse arc).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: i64) {
        assert!(
            from < self.vertex_count() && to < self.vertex_count(),
            "arc ({from}, {to}) out of range"
        );
        assert!(capacity >= 0, "capacity must be non-negative");
        let forward = self.edges.len();
        self.edges.push(FlowEdge {
            to,
            capacity,
            flow: 0,
        });
        self.adjacency[from].push(forward);
        let backward = self.edges.len();
        self.edges.push(FlowEdge {
            to: from,
            capacity: 0,
            flow: 0,
        });
        self.adjacency[to].push(backward);
    }

    /// Adds an undirected edge of the given capacity (capacity in both
    /// directions).
    pub fn add_undirected_edge(&mut self, u: usize, v: usize, capacity: i64) {
        assert!(
            u < self.vertex_count() && v < self.vertex_count(),
            "edge ({u}, {v}) out of range"
        );
        assert!(capacity >= 0, "capacity must be non-negative");
        let forward = self.edges.len();
        self.edges.push(FlowEdge {
            to: v,
            capacity,
            flow: 0,
        });
        self.adjacency[u].push(forward);
        let backward = self.edges.len();
        self.edges.push(FlowEdge {
            to: u,
            capacity,
            flow: 0,
        });
        self.adjacency[v].push(backward);
    }

    fn residual(&self, edge: usize) -> i64 {
        self.edges[edge].capacity - self.edges[edge].flow
    }

    fn bfs(&mut self, source: usize, sink: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adjacency[u] {
                let to = self.edges[e].to;
                if self.residual(e) > 0 && self.level[to] < 0 {
                    self.level[to] = self.level[u] + 1;
                    queue.push_back(to);
                }
            }
        }
        self.level[sink] >= 0
    }

    fn dfs(&mut self, u: usize, sink: usize, pushed: i64) -> i64 {
        if u == sink {
            return pushed;
        }
        while self.iter[u] < self.adjacency[u].len() {
            let e = self.adjacency[u][self.iter[u]];
            let to = self.edges[e].to;
            if self.residual(e) > 0 && self.level[to] == self.level[u] + 1 {
                let amount = self.dfs(to, sink, pushed.min(self.residual(e)));
                if amount > 0 {
                    self.edges[e].flow += amount;
                    self.edges[e ^ 1].flow -= amount;
                    return amount;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Resets all flow to zero, allowing the network to be reused.
    pub fn reset(&mut self) {
        for edge in &mut self.edges {
            edge.flow = 0;
        }
    }

    /// Computes the maximum flow (equivalently, the minimum cut value) from
    /// `source` to `sink`.  The flow state is retained so that
    /// [`MaxFlow::min_cut_side`] can recover the source side of a minimum cut.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        assert!(source != sink, "source and sink must differ");
        assert!(
            source < self.vertex_count() && sink < self.vertex_count(),
            "source/sink out of range"
        );
        self.reset();
        let mut total = 0;
        while self.bfs(source, sink) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(source, sink, INF);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// After [`MaxFlow::max_flow`], returns the set of vertices reachable from
    /// `source` in the residual network — the source side of a minimum cut.
    pub fn min_cut_side(&self, source: usize) -> Vec<bool> {
        let mut side = vec![false; self.vertex_count()];
        let mut stack = vec![source];
        side[source] = true;
        while let Some(u) = stack.pop() {
            for &e in &self.adjacency[u] {
                let to = self.edges[e].to;
                if self.residual(e) > 0 && !side[to] {
                    side[to] = true;
                    stack.push(to);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_capacity_limits_flow() {
        let mut f = MaxFlow::new(3);
        f.add_edge(0, 1, 5);
        f.add_edge(1, 2, 3);
        assert_eq!(f.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut f = MaxFlow::new(4);
        f.add_edge(0, 1, 2);
        f.add_edge(1, 3, 2);
        f.add_edge(0, 2, 3);
        f.add_edge(2, 3, 1);
        assert_eq!(f.max_flow(0, 3), 3);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure 26.1-style network.
        let mut f = MaxFlow::new(6);
        f.add_edge(0, 1, 16);
        f.add_edge(0, 2, 13);
        f.add_edge(1, 2, 10);
        f.add_edge(2, 1, 4);
        f.add_edge(1, 3, 12);
        f.add_edge(3, 2, 9);
        f.add_edge(2, 4, 14);
        f.add_edge(4, 3, 7);
        f.add_edge(3, 5, 20);
        f.add_edge(4, 5, 4);
        assert_eq!(f.max_flow(0, 5), 23);
    }

    #[test]
    fn undirected_edge_connectivity_of_cycle_is_two() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        let mut f = MaxFlow::from_unit_graph(&g);
        assert_eq!(f.max_flow(0, 2), 2);
    }

    #[test]
    fn edge_connectivity_of_complete_graph() {
        let n = 5;
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        let mut f = MaxFlow::from_unit_graph(&g);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    assert_eq!(f.max_flow(s, t), (n - 1) as i64);
                }
            }
        }
    }

    #[test]
    fn min_cut_side_separates_source_from_sink() {
        let mut f = MaxFlow::new(4);
        // Bottleneck between 1 and 2.
        f.add_undirected_edge(0, 1, 10);
        f.add_undirected_edge(1, 2, 1);
        f.add_undirected_edge(2, 3, 10);
        assert_eq!(f.max_flow(0, 3), 1);
        let side = f.min_cut_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn disconnected_vertices_have_zero_flow() {
        let mut f = MaxFlow::new(4);
        f.add_undirected_edge(0, 1, 7);
        assert_eq!(f.max_flow(0, 3), 0);
        let side = f.min_cut_side(0);
        assert!(side[0] && side[1] && !side[2] && !side[3]);
    }

    #[test]
    fn reuse_after_reset_gives_same_answer() {
        let mut f = MaxFlow::new(3);
        f.add_undirected_edge(0, 1, 2);
        f.add_undirected_edge(1, 2, 3);
        assert_eq!(f.max_flow(0, 2), 2);
        assert_eq!(f.max_flow(0, 2), 2);
        assert_eq!(f.max_flow(2, 0), 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_and_sink_panics() {
        let mut f = MaxFlow::new(2);
        f.add_undirected_edge(0, 1, 1);
        let _ = f.max_flow(1, 1);
    }
}
