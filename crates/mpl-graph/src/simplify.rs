//! Iterated graph simplification: hide low-degree vertices and cut bridges
//! until a fixed point, leaving a small *kernel* to color exactly.
//!
//! The DAC'14 flow peels low-degree vertices once before division; OpenMPL
//! showed that *iterating* the simplification — hide, cut, re-hide — is
//! where most of the practical shrink comes from, because each cut lowers
//! degrees and each hide can turn a cycle edge into a bridge.  This module
//! implements that loop over a conflict/stitch multigraph:
//!
//! * **Hide** — a vertex with active conflict degree `< K` and active
//!   stitch degree `< 2` can always be colored after the rest: at
//!   reinsertion time fewer than `K` of its conflict neighbours are
//!   colored, so a conflict-free color exists (and at most one stitch
//!   partner constrains the preference).
//! * **Cut** — a *bridge* of the active union (conflict ∪ stitch) graph
//!   separates it into two sides joined by that single edge.  Color
//!   rotations (`c ← (c + r) mod K`) preserve every conflict and stitch
//!   inside a side, so after coloring both sides independently, rotating
//!   one side to satisfy the cut edge is free.
//!
//! Operations are recorded in application order on an op stack
//! ([`Simplification::ops`]); recovery replays them in *reverse* order
//! (greedy color for each hidden vertex, side rotation for each cut).  The
//! safety argument for batched cuts: when a cut is recovered, every vertex
//! of its recorded side was active when the side was computed, so every
//! edge between vertices colored at that moment already existed then — and
//! by construction of the side (breadth-first reachability avoiding only
//! the cut edge) no such edge crosses the side boundary except the cut
//! edge itself, which the rotation choice satisfies.

use crate::Biconnectivity;

/// One recorded simplification step, to be undone in reverse order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimplifyOp {
    /// The vertex was hidden: its active conflict degree was `< K` and its
    /// active stitch degree `< 2`, so a greedy color is safe at recovery.
    Hide(usize),
    /// A bridge of the active union graph was cut.
    Cut {
        /// The endpoint left outside the recorded side.
        u: usize,
        /// The endpoint inside the recorded side.
        v: usize,
        /// `true` for a conflict edge, `false` for a stitch edge.
        conflict: bool,
        /// Every vertex (active at cut time) reachable from `v` without
        /// crossing the cut edge — the side to rotate at recovery.
        side: Vec<usize>,
    },
}

/// The result of [`simplify`]: the kernel left to color plus the op stack
/// describing how to reinsert everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Simplification {
    /// Hide and cut operations in application order; recover in reverse.
    pub ops: Vec<SimplifyOp>,
    /// Vertices still active at the fixed point, in ascending order.
    pub kernel: Vec<usize>,
    /// Number of rounds that made progress before the fixed point.
    pub rounds: usize,
    /// Cut conflict edges as `(min, max)` endpoint pairs.
    pub cut_conflicts: Vec<(usize, usize)>,
    /// Cut stitch edges as `(min, max)` endpoint pairs.
    pub cut_stitches: Vec<(usize, usize)>,
}

impl Simplification {
    /// Number of hidden vertices.
    pub fn hidden_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, SimplifyOp::Hide(_)))
            .count()
    }

    /// Number of cut edges (conflict + stitch).
    pub fn cut_count(&self) -> usize {
        self.cut_conflicts.len() + self.cut_stitches.len()
    }

    /// `true` when nothing was hidden or cut (the kernel is the whole
    /// graph and recovery is a no-op).
    pub fn is_trivial(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Incidence entry: `(neighbor, edge_id)`.
type Incidence = (usize, usize);

/// Iterates {hide low-degree vertices, cut bridges} on the union of
/// `conflict_edges` and `stitch_edges` over `n` vertices until neither
/// pass makes progress.
///
/// `hide` enables the low-degree pass (active conflict degree `< k` and
/// active stitch degree `< 2`); `cut` enables the bridge pass.  With both
/// disabled the result is trivial.  Edge ids `0..conflicts` are conflict
/// edges, the rest stitches; parallel edges are handled (a pair connected
/// by two edges is never treated as a bridge).
///
/// # Panics
///
/// Panics if an edge endpoint is `≥ n`.
pub fn simplify(
    n: usize,
    conflict_edges: &[(usize, usize)],
    stitch_edges: &[(usize, usize)],
    k: usize,
    hide: bool,
    cut: bool,
) -> Simplification {
    let conflict_count = conflict_edges.len();
    let edge_count = conflict_count + stitch_edges.len();
    // Flat incidence with edge ids so cuts can remove a single edge of a
    // parallel pair.
    let mut adjacency: Vec<Vec<Incidence>> = vec![Vec::new(); n];
    for (id, &(u, v)) in conflict_edges.iter().chain(stitch_edges).enumerate() {
        assert!(
            u < n && v < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        adjacency[u].push((v, id));
        adjacency[v].push((u, id));
    }
    let endpoints = |id: usize| -> (usize, usize) {
        if id < conflict_count {
            conflict_edges[id]
        } else {
            stitch_edges[id - conflict_count]
        }
    };

    let mut active = vec![true; n];
    let mut removed_edge = vec![false; edge_count];
    let mut conflict_degree = vec![0usize; n];
    let mut stitch_degree = vec![0usize; n];
    for v in 0..n {
        for &(_, id) in &adjacency[v] {
            if id < conflict_count {
                conflict_degree[v] += 1;
            } else {
                stitch_degree[v] += 1;
            }
        }
    }

    let mut ops = Vec::new();
    let mut cut_conflicts = Vec::new();
    let mut cut_stitches = Vec::new();
    let mut rounds = 0usize;
    let mut worklist: Vec<usize> = Vec::new();
    loop {
        let mut progressed = false;

        // ---- Hide pass: worklist-iterated low-degree removal. ----
        if hide {
            worklist.clear();
            for v in 0..n {
                if active[v] && conflict_degree[v] < k && stitch_degree[v] < 2 {
                    worklist.push(v);
                }
            }
            while let Some(v) = worklist.pop() {
                if !active[v] || conflict_degree[v] >= k || stitch_degree[v] >= 2 {
                    continue;
                }
                active[v] = false;
                ops.push(SimplifyOp::Hide(v));
                progressed = true;
                for &(u, id) in &adjacency[v] {
                    if !active[u] || removed_edge[id] {
                        continue;
                    }
                    if id < conflict_count {
                        conflict_degree[u] -= 1;
                    } else {
                        stitch_degree[u] -= 1;
                    }
                    if conflict_degree[u] < k && stitch_degree[u] < 2 {
                        worklist.push(u);
                    }
                }
            }
        }

        // ---- Cut pass: one Tarjan sweep finds the round's bridges. ----
        if cut {
            // Dense remap of the active sub-graph.
            let mut local = vec![usize::MAX; n];
            let mut vertices = Vec::new();
            for v in 0..n {
                if active[v] {
                    local[v] = vertices.len();
                    vertices.push(v);
                }
            }
            let mut edges = Vec::new();
            let mut edge_ids = Vec::new();
            for (id, &removed) in removed_edge.iter().enumerate().take(edge_count) {
                if removed {
                    continue;
                }
                let (u, v) = endpoints(id);
                if active[u] && active[v] {
                    edges.push((local[u], local[v]));
                    edge_ids.push(id);
                }
            }
            if !edges.is_empty() {
                let biconnectivity = Biconnectivity::compute_from_edges(vertices.len(), &edges);
                // Map each bridge pair back to its unique edge id; a pair
                // connected twice is filtered by the side check below.
                let mut bridge_ids = Vec::new();
                for &(lu, lv) in biconnectivity.bridges() {
                    let key = (lu.min(lv), lu.max(lv));
                    for (position, &(eu, ev)) in edges.iter().enumerate() {
                        if (eu.min(ev), eu.max(ev)) == key {
                            bridge_ids.push(edge_ids[position]);
                            break;
                        }
                    }
                }
                bridge_ids.sort_unstable();
                bridge_ids.dedup();
                for id in bridge_ids {
                    if removed_edge[id] {
                        continue;
                    }
                    let (u, v) = endpoints(id);
                    if !active[u] || !active[v] {
                        continue;
                    }
                    // Side of `v`: active vertices reachable without the
                    // candidate edge (respecting cuts made earlier this
                    // round).  If `u` is reachable the edge is not a bridge
                    // any more (parallel edge or stale candidate) — skip.
                    let Some(side) = side_of(v, u, id, &adjacency, &active, &removed_edge) else {
                        continue;
                    };
                    // Prefer rotating the smaller side at recovery.
                    let (u, v, side) = {
                        let other = side_of(u, v, id, &adjacency, &active, &removed_edge)
                            .expect("a bridge separates both endpoints");
                        if other.len() < side.len() {
                            (v, u, other)
                        } else {
                            (u, v, side)
                        }
                    };
                    removed_edge[id] = true;
                    let conflict = id < conflict_count;
                    let (a, b) = endpoints(id);
                    if conflict {
                        cut_conflicts.push((a.min(b), a.max(b)));
                        conflict_degree[a] -= 1;
                        conflict_degree[b] -= 1;
                    } else {
                        cut_stitches.push((a.min(b), a.max(b)));
                        stitch_degree[a] -= 1;
                        stitch_degree[b] -= 1;
                    }
                    ops.push(SimplifyOp::Cut {
                        u,
                        v,
                        conflict,
                        side,
                    });
                    progressed = true;
                }
            }
        }

        if !progressed {
            break;
        }
        rounds += 1;
    }

    Simplification {
        ops,
        kernel: (0..n).filter(|&v| active[v]).collect(),
        rounds,
        cut_conflicts,
        cut_stitches,
    }
}

/// Active vertices reachable from `from` without crossing edge `skip_id`,
/// or `None` if `other` (the far endpoint) turns out reachable — meaning
/// the candidate edge does not actually separate the graph.
fn side_of(
    from: usize,
    other: usize,
    skip_id: usize,
    adjacency: &[Vec<Incidence>],
    active: &[bool],
    removed_edge: &[bool],
) -> Option<Vec<usize>> {
    let mut visited = std::collections::HashSet::new();
    let mut queue = vec![from];
    visited.insert(from);
    let mut side = Vec::new();
    while let Some(v) = queue.pop() {
        if v == other {
            return None;
        }
        side.push(v);
        for &(u, id) in &adjacency[v] {
            if id == skip_id || removed_edge[id] || !active[u] || visited.contains(&u) {
                continue;
            }
            visited.insert(u);
            queue.push(u);
        }
    }
    side.sort_unstable();
    Some(side)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_edges(vertices: &[usize]) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges
    }

    #[test]
    fn sparse_graphs_hide_everything() {
        // A path: every vertex has conflict degree ≤ 2 < 4.
        let edges: Vec<_> = (0..5).map(|i| (i, i + 1)).collect();
        let s = simplify(6, &edges, &[], 4, true, true);
        assert!(s.kernel.is_empty());
        assert_eq!(s.hidden_count(), 6);
        assert_eq!(s.cut_count(), 0);
        assert!(s.rounds >= 1);
    }

    #[test]
    fn dense_cores_survive_and_pendants_hide() {
        // K5 core with a pendant path 4-5-6-7.
        let mut edges = clique_edges(&[0, 1, 2, 3, 4]);
        edges.extend([(4, 5), (5, 6), (6, 7)]);
        let s = simplify(8, &edges, &[], 4, true, true);
        assert_eq!(s.kernel, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.hidden_count(), 3);
    }

    #[test]
    fn bridges_between_dense_cores_are_cut() {
        // Two K5s joined by a single bridge (4, 5): hiding removes nothing
        // (every clique vertex has degree ≥ 4), but the bridge cut splits
        // the kernel into two independent cliques.
        let mut edges = clique_edges(&[0, 1, 2, 3, 4]);
        edges.extend(clique_edges(&[5, 6, 7, 8, 9]));
        edges.push((4, 5));
        let s = simplify(10, &edges, &[], 4, true, true);
        assert_eq!(s.kernel.len(), 10);
        assert_eq!(s.cut_conflicts, vec![(4, 5)]);
        assert_eq!(s.cut_count(), 1);
        // The recorded side is the smaller... both sides are 5 vertices;
        // whichever was kept, it contains exactly one endpoint.
        let SimplifyOp::Cut { u, v, ref side, .. } = s.ops[0] else {
            panic!("expected a cut op");
        };
        assert!(side.contains(&v));
        assert!(!side.contains(&u));
        assert_eq!(side.len(), 5);
    }

    #[test]
    fn cutting_enables_further_hiding() {
        // Two triangles joined by a bridge: degrees are all < 4, so the
        // hide pass alone clears the plain version.
        let edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)];
        let s = simplify(6, &edges, &[], 4, true, true);
        assert!(s.kernel.is_empty());

        // Pin vertices 2 and 3 with two stitch edges each (stitch degree
        // 2 blocks hiding).  The stitch pendants 6..9 have stitch degree
        // 1 and hide first, dropping 2 and 3 back under the threshold —
        // the fixed point still empties the graph.
        let stitches = vec![(2, 6), (2, 7), (3, 8), (3, 9)];
        let s = simplify(10, &edges, &stitches, 4, true, true);
        assert!(s.kernel.is_empty());
        assert!(s.rounds >= 1);
    }

    #[test]
    fn iterated_rounds_peel_after_cuts() {
        // K4 {0..3} propped up by a bridge to a K5 {4..8}: vertices 0..2
        // hide immediately (degree 3), which drops vertex 3 to degree 1
        // so it hides too; the K5 keeps degree ≥ 4 and survives.
        let mut edges = clique_edges(&[0, 1, 2, 3]);
        edges.extend(clique_edges(&[4, 5, 6, 7, 8]));
        edges.push((3, 4));
        let s = simplify(9, &edges, &[], 4, true, true);
        assert_eq!(s.kernel, vec![4, 5, 6, 7, 8]);
        assert_eq!(s.hidden_count(), 4);
        assert_eq!(s.cut_count(), 0);

        // Chain of three K5s: both bridges are found by the single
        // Tarjan sweep of round 1.
        let mut edges = clique_edges(&[0, 1, 2, 3, 4]);
        edges.extend(clique_edges(&[5, 6, 7, 8, 9]));
        edges.extend(clique_edges(&[10, 11, 12, 13, 14]));
        edges.push((4, 5));
        edges.push((9, 10));
        let s = simplify(15, &edges, &[], 4, true, true);
        assert_eq!(s.cut_count(), 2);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn stitch_bridges_are_cut_and_typed() {
        // Two K5s joined by a stitch edge.
        let mut conflicts = clique_edges(&[0, 1, 2, 3, 4]);
        conflicts.extend(clique_edges(&[5, 6, 7, 8, 9]));
        let stitches = vec![(4, 5)];
        let s = simplify(10, &conflicts, &stitches, 4, true, true);
        assert_eq!(s.cut_stitches, vec![(4, 5)]);
        assert!(s.cut_conflicts.is_empty());
    }

    #[test]
    fn parallel_edges_are_never_cut() {
        // Two K5s joined by BOTH a conflict and a stitch edge between the
        // same pair: neither is a bridge of the multigraph.
        let mut conflicts = clique_edges(&[0, 1, 2, 3, 4]);
        conflicts.extend(clique_edges(&[5, 6, 7, 8, 9]));
        conflicts.push((4, 5));
        let stitches = vec![(4, 5)];
        let s = simplify(10, &conflicts, &stitches, 4, true, true);
        assert_eq!(s.cut_count(), 0, "a parallel pair is not a bridge");
        assert_eq!(s.kernel.len(), 10);
    }

    #[test]
    fn disabled_passes_do_nothing() {
        let edges = vec![(0, 1), (1, 2)];
        let s = simplify(3, &edges, &[], 4, false, false);
        assert!(s.is_trivial());
        assert_eq!(s.kernel, vec![0, 1, 2]);
        assert_eq!(s.rounds, 0);
    }

    #[test]
    fn ops_order_allows_reverse_recovery() {
        // K5, bridge, K5: the cut is recorded, and both endpoints stay in
        // the kernel — every side vertex is active at cut time.
        let mut edges = clique_edges(&[0, 1, 2, 3, 4]);
        edges.extend(clique_edges(&[5, 6, 7, 8, 9]));
        edges.push((4, 5));
        // Add a pendant on vertex 9.  The hide pass runs before the cut
        // pass inside a round, so the pendant's Hide op precedes the Cut
        // op; recovery replays from the end, rotating the side (whose
        // vertices are all colored) before the pendant is re-colored —
        // and the side, computed after the hide, excludes the pendant.
        edges.push((9, 10));
        let s = simplify(11, &edges, &[], 4, true, true);
        assert_eq!(s.hidden_count(), 1);
        assert_eq!(s.cut_count(), 1);
        let hide_position = s
            .ops
            .iter()
            .position(|op| matches!(op, SimplifyOp::Hide(10)))
            .expect("pendant hidden");
        let cut_position = s
            .ops
            .iter()
            .position(|op| matches!(op, SimplifyOp::Cut { .. }))
            .expect("bridge cut");
        assert!(hide_position < cut_position);
        // The side computed after the hide must not contain the hidden
        // pendant.
        let SimplifyOp::Cut { ref side, .. } = s.ops[cut_position] else {
            unreachable!()
        };
        assert!(!side.contains(&10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edges_panic() {
        let _ = simplify(2, &[(0, 5)], &[], 4, true, true);
    }
}
