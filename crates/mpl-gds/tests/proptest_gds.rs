//! Property-based tests for the GDSII subsystem.
//!
//! The central property: `Layout -> GDS bytes -> Layout` preserves geometry
//! up to rectangle fragmentation. The writer fractures every polygon into
//! one `BOUNDARY` per component rectangle and the reader re-merges touching
//! boundaries into connected shapes, so the round trip recovers the same
//! shape partition with possibly different (but canonically equal)
//! rectangle lists.

use mpl_gds::{layout_from_library, library_from_layout, GdsLibrary, LayerMap, ReadOptions};
use mpl_geometry::{Nm, Polygon, Rect};
use mpl_layout::Layout;
use proptest::prelude::*;

fn r(a: i64, b: i64, c: i64, d: i64) -> Rect {
    Rect::new(Nm(a), Nm(b), Nm(c), Nm(d))
}

/// One shape confined to a 200x200 box at a grid cell: a plain rectangle,
/// an L (two touching rects), or a T (three touching rects). Grid pitch is
/// 400 nm, so distinct cells can never touch and the reader's
/// touching-merge must recover exactly the written shape partition.
fn cell_polygon(kind: u8, w: i64, h: i64, base_x: i64, base_y: i64) -> Polygon {
    let w = 20 + (w % 180);
    let h = 20 + (h % 180);
    let rects = match kind % 3 {
        0 => vec![r(base_x, base_y, base_x + w, base_y + h)],
        1 => vec![
            r(base_x, base_y, base_x + 200, base_y + 20),
            r(base_x, base_y, base_x + 20, base_y + h),
        ],
        _ => vec![
            r(base_x, base_y, base_x + 200, base_y + 20),
            r(base_x + 80, base_y, base_x + 100, base_y + h),
            r(base_x, base_y + h, base_x + 200, base_y + h + 20),
        ],
    };
    Polygon::from_rects(rects).expect("non-empty")
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop::collection::vec((0i64..8, 0i64..8, 0u8..3, 0i64..180, 0i64..180), 0..24).prop_map(
        |cells| {
            let mut builder = Layout::builder("prop-gds");
            let mut used: Vec<(i64, i64)> = Vec::new();
            for (cx, cy, kind, w, h) in cells {
                if used.contains(&(cx, cy)) {
                    continue;
                }
                used.push((cx, cy));
                builder.add_polygon(cell_polygon(kind, w, h, cx * 400, cy * 400));
            }
            builder.build()
        },
    )
}

/// Geometry comparison that ignores rectangle fragmentation.
fn same_geometry(a: &Layout, b: &Layout) -> bool {
    a.name() == b.name()
        && a.shape_count() == b.shape_count()
        && a.iter()
            .zip(b.iter())
            .all(|(sa, sb)| sa.polygon().canonical_rects() == sb.polygon().canonical_rects())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_round_trips_through_gds_bytes(layout in arb_layout()) {
        let library = library_from_layout(&layout, 17, 4).expect("convert");
        let bytes = library.to_bytes().expect("serialise");
        let parsed = GdsLibrary::from_bytes(&bytes).expect("GDS we wrote always parses");
        let round_tripped =
            layout_from_library(&parsed, &LayerMap::all(), &ReadOptions::default())
                .expect("convert back");
        prop_assert!(
            same_geometry(&layout, &round_tripped),
            "round trip changed geometry: {} vs {} shapes",
            layout.shape_count(),
            round_tripped.shape_count()
        );
    }

    #[test]
    fn layer_selection_round_trips(layout in arb_layout()) {
        let library = library_from_layout(&layout, 17, 4).expect("convert");
        // Selecting the written pair keeps everything...
        let selected = layout_from_library(
            &library,
            &LayerMap::all().with(17, Some(4)),
            &ReadOptions::default(),
        )
        .expect("selected convert");
        prop_assert!(same_geometry(&layout, &selected));
        // ...and selecting a different pair keeps nothing (error for
        // non-empty inputs, empty layout for empty inputs).
        let other = layout_from_library(
            &library,
            &LayerMap::all().with(18, None),
            &ReadOptions::default(),
        );
        if layout.is_empty() {
            prop_assert!(other.expect("empty stays empty").is_empty());
        } else {
            prop_assert!(other.is_err());
        }
    }

    #[test]
    fn truncated_streams_error_but_never_panic(layout in arb_layout(), cut in 0usize..2048) {
        let bytes = library_from_layout(&layout, 1, 0)
            .expect("convert")
            .to_bytes()
            .expect("serialise");
        if cut < bytes.len() {
            // Truncation mid-stream must produce a typed error, not a panic
            // (trailing NULs of a cut record can also read as clean EOF for
            // offset-0 cuts of the padded tail, so only assert no panic and
            // structured failure for in-record cuts).
            let result = GdsLibrary::from_bytes(&bytes[..cut]);
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(
        layout in arb_layout(),
        index in 0usize..4096,
        value in 0u8..=255,
    ) {
        let mut bytes = library_from_layout(&layout, 1, 0)
            .expect("convert")
            .to_bytes()
            .expect("serialise");
        if !bytes.is_empty() {
            let index = index % bytes.len();
            bytes[index] = value;
            // Any outcome is acceptable except a panic.
            let _ = GdsLibrary::from_bytes(&bytes);
        }
    }
}
