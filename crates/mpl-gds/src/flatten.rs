//! Structure flattening: expands SREF/AREF hierarchies into flat geometry.
//!
//! Real layouts are deeply hierarchical; the decomposition flow wants a flat
//! bag of polygons. [`flatten`] walks the reference tree from a top
//! structure, applying reference transforms (translation, reflection about
//! x, and rotations in 90° multiples — the transforms that keep rectilinear
//! geometry rectilinear) and converting every boundary, box and path into
//! rectangle lists in database units.
//!
//! [`flatten_tagged`] produces the exact same shape sequence and
//! additionally records, per shape, which *top-level instance* (direct
//! SREF/AREF child of the top structure, AREFs expanded row-major) emitted
//! it — the provenance the hierarchical decomposition driver needs to split
//! merged conflict components back into per-cell pieces.
//!
//! Both entry points validate the reference graph first
//! ([`GdsLibrary::from_bytes`](crate::GdsLibrary::from_bytes) does too), so
//! cyclic or over-deep hierarchies surface as typed errors instead of
//! unbounded recursion.

use crate::model::{check_references, GdsElement, GdsLibrary, GdsStrans, GdsStruct, MAX_REF_DEPTH};
use crate::poly::{loop_to_rects, path_to_rects, DbRect};
use crate::GdsError;

/// One flattened feature: a rectangle union on a layer:datatype pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatShape {
    /// GDS layer number.
    pub layer: i16,
    /// GDS datatype number (boxtype for `BOX` elements).
    pub datatype: i16,
    /// Disjoint-or-touching rectangles in database units.
    pub rects: Vec<DbRect>,
}

/// One expanded top-level placement, in database units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatInstance {
    /// Name of the referenced structure.
    pub cell: String,
    /// Placement translation in database units.
    pub dx: i64,
    /// Placement translation in database units.
    pub dy: i64,
}

/// Flattened geometry plus per-shape instance provenance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaggedFlat {
    /// Flattened shapes, identical to what [`flatten`] returns.
    pub shapes: Vec<FlatShape>,
    /// Parallel to `shapes`: the index into `instances` of the top-level
    /// placement that emitted the shape, or `None` for geometry of the top
    /// structure itself.
    pub origins: Vec<Option<usize>>,
    /// Expanded top-level placements in emission order (AREFs row-major).
    pub instances: Vec<FlatInstance>,
    /// Number of shapes that were emitted through a *nested* reference
    /// (depth ≥ 2) and therefore inherit the enclosing top-level
    /// instance's tag rather than carrying their own placement identity.
    ///
    /// The hierarchical decomposition driver treats each tag as one cell
    /// placement, so geometry counted here is silently merged into its
    /// enclosing instance — a known approximation for deep SREF chains.
    /// The counter makes that loss of provenance observable downstream.
    pub nested_inherited: usize,
}

/// An affine placement restricted to Manhattan transforms.
#[derive(Debug, Clone, Copy)]
struct Placement {
    /// Translation in database units.
    dx: i64,
    dy: i64,
    /// Number of 90° counter-clockwise rotations (0..4).
    rot: u8,
    /// Reflect about the x axis (applied before rotation, GDS order).
    reflect: bool,
}

impl Placement {
    const IDENTITY: Placement = Placement {
        dx: 0,
        dy: 0,
        rot: 0,
        reflect: false,
    };

    fn apply(&self, (x, y): (i64, i64)) -> (i64, i64) {
        let (x, y) = if self.reflect { (x, -y) } else { (x, y) };
        let (x, y) = match self.rot {
            0 => (x, y),
            1 => (-y, x),
            2 => (-x, -y),
            _ => (y, -x),
        };
        (x + self.dx, y + self.dy)
    }

    /// Composes `self` (outer) with a child reference placement.
    fn then(&self, child: &Placement) -> Placement {
        let (dx, dy) = self.apply((child.dx, child.dy));
        let child_rot = if self.reflect {
            // Reflection conjugates the rotation direction.
            (4 - child.rot) % 4
        } else {
            child.rot
        };
        Placement {
            dx,
            dy,
            rot: (self.rot + child_rot) % 4,
            reflect: self.reflect ^ child.reflect,
        }
    }
}

/// Converts a reference transform into a Manhattan placement.
fn placement_of(name: &str, strans: &GdsStrans, origin: (i64, i64)) -> Result<Placement, GdsError> {
    let angle = strans.angle.rem_euclid(360.0);
    let quarter = angle / 90.0;
    let rot = quarter.round();
    if (quarter - rot).abs() > 1e-9 || (strans.mag - 1.0).abs() > 1e-9 {
        return Err(GdsError::UnsupportedTransform {
            name: name.to_string(),
            angle: strans.angle,
            mag: strans.mag,
        });
    }
    Ok(Placement {
        dx: origin.0,
        dy: origin.1,
        rot: (rot as u8) % 4,
        reflect: strans.reflect,
    })
}

/// Flattens the library from `top` (or the inferred top structure) into
/// rectangle-union shapes in database units.
///
/// # Errors
///
/// Propagates [`GdsError::UndefinedStruct`], [`GdsError::RecursiveStruct`],
/// [`GdsError::DeepHierarchy`], [`GdsError::UnsupportedTransform`] and
/// [`GdsError::NonRectilinear`].
pub fn flatten(library: &GdsLibrary, top: Option<&str>) -> Result<Vec<FlatShape>, GdsError> {
    Ok(flatten_tagged(library, top)?.shapes)
}

/// Flattens like [`flatten`] and tags every emitted shape with the
/// top-level instance that produced it.
///
/// Geometry owned by the top structure directly is tagged `None`; geometry
/// reached through a direct SREF child of the top gets that placement's
/// instance index, an AREF contributes `cols · rows` instances in the
/// row-major order the grid is expanded, and nested references inherit the
/// enclosing top-level instance's tag. Every shape that inherits a tag
/// this way (emitted at reference depth ≥ 2) is counted in
/// [`TaggedFlat::nested_inherited`].
///
/// # Errors
///
/// Same as [`flatten`].
pub fn flatten_tagged(library: &GdsLibrary, top: Option<&str>) -> Result<TaggedFlat, GdsError> {
    let top = library.top_struct(top)?;
    check_references(library)?;
    let mut flat = TaggedFlat::default();
    for (index, element) in top.elements.iter().enumerate() {
        match element {
            GdsElement::Sref {
                name,
                strans,
                origin,
            } => {
                let target = find_target(library, name)?;
                let child = placement_of(name, strans, (i64::from(origin.0), i64::from(origin.1)))?;
                let tag = open_instance(&mut flat.instances, name, &child);
                walk(library, target, child, 1, tag, &mut flat)?;
            }
            GdsElement::Aref { name, .. } => {
                let target = find_target(library, name)?;
                for child in aref_placements(element)? {
                    let tag = open_instance(&mut flat.instances, name, &child);
                    walk(library, target, child, 1, tag, &mut flat)?;
                }
            }
            _ => emit_geometry(top, index, element, &Placement::IDENTITY, None, &mut flat)?,
        }
    }
    Ok(flat)
}

fn find_target<'a>(library: &'a GdsLibrary, name: &str) -> Result<&'a GdsStruct, GdsError> {
    library
        .find_struct(name)
        .ok_or_else(|| GdsError::UndefinedStruct {
            name: name.to_string(),
        })
}

fn open_instance(
    instances: &mut Vec<FlatInstance>,
    name: &str,
    placement: &Placement,
) -> Option<usize> {
    instances.push(FlatInstance {
        cell: name.to_string(),
        dx: placement.dx,
        dy: placement.dy,
    });
    Some(instances.len() - 1)
}

/// Expands an AREF element into the placements of its grid, row-major.
fn aref_placements(element: &GdsElement) -> Result<Vec<Placement>, GdsError> {
    let GdsElement::Aref {
        name,
        strans,
        cols,
        rows,
        xy,
    } = element
    else {
        unreachable!("aref_placements is only called on AREF elements");
    };
    let cols = i64::from((*cols).max(1));
    let rows = i64::from((*rows).max(1));
    let origin = (i64::from(xy[0].0), i64::from(xy[0].1));
    // Per the spec, xy[1] is origin displaced by cols inter-column
    // spacings and xy[2] by rows inter-row spacings. Divide with
    // rounding: a tool that rounds the lattice endpoint must not
    // shift every instance by a truncated step.
    let col_step = (
        div_round(i64::from(xy[1].0) - origin.0, cols),
        div_round(i64::from(xy[1].1) - origin.1, cols),
    );
    let row_step = (
        div_round(i64::from(xy[2].0) - origin.0, rows),
        div_round(i64::from(xy[2].1) - origin.1, rows),
    );
    let mut placements = Vec::with_capacity((rows * cols) as usize);
    for row in 0..rows {
        for col in 0..cols {
            let instance_origin = (
                origin.0 + col * col_step.0 + row * row_step.0,
                origin.1 + col * col_step.1 + row * row_step.1,
            );
            placements.push(placement_of(name, strans, instance_origin)?);
        }
    }
    Ok(placements)
}

fn emit_geometry(
    current: &GdsStruct,
    index: usize,
    element: &GdsElement,
    placement: &Placement,
    tag: Option<usize>,
    flat: &mut TaggedFlat,
) -> Result<(), GdsError> {
    let non_rectilinear = || GdsError::NonRectilinear {
        structure: current.name.clone(),
        element: index,
    };
    let shape = match element {
        GdsElement::Boundary {
            layer,
            datatype,
            xy,
        } => {
            let points = transform_points(xy, placement);
            FlatShape {
                layer: *layer,
                datatype: *datatype,
                rects: loop_to_rects(&points).ok_or_else(non_rectilinear)?,
            }
        }
        GdsElement::Box { layer, boxtype, xy } => {
            let points = transform_points(xy, placement);
            FlatShape {
                layer: *layer,
                datatype: *boxtype,
                rects: loop_to_rects(&points).ok_or_else(non_rectilinear)?,
            }
        }
        GdsElement::Path {
            layer,
            datatype,
            pathtype,
            width,
            xy,
        } => {
            let points = transform_points(xy, placement);
            FlatShape {
                layer: *layer,
                datatype: *datatype,
                rects: path_to_rects(&points, i64::from(width.unsigned_abs()), *pathtype)
                    .ok_or_else(non_rectilinear)?,
            }
        }
        GdsElement::Sref { .. } | GdsElement::Aref { .. } => {
            unreachable!("emit_geometry is only called on geometry elements")
        }
    };
    flat.shapes.push(shape);
    flat.origins.push(tag);
    Ok(())
}

fn walk(
    library: &GdsLibrary,
    current: &GdsStruct,
    placement: Placement,
    depth: usize,
    tag: Option<usize>,
    flat: &mut TaggedFlat,
) -> Result<(), GdsError> {
    if depth > MAX_REF_DEPTH {
        // Unreachable after check_references, kept as a defensive backstop.
        return Err(GdsError::DeepHierarchy {
            name: current.name.clone(),
            limit: MAX_REF_DEPTH,
        });
    }
    for (index, element) in current.elements.iter().enumerate() {
        match element {
            GdsElement::Sref {
                name,
                strans,
                origin,
            } => {
                let target = find_target(library, name)?;
                let child = placement_of(name, strans, (i64::from(origin.0), i64::from(origin.1)))?;
                walk(
                    library,
                    target,
                    placement.then(&child),
                    depth + 1,
                    tag,
                    flat,
                )?;
            }
            GdsElement::Aref { name, .. } => {
                let target = find_target(library, name)?;
                for child in aref_placements(element)? {
                    walk(
                        library,
                        target,
                        placement.then(&child),
                        depth + 1,
                        tag,
                        flat,
                    )?;
                }
            }
            _ => {
                // Geometry reached below the direct children of the top
                // structure inherits the enclosing top-level instance's
                // tag; count it so the provenance loss is observable.
                if depth >= 2 && tag.is_some() {
                    flat.nested_inherited += 1;
                }
                emit_geometry(current, index, element, &placement, tag, flat)?;
            }
        }
    }
    Ok(())
}

/// Signed division rounding to the nearest integer (ties away from zero).
fn div_round(numerator: i64, denominator: i64) -> i64 {
    let half = denominator.abs() / 2;
    if numerator >= 0 {
        (numerator + half) / denominator
    } else {
        (numerator - half) / denominator
    }
}

fn transform_points(points: &[(i32, i32)], placement: &Placement) -> Vec<(i64, i64)> {
    points
        .iter()
        .map(|&(x, y)| placement.apply((i64::from(x), i64::from(y))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GdsElement, GdsLibrary, GdsStrans, GdsStruct};

    fn unit_square(layer: i16) -> GdsElement {
        GdsElement::Boundary {
            layer,
            datatype: 0,
            xy: vec![(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)],
        }
    }

    fn library_with(structs: Vec<GdsStruct>) -> GdsLibrary {
        let mut library = GdsLibrary::new("T");
        library.structs = structs;
        library
    }

    #[test]
    fn sref_translates_geometry() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    origin: (100, 200),
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].rects, vec![(100, 200, 110, 210)]);
    }

    #[test]
    fn top_structure_is_inferred_as_the_unreferenced_one() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    origin: (0, 0),
                }],
            },
        ]);
        assert_eq!(library.top_struct(None).unwrap().name, "TOP");
    }

    #[test]
    fn rotation_by_90_degrees_is_applied() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![GdsElement::Boundary {
                    layer: 1,
                    datatype: 0,
                    xy: vec![(0, 0), (30, 0), (30, 10), (0, 10), (0, 0)],
                }],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans {
                        reflect: false,
                        mag: 1.0,
                        angle: 90.0,
                    },
                    origin: (0, 0),
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        // (x, y) -> (-y, x): the 30x10 bar becomes a 10x30 bar at x in [-10, 0].
        assert_eq!(shapes[0].rects, vec![(-10, 0, 0, 30)]);
    }

    #[test]
    fn aref_expands_the_full_grid() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(3)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Aref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    cols: 3,
                    rows: 2,
                    // Origin (0,0); columns 40 apart; rows 50 apart.
                    xy: [(0, 0), (120, 0), (0, 100)],
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        assert_eq!(shapes.len(), 6);
        assert!(shapes.iter().any(|s| s.rects == vec![(80, 50, 90, 60)]));
    }

    #[test]
    fn aref_steps_round_instead_of_truncating() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Aref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    cols: 4,
                    rows: 1,
                    // Column reference point at 110: spacing 27.5 rounds to
                    // 28, not a truncated 27 that would shift every column.
                    xy: [(0, 0), (110, 0), (0, 40)],
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        let mut xs: Vec<i64> = shapes.iter().map(|s| s.rects[0].0).collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![0, 28, 56, 84]);
    }

    #[test]
    fn non_manhattan_transforms_are_rejected() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans {
                        reflect: false,
                        mag: 1.0,
                        angle: 45.0,
                    },
                    origin: (0, 0),
                }],
            },
        ]);
        assert!(matches!(
            flatten(&library, None),
            Err(GdsError::UnsupportedTransform { .. })
        ));
    }

    #[test]
    fn undefined_references_are_reported() {
        let library = library_with(vec![GdsStruct {
            name: "TOP".into(),
            elements: vec![GdsElement::Sref {
                name: "GHOST".into(),
                strans: GdsStrans::default(),
                origin: (0, 0),
            }],
        }]);
        assert_eq!(
            flatten(&library, None),
            Err(GdsError::UndefinedStruct {
                name: "GHOST".into()
            })
        );
    }

    #[test]
    fn recursive_hierarchies_are_reported() {
        let library = library_with(vec![GdsStruct {
            name: "A".into(),
            elements: vec![GdsElement::Sref {
                name: "A".into(),
                strans: GdsStrans::default(),
                origin: (1, 1),
            }],
        }]);
        assert!(matches!(
            flatten(&library, None),
            Err(GdsError::RecursiveStruct { .. })
        ));
    }

    #[test]
    fn over_deep_hierarchies_are_reported() {
        // A linear chain S0 -> S1 -> ... deeper than the limit.
        let mut structs = Vec::new();
        for level in 0..=(MAX_REF_DEPTH + 1) {
            let elements = if level <= MAX_REF_DEPTH {
                vec![GdsElement::Sref {
                    name: format!("S{}", level + 1),
                    strans: GdsStrans::default(),
                    origin: (0, 0),
                }]
            } else {
                vec![unit_square(1)]
            };
            structs.push(GdsStruct {
                name: format!("S{level}"),
                elements,
            });
        }
        let library = library_with(structs);
        assert!(matches!(
            flatten(&library, Some("S0")),
            Err(GdsError::DeepHierarchy { limit, .. }) if limit == MAX_REF_DEPTH
        ));
    }

    #[test]
    fn reflection_flips_about_the_x_axis() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![GdsElement::Boundary {
                    layer: 1,
                    datatype: 0,
                    xy: vec![(0, 0), (10, 0), (10, 30), (0, 30), (0, 0)],
                }],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans {
                        reflect: true,
                        mag: 1.0,
                        angle: 0.0,
                    },
                    origin: (0, 0),
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        assert_eq!(shapes[0].rects, vec![(0, -30, 10, 0)]);
    }

    #[test]
    fn tags_follow_top_level_instances() {
        // TOP owns a square, places LEAF once via SREF and a 2x2 AREF of
        // PAIR (which itself nests LEAF): 1 + 1 + 4 instances of geometry,
        // with nested references inheriting the enclosing instance tag.
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "PAIR".into(),
                elements: vec![
                    unit_square(1),
                    GdsElement::Sref {
                        name: "LEAF".into(),
                        strans: GdsStrans::default(),
                        origin: (20, 0),
                    },
                ],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![
                    unit_square(1),
                    GdsElement::Sref {
                        name: "LEAF".into(),
                        strans: GdsStrans::default(),
                        origin: (100, 0),
                    },
                    GdsElement::Aref {
                        name: "PAIR".into(),
                        strans: GdsStrans::default(),
                        cols: 2,
                        rows: 2,
                        xy: [(0, 200), (120, 200), (0, 400)],
                    },
                ],
            },
        ]);
        let flat = flatten_tagged(&library, None).expect("flatten");
        // Same shape stream as the untagged entry point.
        assert_eq!(flat.shapes, flatten(&library, None).expect("flatten"));
        assert_eq!(flat.instances.len(), 5);
        assert_eq!(flat.instances[0].cell, "LEAF");
        assert_eq!(flat.instances[0].dx, 100);
        assert_eq!(flat.instances[2].cell, "PAIR");
        // Row-major AREF expansion: (row 0, col 1) is the second PAIR.
        assert_eq!(flat.instances[2].dx, 60);
        assert_eq!(flat.instances[2].dy, 200);
        assert_eq!(
            flat.origins,
            vec![
                None,    // TOP's own square
                Some(0), // SREF LEAF
                Some(1), // PAIR #0 body
                Some(1), // PAIR #0 nested LEAF inherits the tag
                Some(2),
                Some(2),
                Some(3),
                Some(3),
                Some(4),
                Some(4),
            ]
        );
        // Each of the four PAIR placements emits one LEAF square through a
        // nested SREF (depth 2) that inherits the PAIR instance's tag.
        assert_eq!(flat.nested_inherited, 4);
    }

    #[test]
    fn top_level_geometry_never_counts_as_nested_inherited() {
        // Direct SREF children of the top emit at depth 1: their geometry
        // carries its own instance tag and must not be counted as
        // inherited provenance.
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![
                    unit_square(1),
                    GdsElement::Sref {
                        name: "LEAF".into(),
                        strans: GdsStrans::default(),
                        origin: (40, 0),
                    },
                ],
            },
        ]);
        let flat = flatten_tagged(&library, None).expect("flatten");
        assert_eq!(flat.shapes.len(), 2);
        assert_eq!(flat.nested_inherited, 0);
    }
}
