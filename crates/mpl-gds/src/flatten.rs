//! Structure flattening: expands SREF/AREF hierarchies into flat geometry.
//!
//! Real layouts are deeply hierarchical; the decomposition flow wants a flat
//! bag of polygons. [`flatten`] walks the reference tree from a top
//! structure, applying reference transforms (translation, reflection about
//! x, and rotations in 90° multiples — the transforms that keep rectilinear
//! geometry rectilinear) and converting every boundary, box and path into
//! rectangle lists in database units.

use crate::model::{GdsElement, GdsLibrary, GdsStrans, GdsStruct};
use crate::poly::{loop_to_rects, path_to_rects, DbRect};
use crate::GdsError;

/// One flattened feature: a rectangle union on a layer:datatype pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatShape {
    /// GDS layer number.
    pub layer: i16,
    /// GDS datatype number (boxtype for `BOX` elements).
    pub datatype: i16,
    /// Disjoint-or-touching rectangles in database units.
    pub rects: Vec<DbRect>,
}

/// Maximum reference depth before declaring the hierarchy recursive.
const MAX_DEPTH: usize = 64;

/// An affine placement restricted to Manhattan transforms.
#[derive(Debug, Clone, Copy)]
struct Placement {
    /// Translation in database units.
    dx: i64,
    dy: i64,
    /// Number of 90° counter-clockwise rotations (0..4).
    rot: u8,
    /// Reflect about the x axis (applied before rotation, GDS order).
    reflect: bool,
}

impl Placement {
    const IDENTITY: Placement = Placement {
        dx: 0,
        dy: 0,
        rot: 0,
        reflect: false,
    };

    fn apply(&self, (x, y): (i64, i64)) -> (i64, i64) {
        let (x, y) = if self.reflect { (x, -y) } else { (x, y) };
        let (x, y) = match self.rot {
            0 => (x, y),
            1 => (-y, x),
            2 => (-x, -y),
            _ => (y, -x),
        };
        (x + self.dx, y + self.dy)
    }

    /// Composes `self` (outer) with a child reference placement.
    fn then(&self, child: &Placement) -> Placement {
        let (dx, dy) = self.apply((child.dx, child.dy));
        let child_rot = if self.reflect {
            // Reflection conjugates the rotation direction.
            (4 - child.rot) % 4
        } else {
            child.rot
        };
        Placement {
            dx,
            dy,
            rot: (self.rot + child_rot) % 4,
            reflect: self.reflect ^ child.reflect,
        }
    }
}

/// Converts a reference transform into a Manhattan placement.
fn placement_of(name: &str, strans: &GdsStrans, origin: (i64, i64)) -> Result<Placement, GdsError> {
    let angle = strans.angle.rem_euclid(360.0);
    let quarter = angle / 90.0;
    let rot = quarter.round();
    if (quarter - rot).abs() > 1e-9 || (strans.mag - 1.0).abs() > 1e-9 {
        return Err(GdsError::UnsupportedTransform {
            name: name.to_string(),
            angle: strans.angle,
            mag: strans.mag,
        });
    }
    Ok(Placement {
        dx: origin.0,
        dy: origin.1,
        rot: (rot as u8) % 4,
        reflect: strans.reflect,
    })
}

/// Flattens the library from `top` (or the inferred top structure) into
/// rectangle-union shapes in database units.
///
/// # Errors
///
/// Propagates [`GdsError::UndefinedStruct`], [`GdsError::RecursiveStruct`],
/// [`GdsError::UnsupportedTransform`] and [`GdsError::NonRectilinear`].
pub fn flatten(library: &GdsLibrary, top: Option<&str>) -> Result<Vec<FlatShape>, GdsError> {
    let top = library.top_struct(top)?;
    let mut shapes = Vec::new();
    walk(library, top, Placement::IDENTITY, 0, &mut shapes)?;
    Ok(shapes)
}

fn walk(
    library: &GdsLibrary,
    current: &GdsStruct,
    placement: Placement,
    depth: usize,
    shapes: &mut Vec<FlatShape>,
) -> Result<(), GdsError> {
    if depth > MAX_DEPTH {
        return Err(GdsError::RecursiveStruct {
            name: current.name.clone(),
        });
    }
    for (index, element) in current.elements.iter().enumerate() {
        match element {
            GdsElement::Boundary {
                layer,
                datatype,
                xy,
            } => {
                let points = transform_points(xy, &placement);
                let rects = loop_to_rects(&points).ok_or_else(|| GdsError::NonRectilinear {
                    structure: current.name.clone(),
                    element: index,
                })?;
                shapes.push(FlatShape {
                    layer: *layer,
                    datatype: *datatype,
                    rects,
                });
            }
            GdsElement::Box { layer, boxtype, xy } => {
                let points = transform_points(xy, &placement);
                let rects = loop_to_rects(&points).ok_or_else(|| GdsError::NonRectilinear {
                    structure: current.name.clone(),
                    element: index,
                })?;
                shapes.push(FlatShape {
                    layer: *layer,
                    datatype: *boxtype,
                    rects,
                });
            }
            GdsElement::Path {
                layer,
                datatype,
                pathtype,
                width,
                xy,
            } => {
                let points = transform_points(xy, &placement);
                let rects = path_to_rects(&points, i64::from(width.unsigned_abs()), *pathtype)
                    .ok_or_else(|| GdsError::NonRectilinear {
                        structure: current.name.clone(),
                        element: index,
                    })?;
                shapes.push(FlatShape {
                    layer: *layer,
                    datatype: *datatype,
                    rects,
                });
            }
            GdsElement::Sref {
                name,
                strans,
                origin,
            } => {
                let target = library
                    .find_struct(name)
                    .ok_or_else(|| GdsError::UndefinedStruct { name: name.clone() })?;
                let child = placement_of(name, strans, (i64::from(origin.0), i64::from(origin.1)))?;
                walk(library, target, placement.then(&child), depth + 1, shapes)?;
            }
            GdsElement::Aref {
                name,
                strans,
                cols,
                rows,
                xy,
            } => {
                let target = library
                    .find_struct(name)
                    .ok_or_else(|| GdsError::UndefinedStruct { name: name.clone() })?;
                let cols = i64::from((*cols).max(1));
                let rows = i64::from((*rows).max(1));
                let origin = (i64::from(xy[0].0), i64::from(xy[0].1));
                // Per the spec, xy[1] is origin displaced by cols inter-column
                // spacings and xy[2] by rows inter-row spacings. Divide with
                // rounding: a tool that rounds the lattice endpoint must not
                // shift every instance by a truncated step.
                let col_step = (
                    div_round(i64::from(xy[1].0) - origin.0, cols),
                    div_round(i64::from(xy[1].1) - origin.1, cols),
                );
                let row_step = (
                    div_round(i64::from(xy[2].0) - origin.0, rows),
                    div_round(i64::from(xy[2].1) - origin.1, rows),
                );
                for row in 0..rows {
                    for col in 0..cols {
                        let instance_origin = (
                            origin.0 + col * col_step.0 + row * row_step.0,
                            origin.1 + col * col_step.1 + row * row_step.1,
                        );
                        let child = placement_of(name, strans, instance_origin)?;
                        walk(library, target, placement.then(&child), depth + 1, shapes)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Signed division rounding to the nearest integer (ties away from zero).
fn div_round(numerator: i64, denominator: i64) -> i64 {
    let half = denominator.abs() / 2;
    if numerator >= 0 {
        (numerator + half) / denominator
    } else {
        (numerator - half) / denominator
    }
}

fn transform_points(points: &[(i32, i32)], placement: &Placement) -> Vec<(i64, i64)> {
    points
        .iter()
        .map(|&(x, y)| placement.apply((i64::from(x), i64::from(y))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GdsElement, GdsLibrary, GdsStrans, GdsStruct};

    fn unit_square(layer: i16) -> GdsElement {
        GdsElement::Boundary {
            layer,
            datatype: 0,
            xy: vec![(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)],
        }
    }

    fn library_with(structs: Vec<GdsStruct>) -> GdsLibrary {
        let mut library = GdsLibrary::new("T");
        library.structs = structs;
        library
    }

    #[test]
    fn sref_translates_geometry() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    origin: (100, 200),
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].rects, vec![(100, 200, 110, 210)]);
    }

    #[test]
    fn top_structure_is_inferred_as_the_unreferenced_one() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    origin: (0, 0),
                }],
            },
        ]);
        assert_eq!(library.top_struct(None).unwrap().name, "TOP");
    }

    #[test]
    fn rotation_by_90_degrees_is_applied() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![GdsElement::Boundary {
                    layer: 1,
                    datatype: 0,
                    xy: vec![(0, 0), (30, 0), (30, 10), (0, 10), (0, 0)],
                }],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans {
                        reflect: false,
                        mag: 1.0,
                        angle: 90.0,
                    },
                    origin: (0, 0),
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        // (x, y) -> (-y, x): the 30x10 bar becomes a 10x30 bar at x in [-10, 0].
        assert_eq!(shapes[0].rects, vec![(-10, 0, 0, 30)]);
    }

    #[test]
    fn aref_expands_the_full_grid() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(3)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Aref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    cols: 3,
                    rows: 2,
                    // Origin (0,0); columns 40 apart; rows 50 apart.
                    xy: [(0, 0), (120, 0), (0, 100)],
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        assert_eq!(shapes.len(), 6);
        assert!(shapes.iter().any(|s| s.rects == vec![(80, 50, 90, 60)]));
    }

    #[test]
    fn aref_steps_round_instead_of_truncating() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Aref {
                    name: "LEAF".into(),
                    strans: GdsStrans::default(),
                    cols: 4,
                    rows: 1,
                    // Column reference point at 110: spacing 27.5 rounds to
                    // 28, not a truncated 27 that would shift every column.
                    xy: [(0, 0), (110, 0), (0, 40)],
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        let mut xs: Vec<i64> = shapes.iter().map(|s| s.rects[0].0).collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![0, 28, 56, 84]);
    }

    #[test]
    fn non_manhattan_transforms_are_rejected() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![unit_square(1)],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans {
                        reflect: false,
                        mag: 1.0,
                        angle: 45.0,
                    },
                    origin: (0, 0),
                }],
            },
        ]);
        assert!(matches!(
            flatten(&library, None),
            Err(GdsError::UnsupportedTransform { .. })
        ));
    }

    #[test]
    fn undefined_references_are_reported() {
        let library = library_with(vec![GdsStruct {
            name: "TOP".into(),
            elements: vec![GdsElement::Sref {
                name: "GHOST".into(),
                strans: GdsStrans::default(),
                origin: (0, 0),
            }],
        }]);
        assert_eq!(
            flatten(&library, None),
            Err(GdsError::UndefinedStruct {
                name: "GHOST".into()
            })
        );
    }

    #[test]
    fn recursive_hierarchies_are_reported() {
        let library = library_with(vec![GdsStruct {
            name: "A".into(),
            elements: vec![GdsElement::Sref {
                name: "A".into(),
                strans: GdsStrans::default(),
                origin: (1, 1),
            }],
        }]);
        assert!(matches!(
            flatten(&library, None),
            Err(GdsError::RecursiveStruct { .. })
        ));
    }

    #[test]
    fn reflection_flips_about_the_x_axis() {
        let library = library_with(vec![
            GdsStruct {
                name: "LEAF".into(),
                elements: vec![GdsElement::Boundary {
                    layer: 1,
                    datatype: 0,
                    xy: vec![(0, 0), (10, 0), (10, 30), (0, 30), (0, 0)],
                }],
            },
            GdsStruct {
                name: "TOP".into(),
                elements: vec![GdsElement::Sref {
                    name: "LEAF".into(),
                    strans: GdsStrans {
                        reflect: true,
                        mag: 1.0,
                        angle: 0.0,
                    },
                    origin: (0, 0),
                }],
            },
        ]);
        let shapes = flatten(&library, None).expect("flatten");
        assert_eq!(shapes[0].rects, vec![(0, -30, 10, 0)]);
    }
}
