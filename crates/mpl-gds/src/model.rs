//! The GDSII object model: libraries, structures and elements.

use crate::record::{RawRecord, RecordReader, RecordType};
use crate::GdsError;

/// Reflection/magnification/rotation applied by a structure reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GdsStrans {
    /// Reflect about the x axis before rotating.
    pub reflect: bool,
    /// Magnification factor (1.0 when absent).
    pub mag: f64,
    /// Counter-clockwise rotation in degrees (0.0 when absent).
    pub angle: f64,
}

impl Default for GdsStrans {
    fn default() -> Self {
        GdsStrans {
            reflect: false,
            mag: 1.0,
            angle: 0.0,
        }
    }
}

/// One element of a GDSII structure.
#[derive(Debug, Clone, PartialEq)]
pub enum GdsElement {
    /// A filled polygon (`BOUNDARY`).
    Boundary {
        /// GDS layer number.
        layer: i16,
        /// GDS datatype number.
        datatype: i16,
        /// The vertex loop in database units (closing point optional).
        xy: Vec<(i32, i32)>,
    },
    /// A wire with width (`PATH`).
    Path {
        /// GDS layer number.
        layer: i16,
        /// GDS datatype number.
        datatype: i16,
        /// End-cap style: 0 flush, 1 round (treated as square), 2 extended.
        pathtype: i16,
        /// Wire width in database units (negative means absolute; abs is used).
        width: i32,
        /// The centre-line vertices in database units.
        xy: Vec<(i32, i32)>,
    },
    /// A rectangle annotation (`BOX`), treated as filled geometry.
    Box {
        /// GDS layer number.
        layer: i16,
        /// GDS boxtype number (mapped to the datatype slot on conversion).
        boxtype: i16,
        /// The vertex loop in database units.
        xy: Vec<(i32, i32)>,
    },
    /// A single structure reference (`SREF`).
    Sref {
        /// Referenced structure name.
        name: String,
        /// Reference transform.
        strans: GdsStrans,
        /// Placement origin in database units.
        origin: (i32, i32),
    },
    /// An array of structure references (`AREF`).
    Aref {
        /// Referenced structure name.
        name: String,
        /// Reference transform.
        strans: GdsStrans,
        /// Number of columns.
        cols: i16,
        /// Number of rows.
        rows: i16,
        /// Origin, column reference point and row reference point.
        xy: [(i32, i32); 3],
    },
}

/// A named GDSII structure (cell): an ordered list of elements.
#[derive(Debug, Clone, PartialEq)]
pub struct GdsStruct {
    /// The structure name.
    pub name: String,
    /// The structure's elements, in file order.
    pub elements: Vec<GdsElement>,
}

/// A GDSII library: named structures plus the unit declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GdsLibrary {
    /// Library name (`LIBNAME`).
    pub name: String,
    /// Size of a database unit in user units (first `UNITS` value).
    pub user_unit: f64,
    /// Size of a database unit in meters (second `UNITS` value).
    pub meter_unit: f64,
    /// The structures, in file order.
    pub structs: Vec<GdsStruct>,
}

impl GdsLibrary {
    /// An empty library with 1 nm database units.
    pub fn new(name: impl Into<String>) -> Self {
        GdsLibrary {
            name: name.into(),
            user_unit: 1e-3,
            meter_unit: 1e-9,
            structs: Vec::new(),
        }
    }

    /// Nanometres per database unit implied by the `UNITS` record.
    pub fn nm_per_db_unit(&self) -> f64 {
        self.meter_unit / 1e-9
    }

    /// Looks up a structure by name.
    pub fn find_struct(&self, name: &str) -> Option<&GdsStruct> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// The top structure: the requested name, or the unique structure that
    /// no other structure references.
    ///
    /// # Errors
    ///
    /// [`GdsError::NoTopStruct`] when the name is absent or the library is
    /// empty, and [`GdsError::AmbiguousTop`] when no name was requested but
    /// several structures are referenced by nothing — silently flattening
    /// just one of them would drop the others' geometry.
    pub fn top_struct(&self, requested: Option<&str>) -> Result<&GdsStruct, GdsError> {
        if let Some(name) = requested {
            return self.find_struct(name).ok_or_else(|| GdsError::NoTopStruct {
                requested: Some(name.to_string()),
            });
        }
        let mut referenced: Vec<&str> = Vec::new();
        for st in &self.structs {
            for element in &st.elements {
                match element {
                    GdsElement::Sref { name, .. } | GdsElement::Aref { name, .. } => {
                        referenced.push(name)
                    }
                    _ => {}
                }
            }
        }
        let unreferenced: Vec<&GdsStruct> = self
            .structs
            .iter()
            .filter(|s| !referenced.iter().any(|r| *r == s.name))
            .collect();
        match unreferenced.as_slice() {
            [single] => Ok(single),
            [] => self
                .structs
                .first()
                .ok_or(GdsError::NoTopStruct { requested: None }),
            several => Err(GdsError::AmbiguousTop {
                candidates: several.iter().map(|s| s.name.clone()).collect(),
            }),
        }
    }

    /// Parses a GDSII byte stream into a library.
    ///
    /// Text, node and property records are skipped; all structural errors
    /// carry the byte offset of the offending record. The structure
    /// reference graph is validated after parsing: cyclic SREF/AREF chains
    /// are [`GdsError::RecursiveStruct`] and chains deeper than
    /// [`MAX_REF_DEPTH`] are [`GdsError::DeepHierarchy`], so a hostile or
    /// corrupt stream can never drive the flattener into unbounded
    /// recursion.
    pub fn from_bytes(bytes: &[u8]) -> Result<GdsLibrary, GdsError> {
        let library = Parser::new(bytes).parse()?;
        check_references(&library)?;
        Ok(library)
    }
}

/// Maximum supported SREF/AREF reference depth (edges along a chain).
pub const MAX_REF_DEPTH: usize = 64;

/// Validates the structure reference graph: no cycles, no chain deeper
/// than [`MAX_REF_DEPTH`]. References to undefined structures are ignored
/// here — flattening reports those with placement context.
pub(crate) fn check_references(library: &GdsLibrary) -> Result<(), GdsError> {
    let index_of = |name: &str| library.structs.iter().position(|s| s.name == name);
    let children: Vec<Vec<usize>> = library
        .structs
        .iter()
        .map(|st| {
            st.elements
                .iter()
                .filter_map(|element| match element {
                    GdsElement::Sref { name, .. } | GdsElement::Aref { name, .. } => index_of(name),
                    _ => None,
                })
                .collect()
        })
        .collect();

    // Iterative three-state DFS: an explicit stack keeps adversarially
    // deep inputs from overflowing the call stack before the typed error
    // can be produced. `depth[s]` is the longest reference chain (in
    // edges) below `s`, well-defined once the graph is known acyclic.
    const NEW: u8 = 0;
    const OPEN: u8 = 1;
    const DONE: u8 = 2;
    let mut state = vec![NEW; children.len()];
    let mut depth = vec![0usize; children.len()];
    for start in 0..children.len() {
        if state[start] != NEW {
            continue;
        }
        state[start] = OPEN;
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(frame) = stack.last_mut() {
            let (node, next_child) = *frame;
            if let Some(&child) = children[node].get(next_child) {
                frame.1 += 1;
                match state[child] {
                    NEW => {
                        state[child] = OPEN;
                        stack.push((child, 0));
                    }
                    OPEN => {
                        return Err(GdsError::RecursiveStruct {
                            name: library.structs[child].name.clone(),
                        })
                    }
                    _ => {}
                }
            } else {
                let below = children[node]
                    .iter()
                    .map(|&child| depth[child] + 1)
                    .max()
                    .unwrap_or(0);
                if below > MAX_REF_DEPTH {
                    return Err(GdsError::DeepHierarchy {
                        name: library.structs[node].name.clone(),
                        limit: MAX_REF_DEPTH,
                    });
                }
                depth[node] = below;
                state[node] = DONE;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// Recursive-descent parser over the record stream.
struct Parser<'a> {
    reader: RecordReader<'a>,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser {
            reader: RecordReader::new(bytes),
        }
    }

    fn next(&mut self, context: &'static str) -> Result<RawRecord<'a>, GdsError> {
        self.reader
            .next_record()?
            .ok_or(GdsError::UnexpectedEof { context })
    }

    fn parse(&mut self) -> Result<GdsLibrary, GdsError> {
        let header = self.next("before HEADER")?;
        if header.record_type != RecordType::Header {
            return Err(unexpected(&header, "where HEADER was required"));
        }
        let mut library = GdsLibrary::new("");
        loop {
            let record = self.next("inside the library (before ENDLIB)")?;
            match record.record_type {
                RecordType::BgnLib
                | RecordType::RefLibs
                | RecordType::Fonts
                | RecordType::AttrTable
                | RecordType::Generations
                | RecordType::Format
                | RecordType::Mask
                | RecordType::EndMasks => {}
                RecordType::LibName => library.name = record.ascii(),
                RecordType::Units => {
                    let units = record.f64s()?;
                    if units.len() != 2 {
                        return Err(GdsError::BadPayload {
                            offset: record.offset,
                            record: "UNITS",
                            reason: "expected exactly two reals",
                        });
                    }
                    library.user_unit = units[0];
                    library.meter_unit = units[1];
                }
                RecordType::BgnStr => {
                    library.structs.push(self.parse_struct()?);
                }
                RecordType::EndLib => return Ok(library),
                _ => return Err(unexpected(&record, "inside the library")),
            }
        }
    }

    fn parse_struct(&mut self) -> Result<GdsStruct, GdsError> {
        let mut name = String::new();
        let mut elements = Vec::new();
        loop {
            let record = self.next("inside a structure (before ENDSTR)")?;
            match record.record_type {
                RecordType::StrName => name = record.ascii(),
                RecordType::Boundary => elements.push(self.parse_boundary(false)?),
                RecordType::Box => elements.push(self.parse_boundary(true)?),
                RecordType::Path => elements.push(self.parse_path()?),
                RecordType::Sref => elements.push(self.parse_sref()?),
                RecordType::Aref => elements.push(self.parse_aref()?),
                RecordType::Text | RecordType::Node => self.skip_element()?,
                RecordType::EndStr => return Ok(GdsStruct { name, elements }),
                _ => return Err(unexpected(&record, "inside a structure")),
            }
        }
    }

    /// Skips records up to and including the next `ENDEL`.
    fn skip_element(&mut self) -> Result<(), GdsError> {
        loop {
            let record = self.next("inside an element (before ENDEL)")?;
            if record.record_type == RecordType::EndEl {
                return Ok(());
            }
        }
    }

    fn parse_boundary(&mut self, is_box: bool) -> Result<GdsElement, GdsError> {
        let mut layer = 0i16;
        let mut datatype = 0i16;
        let mut xy = Vec::new();
        loop {
            let record = self.next("inside an element (before ENDEL)")?;
            match record.record_type {
                RecordType::ElFlags | RecordType::Plex => {}
                RecordType::PropAttr | RecordType::PropValue => {}
                RecordType::Layer => layer = record.single_i16()?,
                RecordType::Datatype | RecordType::BoxType => datatype = record.single_i16()?,
                RecordType::Xy => xy = record.points()?,
                RecordType::EndEl => {
                    return Ok(if is_box {
                        GdsElement::Box {
                            layer,
                            boxtype: datatype,
                            xy,
                        }
                    } else {
                        GdsElement::Boundary {
                            layer,
                            datatype,
                            xy,
                        }
                    });
                }
                _ => return Err(unexpected(&record, "inside a boundary element")),
            }
        }
    }

    fn parse_path(&mut self) -> Result<GdsElement, GdsError> {
        let mut layer = 0i16;
        let mut datatype = 0i16;
        let mut pathtype = 0i16;
        let mut width = 0i32;
        let mut xy = Vec::new();
        loop {
            let record = self.next("inside an element (before ENDEL)")?;
            match record.record_type {
                RecordType::ElFlags | RecordType::Plex => {}
                RecordType::PropAttr | RecordType::PropValue => {}
                RecordType::Layer => layer = record.single_i16()?,
                RecordType::Datatype => datatype = record.single_i16()?,
                RecordType::PathType => pathtype = record.single_i16()?,
                RecordType::Width => width = record.single_i32()?,
                RecordType::Xy => xy = record.points()?,
                RecordType::EndEl => {
                    return Ok(GdsElement::Path {
                        layer,
                        datatype,
                        pathtype,
                        width,
                        xy,
                    });
                }
                _ => return Err(unexpected(&record, "inside a path element")),
            }
        }
    }

    /// Folds a STRANS/MAG/ANGLE record into `strans`. Returns `Ok(false)`
    /// when the record is none of the three; malformed payloads are typed
    /// errors, never silently-defaulted transforms.
    fn parse_strans(
        &mut self,
        record: &RawRecord<'_>,
        strans: &mut GdsStrans,
    ) -> Result<bool, GdsError> {
        match record.record_type {
            RecordType::Strans => {
                strans.reflect = (record.single_i16()? as u16) & 0x8000 != 0;
                Ok(true)
            }
            RecordType::Mag => {
                strans.mag = record.single_f64()?;
                Ok(true)
            }
            RecordType::Angle => {
                strans.angle = record.single_f64()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn parse_sref(&mut self) -> Result<GdsElement, GdsError> {
        let mut name = String::new();
        let mut strans = GdsStrans::default();
        let mut origin = (0i32, 0i32);
        loop {
            let record = self.next("inside an element (before ENDEL)")?;
            if self.parse_strans(&record, &mut strans)? {
                continue;
            }
            match record.record_type {
                RecordType::ElFlags | RecordType::Plex => {}
                RecordType::PropAttr | RecordType::PropValue => {}
                RecordType::Sname => name = record.ascii(),
                RecordType::Xy => {
                    let points = record.points()?;
                    origin = *points.first().ok_or(GdsError::BadPayload {
                        offset: record.offset,
                        record: "XY",
                        reason: "SREF placement needs one point",
                    })?;
                }
                RecordType::EndEl => {
                    return Ok(GdsElement::Sref {
                        name,
                        strans,
                        origin,
                    })
                }
                _ => return Err(unexpected(&record, "inside an SREF element")),
            }
        }
    }

    fn parse_aref(&mut self) -> Result<GdsElement, GdsError> {
        let mut name = String::new();
        let mut strans = GdsStrans::default();
        let mut cols = 1i16;
        let mut rows = 1i16;
        let mut xy = [(0i32, 0i32); 3];
        loop {
            let record = self.next("inside an element (before ENDEL)")?;
            if self.parse_strans(&record, &mut strans)? {
                continue;
            }
            match record.record_type {
                RecordType::ElFlags | RecordType::Plex => {}
                RecordType::PropAttr | RecordType::PropValue => {}
                RecordType::Sname => name = record.ascii(),
                RecordType::ColRow => {
                    let values = record.i16s()?;
                    if values.len() != 2 {
                        return Err(GdsError::BadPayload {
                            offset: record.offset,
                            record: "COLROW",
                            reason: "expected exactly two integers",
                        });
                    }
                    cols = values[0];
                    rows = values[1];
                }
                RecordType::Xy => {
                    let points = record.points()?;
                    if points.len() != 3 {
                        return Err(GdsError::BadPayload {
                            offset: record.offset,
                            record: "XY",
                            reason: "AREF placement needs three points",
                        });
                    }
                    xy = [points[0], points[1], points[2]];
                }
                RecordType::EndEl => {
                    return Ok(GdsElement::Aref {
                        name,
                        strans,
                        cols,
                        rows,
                        xy,
                    })
                }
                _ => return Err(unexpected(&record, "inside an AREF element")),
            }
        }
    }
}

fn unexpected(record: &RawRecord<'_>, context: &'static str) -> GdsError {
    GdsError::UnexpectedRecord {
        offset: record.offset,
        record: record.record_type.name(),
        context,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{emit_ascii, emit_i16s, emit_record, DATA_NONE};

    fn minimal_library() -> Vec<u8> {
        let mut bytes = Vec::new();
        emit_i16s(&mut bytes, RecordType::Header, &[600]).unwrap();
        emit_i16s(&mut bytes, RecordType::BgnLib, &[0; 12]).unwrap();
        emit_ascii(&mut bytes, RecordType::LibName, "TESTLIB").unwrap();
        crate::record::emit_f64s(&mut bytes, RecordType::Units, &[1e-3, 1e-9]).unwrap();
        emit_i16s(&mut bytes, RecordType::BgnStr, &[0; 12]).unwrap();
        emit_ascii(&mut bytes, RecordType::StrName, "TOP").unwrap();
        emit_record(&mut bytes, RecordType::Boundary, DATA_NONE, &[]).unwrap();
        emit_i16s(&mut bytes, RecordType::Layer, &[7]).unwrap();
        emit_i16s(&mut bytes, RecordType::Datatype, &[1]).unwrap();
        crate::record::emit_i32s(
            &mut bytes,
            RecordType::Xy,
            &[0, 0, 10, 0, 10, 20, 0, 20, 0, 0],
        )
        .unwrap();
        emit_record(&mut bytes, RecordType::EndEl, DATA_NONE, &[]).unwrap();
        emit_record(&mut bytes, RecordType::EndStr, DATA_NONE, &[]).unwrap();
        emit_record(&mut bytes, RecordType::EndLib, DATA_NONE, &[]).unwrap();
        bytes
    }

    #[test]
    fn parses_a_minimal_library() {
        let library = GdsLibrary::from_bytes(&minimal_library()).expect("parse");
        assert_eq!(library.name, "TESTLIB");
        assert_eq!(library.nm_per_db_unit(), 1.0);
        assert_eq!(library.structs.len(), 1);
        let top = library.top_struct(None).expect("top");
        assert_eq!(top.name, "TOP");
        assert_eq!(
            top.elements,
            vec![GdsElement::Boundary {
                layer: 7,
                datatype: 1,
                xy: vec![(0, 0), (10, 0), (10, 20), (0, 20), (0, 0)],
            }]
        );
    }

    /// Emits a structure that only places `target` via SREF.
    fn emit_ref_struct(bytes: &mut Vec<u8>, name: &str, target: &str) {
        emit_i16s(bytes, RecordType::BgnStr, &[0; 12]).unwrap();
        emit_ascii(bytes, RecordType::StrName, name).unwrap();
        emit_record(bytes, RecordType::Sref, DATA_NONE, &[]).unwrap();
        emit_ascii(bytes, RecordType::Sname, target).unwrap();
        crate::record::emit_i32s(bytes, RecordType::Xy, &[0, 0]).unwrap();
        emit_record(bytes, RecordType::EndEl, DATA_NONE, &[]).unwrap();
        emit_record(bytes, RecordType::EndStr, DATA_NONE, &[]).unwrap();
    }

    fn library_preamble() -> Vec<u8> {
        let mut bytes = Vec::new();
        emit_i16s(&mut bytes, RecordType::Header, &[600]).unwrap();
        emit_i16s(&mut bytes, RecordType::BgnLib, &[0; 12]).unwrap();
        emit_ascii(&mut bytes, RecordType::LibName, "TESTLIB").unwrap();
        crate::record::emit_f64s(&mut bytes, RecordType::Units, &[1e-3, 1e-9]).unwrap();
        bytes
    }

    #[test]
    fn cyclic_references_are_rejected_at_parse_time() {
        let mut bytes = library_preamble();
        emit_ref_struct(&mut bytes, "A", "B");
        emit_ref_struct(&mut bytes, "B", "A");
        emit_record(&mut bytes, RecordType::EndLib, DATA_NONE, &[]).unwrap();
        assert!(matches!(
            GdsLibrary::from_bytes(&bytes),
            Err(GdsError::RecursiveStruct { name }) if name == "A" || name == "B"
        ));
    }

    #[test]
    fn over_deep_reference_chains_are_rejected_at_parse_time() {
        let mut bytes = library_preamble();
        // S0 -> S1 -> ... -> S{MAX_REF_DEPTH+1}: one edge too many.
        for level in 0..=MAX_REF_DEPTH {
            emit_ref_struct(&mut bytes, &format!("S{level}"), &format!("S{}", level + 1));
        }
        emit_i16s(&mut bytes, RecordType::BgnStr, &[0; 12]).unwrap();
        emit_ascii(
            &mut bytes,
            RecordType::StrName,
            &format!("S{}", MAX_REF_DEPTH + 1),
        )
        .unwrap();
        emit_record(&mut bytes, RecordType::EndStr, DATA_NONE, &[]).unwrap();
        emit_record(&mut bytes, RecordType::EndLib, DATA_NONE, &[]).unwrap();
        assert_eq!(
            GdsLibrary::from_bytes(&bytes),
            Err(GdsError::DeepHierarchy {
                name: "S0".into(),
                limit: MAX_REF_DEPTH,
            })
        );
    }

    #[test]
    fn a_chain_at_the_depth_limit_still_parses() {
        let mut bytes = library_preamble();
        for level in 0..MAX_REF_DEPTH {
            emit_ref_struct(&mut bytes, &format!("S{level}"), &format!("S{}", level + 1));
        }
        emit_i16s(&mut bytes, RecordType::BgnStr, &[0; 12]).unwrap();
        emit_ascii(
            &mut bytes,
            RecordType::StrName,
            &format!("S{MAX_REF_DEPTH}"),
        )
        .unwrap();
        emit_record(&mut bytes, RecordType::EndStr, DATA_NONE, &[]).unwrap();
        emit_record(&mut bytes, RecordType::EndLib, DATA_NONE, &[]).unwrap();
        let library = GdsLibrary::from_bytes(&bytes).expect("exactly at the limit");
        assert_eq!(library.structs.len(), MAX_REF_DEPTH + 1);
    }

    #[test]
    fn missing_endlib_is_an_unexpected_eof() {
        let mut bytes = minimal_library();
        bytes.truncate(bytes.len() - 4);
        assert_eq!(
            GdsLibrary::from_bytes(&bytes),
            Err(GdsError::UnexpectedEof {
                context: "inside the library (before ENDLIB)"
            })
        );
    }

    #[test]
    fn stream_must_start_with_header() {
        let mut bytes = Vec::new();
        emit_record(&mut bytes, RecordType::EndLib, DATA_NONE, &[]).unwrap();
        assert!(matches!(
            GdsLibrary::from_bytes(&bytes),
            Err(GdsError::UnexpectedRecord {
                offset: 0,
                record: "ENDLIB",
                ..
            })
        ));
    }

    #[test]
    fn requested_top_struct_must_exist() {
        let library = GdsLibrary::from_bytes(&minimal_library()).expect("parse");
        assert!(matches!(
            library.top_struct(Some("MISSING")),
            Err(GdsError::NoTopStruct { .. })
        ));
    }

    #[test]
    fn multiple_unreferenced_structs_are_ambiguous() {
        let mut library = GdsLibrary::new("L");
        library.structs.push(GdsStruct {
            name: "TOP_A".into(),
            elements: vec![],
        });
        library.structs.push(GdsStruct {
            name: "TOP_B".into(),
            elements: vec![],
        });
        match library.top_struct(None) {
            Err(GdsError::AmbiguousTop { candidates }) => {
                assert_eq!(candidates, vec!["TOP_A".to_string(), "TOP_B".to_string()]);
            }
            other => panic!("expected AmbiguousTop, got {other:?}"),
        }
        // Naming one explicitly resolves the ambiguity.
        assert_eq!(library.top_struct(Some("TOP_B")).unwrap().name, "TOP_B");
    }
}
