//! Rectilinear polygon → rectangle decomposition (slab sweep).
//!
//! GDSII boundaries are vertex loops; the decomposition flow models features
//! as unions of axis-aligned rectangles. [`loop_to_rects`] converts any
//! simple rectilinear loop into disjoint rectangles by sweeping horizontal
//! slabs between consecutive distinct y coordinates and pairing the vertical
//! edges that span each slab (even–odd rule), then merging vertically
//! adjacent rectangles with identical x spans so that an axis-aligned
//! rectangle round-trips to exactly one rectangle.

/// An axis-aligned rectangle in database units: `(xlo, ylo, xhi, yhi)`.
pub type DbRect = (i64, i64, i64, i64);

/// Decomposes a simple rectilinear vertex loop into disjoint rectangles.
///
/// The closing vertex may be present or absent. Returns `None` when the
/// loop has fewer than four distinct vertices or any edge is neither
/// horizontal nor vertical (non-rectilinear geometry).
pub fn loop_to_rects(points: &[(i64, i64)]) -> Option<Vec<DbRect>> {
    let mut loop_points: Vec<(i64, i64)> = Vec::with_capacity(points.len());
    for &p in points {
        if loop_points.last() != Some(&p) {
            loop_points.push(p);
        }
    }
    if loop_points.len() > 1 && loop_points.first() == loop_points.last() {
        loop_points.pop();
    }
    if loop_points.len() < 4 {
        return None;
    }

    // Collect vertical edges; reject diagonal edges.
    let mut vertical: Vec<(i64, i64, i64)> = Vec::new(); // (x, ylo, yhi)
    let mut ys: Vec<i64> = Vec::with_capacity(loop_points.len());
    for i in 0..loop_points.len() {
        let (x0, y0) = loop_points[i];
        let (x1, y1) = loop_points[(i + 1) % loop_points.len()];
        if x0 == x1 {
            if y0 != y1 {
                vertical.push((x0, y0.min(y1), y0.max(y1)));
            }
        } else if y0 != y1 {
            return None; // diagonal edge
        }
        ys.push(y0);
    }
    if vertical.is_empty() {
        return None; // degenerate (zero-area) loop
    }
    ys.sort_unstable();
    ys.dedup();

    let mut rects: Vec<DbRect> = Vec::new();
    for slab in ys.windows(2) {
        let (ylo, yhi) = (slab[0], slab[1]);
        let mut xs: Vec<i64> = vertical
            .iter()
            .filter(|&&(_, elo, ehi)| elo <= ylo && ehi >= yhi)
            .map(|&(x, _, _)| x)
            .collect();
        xs.sort_unstable();
        if !xs.len().is_multiple_of(2) {
            return None; // not a simple loop
        }
        for pair in xs.chunks_exact(2) {
            if pair[0] < pair[1] {
                rects.push((pair[0], ylo, pair[1], yhi));
            }
        }
    }
    if rects.is_empty() {
        return None;
    }
    Some(merge_vertical(rects))
}

/// Merges vertically adjacent rectangles sharing an identical x span.
///
/// Input must be disjoint slab rectangles ordered by `ylo` (as produced by
/// the sweep above); output rectangles remain disjoint.
fn merge_vertical(rects: Vec<DbRect>) -> Vec<DbRect> {
    let mut merged: Vec<DbRect> = Vec::with_capacity(rects.len());
    for rect in rects {
        if let Some(previous) = merged
            .iter_mut()
            .find(|p| p.0 == rect.0 && p.2 == rect.2 && p.3 == rect.1)
        {
            previous.3 = rect.3;
        } else {
            merged.push(rect);
        }
    }
    merged
}

/// Expands a Manhattan path centre-line into rectangles.
///
/// `width` is the full wire width; interior segment ends are extended by
/// half the width so 90° bends are filled, and terminal ends are extended
/// for end-cap styles other than flush (`pathtype` 0). Odd widths cannot be
/// centred on the integer grid, so the full width is preserved by placing
/// the extra unit on the high side — undersizing a wire would let spacing
/// verification miss real violations. Returns `None` when a segment is
/// diagonal or the path has fewer than two vertices.
pub fn path_to_rects(points: &[(i64, i64)], width: i64, pathtype: i16) -> Option<Vec<DbRect>> {
    if points.len() < 2 || width <= 0 {
        return None;
    }
    let half_lo = width / 2;
    let half_hi = width - half_lo;
    let cap = if pathtype == 0 { 0 } else { half_hi };
    let mut rects = Vec::with_capacity(points.len() - 1);
    for i in 0..points.len() - 1 {
        let (x0, y0) = points[i];
        let (x1, y1) = points[i + 1];
        let start_ext = if i == 0 { cap } else { half_hi };
        let end_ext = if i == points.len() - 2 { cap } else { half_hi };
        if y0 == y1 && x0 != x1 {
            let (lo, hi, lo_ext, hi_ext) = if x0 < x1 {
                (x0, x1, start_ext, end_ext)
            } else {
                (x1, x0, end_ext, start_ext)
            };
            rects.push((lo - lo_ext, y0 - half_lo, hi + hi_ext, y0 + half_hi));
        } else if x0 == x1 && y0 != y1 {
            let (lo, hi, lo_ext, hi_ext) = if y0 < y1 {
                (y0, y1, start_ext, end_ext)
            } else {
                (y1, y0, end_ext, start_ext)
            };
            rects.push((x0 - half_lo, lo - lo_ext, x0 + half_hi, hi + hi_ext));
        } else if x0 == x1 && y0 == y1 {
            continue; // zero-length segment
        } else {
            return None; // diagonal segment
        }
    }
    if rects.is_empty() {
        None
    } else {
        Some(rects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_loop_round_trips_to_one_rect() {
        let points = [(0, 0), (10, 0), (10, 20), (0, 20), (0, 0)];
        assert_eq!(loop_to_rects(&points), Some(vec![(0, 0, 10, 20)]));
        // Closing vertex optional; orientation irrelevant.
        let points = [(0, 20), (10, 20), (10, 0), (0, 0)];
        assert_eq!(loop_to_rects(&points), Some(vec![(0, 0, 10, 20)]));
    }

    #[test]
    fn l_shape_decomposes_into_two_rects() {
        // An L: 100x20 horizontal arm plus 20x100 vertical arm.
        let points = [(0, 0), (100, 0), (100, 20), (20, 20), (20, 100), (0, 100)];
        let rects = loop_to_rects(&points).expect("rectilinear");
        assert_eq!(rects.len(), 2);
        let area: i64 = rects
            .iter()
            .map(|&(xlo, ylo, xhi, yhi)| (xhi - xlo) * (yhi - ylo))
            .sum();
        assert_eq!(area, 100 * 20 + 20 * 80);
    }

    #[test]
    fn u_shape_keeps_disjoint_slabs() {
        // A U: two towers joined by a base.
        let points = [
            (0, 0),
            (60, 0),
            (60, 50),
            (40, 50),
            (40, 10),
            (20, 10),
            (20, 50),
            (0, 50),
        ];
        let rects = loop_to_rects(&points).expect("rectilinear");
        let area: i64 = rects
            .iter()
            .map(|&(xlo, ylo, xhi, yhi)| (xhi - xlo) * (yhi - ylo))
            .sum();
        assert_eq!(area, 60 * 10 + 2 * 20 * 40);
        // No two output rects overlap.
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                let overlap_x = a.0 < b.2 && b.0 < a.2;
                let overlap_y = a.1 < b.3 && b.1 < a.3;
                assert!(!(overlap_x && overlap_y), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn diagonal_edges_are_rejected() {
        let points = [(0, 0), (10, 10), (0, 20)];
        assert_eq!(loop_to_rects(&points), None);
        let points = [(0, 0), (10, 0), (5, 10), (0, 10)];
        assert_eq!(loop_to_rects(&points), None);
    }

    #[test]
    fn degenerate_loops_are_rejected() {
        assert_eq!(loop_to_rects(&[]), None);
        assert_eq!(loop_to_rects(&[(0, 0), (10, 0), (10, 0), (0, 0)]), None);
    }

    #[test]
    fn paths_expand_to_wire_rectangles() {
        // A straight horizontal wire, flush ends.
        let rects = path_to_rects(&[(0, 0), (100, 0)], 20, 0).expect("path");
        assert_eq!(rects, vec![(0, -10, 100, 10)]);
        // Extended end-caps push out by half the width.
        let rects = path_to_rects(&[(0, 0), (100, 0)], 20, 2).expect("path");
        assert_eq!(rects, vec![(-10, -10, 110, 10)]);
    }

    #[test]
    fn path_bends_are_filled() {
        let rects = path_to_rects(&[(0, 0), (50, 0), (50, 40)], 10, 0).expect("path");
        assert_eq!(rects.len(), 2);
        // The horizontal arm is extended into the joint, covering the corner.
        assert_eq!(rects[0], (0, -5, 55, 5));
        assert_eq!(rects[1], (45, -5, 55, 40));
    }

    #[test]
    fn odd_widths_keep_their_full_width() {
        // A width-5 wire cannot be centred on the integer grid; the full
        // width must survive (extra unit on the high side), never shrink.
        let rects = path_to_rects(&[(0, 0), (100, 0)], 5, 0).expect("path");
        assert_eq!(rects, vec![(0, -2, 100, 3)]);
        let rects = path_to_rects(&[(0, 0), (0, 100)], 5, 0).expect("path");
        assert_eq!(rects, vec![(-2, 0, 3, 100)]);
    }

    #[test]
    fn diagonal_paths_are_rejected() {
        assert_eq!(path_to_rects(&[(0, 0), (10, 10)], 4, 0), None);
        assert_eq!(path_to_rects(&[(0, 0)], 4, 0), None);
    }
}
