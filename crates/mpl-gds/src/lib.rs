//! GDSII I/O for multiple-patterning layout decomposition.
//!
//! GDSII is the universal binary interchange format for mask layouts; every
//! production decomposer ingests it. This crate opens real layouts as
//! decomposition workloads and exports decomposition results as *colored*
//! GDS that loads directly in a layout viewer:
//!
//! * [`record`] — the stream layer: a zero-copy record lexer
//!   ([`record::RecordReader`]), typed payload decoders (big-endian i16/i32,
//!   8-byte excess-64 reals, ASCII) and a length/padding-correct emitter.
//! * [`GdsLibrary`] / [`GdsStruct`] / [`GdsElement`] — the object model,
//!   with [`GdsLibrary::from_bytes`] / [`GdsLibrary::to_bytes`] and file
//!   helpers [`GdsLibrary::load`] / [`GdsLibrary::save`].
//! * [`flatten`] — reference expansion: SREF/AREF hierarchies are walked
//!   with Manhattan transforms (translation, x-reflection, 90° rotations)
//!   and every boundary, box and path becomes a rectangle union, the
//!   polygon model the decomposition flow works on.
//! * [`LayerMap`] + [`layout_from_library`] — select which `layer:datatype`
//!   pairs become [`mpl_layout::Layout`] shapes; touching polygons merge
//!   back into connected features by default.
//! * [`library_from_layout`] / [`library_from_masks`] — write layouts, and
//!   colored decompositions with one layer per mask (`base_layer + k`).
//! * [`GdsError`] — every failure is typed and carries the byte offset of
//!   the offending record where applicable.
//!
//! # Example
//!
//! ```
//! use mpl_geometry::{Nm, Rect};
//! use mpl_gds::{layout_from_library, library_from_layout, LayerMap, ReadOptions};
//! use mpl_layout::Layout;
//!
//! let mut builder = Layout::builder("demo");
//! builder.add_rect(Rect::new(Nm(0), Nm(0), Nm(20), Nm(20)));
//! let layout = builder.build();
//!
//! // Layout -> GDS bytes -> Layout.
//! let library = library_from_layout(&layout, 17, 0)?;
//! let bytes = library.to_bytes()?;
//! let parsed = mpl_gds::GdsLibrary::from_bytes(&bytes)?;
//! let round_tripped = layout_from_library(&parsed, &LayerMap::all(), &ReadOptions::default())?;
//! assert_eq!(round_tripped, layout);
//! # Ok::<(), mpl_gds::GdsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod error;
mod flatten;
mod load;
mod model;
mod poly;
pub mod record;
mod write;

pub use convert::{
    layout_from_library, layout_with_hierarchy, library_from_layout, library_from_masks, LayerMap,
    ReadOptions,
};
pub use error::GdsError;
pub use flatten::{flatten, flatten_tagged, FlatInstance, FlatShape, TaggedFlat};
pub use load::{load_layout_file, LoadLayoutError};
pub use model::{GdsElement, GdsLibrary, GdsStrans, GdsStruct, MAX_REF_DEPTH};
pub use poly::{loop_to_rects, path_to_rects, DbRect};
pub use record::{decode_real8, encode_real8};

use mpl_layout::Layout;

/// Reads a GDSII file straight into a [`Layout`].
///
/// Convenience wrapper: [`GdsLibrary::load`] followed by
/// [`layout_from_library`].
///
/// # Errors
///
/// Any I/O, parse, flattening or conversion error, as a [`GdsError`].
pub fn read_layout_file(
    path: &str,
    map: &LayerMap,
    options: &ReadOptions,
) -> Result<Layout, GdsError> {
    let library = GdsLibrary::load(path)?;
    layout_from_library(&library, map, options)
}

/// Reads a GDSII file into a [`Layout`] plus its cell-instance provenance.
///
/// Convenience wrapper: [`GdsLibrary::load`] followed by
/// [`layout_with_hierarchy`]. The layout is identical to what
/// [`read_layout_file`] returns.
///
/// # Errors
///
/// Any I/O, parse, flattening or conversion error, as a [`GdsError`].
pub fn read_layout_file_with_hierarchy(
    path: &str,
    map: &LayerMap,
    options: &ReadOptions,
) -> Result<(Layout, mpl_layout::LayoutHierarchy), GdsError> {
    let library = GdsLibrary::load(path)?;
    layout_with_hierarchy(&library, map, options)
}

/// Writes a [`Layout`] to a GDSII file on `layer:datatype`.
///
/// # Errors
///
/// Any conversion or I/O error, as a [`GdsError`].
pub fn write_layout_file(
    path: &str,
    layout: &Layout,
    layer: i16,
    datatype: i16,
) -> Result<(), GdsError> {
    library_from_layout(layout, layer, datatype)?.save(path)
}

/// Writes a colored decomposition to a GDSII file, one layer per mask
/// (`base_layer + k`).
///
/// # Errors
///
/// Any conversion or I/O error, as a [`GdsError`].
pub fn write_colored_file(
    path: &str,
    name: &str,
    masks: &[Vec<mpl_geometry::Polygon>],
    base_layer: i16,
) -> Result<(), GdsError> {
    library_from_masks(name, masks, base_layer)?.save(path)
}
