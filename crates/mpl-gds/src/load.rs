//! Format-dispatching layout loader.
//!
//! The workspace understands two on-disk layout formats — the line-oriented
//! text format of `mpl_layout::io` and GDSII. [`load_layout_file`] is the
//! single place that sniffs the format (via
//! [`mpl_layout::io::LayoutFormat::detect`]) and routes to the right
//! parser, so every front end (CLI, benchmarks) agrees on dispatch and
//! error wording.

use crate::{layout_from_library, GdsError, GdsLibrary, LayerMap, ReadOptions};
use mpl_layout::io::{self, LayoutFormat, ParseLayoutError};
use mpl_layout::Layout;
use std::fmt;

/// Error loading a layout file of either supported format.
#[derive(Debug)]
pub enum LoadLayoutError {
    /// The file could not be read.
    Io {
        /// The path being read.
        path: String,
        /// The operating-system error message.
        message: String,
    },
    /// The file was detected as text but is not valid UTF-8.
    NotText {
        /// The path being read.
        path: String,
    },
    /// The file was detected as text but failed to parse.
    Text {
        /// The path being read.
        path: String,
        /// The underlying parse error.
        error: ParseLayoutError,
    },
    /// The file was detected as GDSII but failed to parse or convert.
    Gds {
        /// The path being read.
        path: String,
        /// The underlying GDS error (carries byte offsets).
        error: GdsError,
    },
}

impl fmt::Display for LoadLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadLayoutError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            LoadLayoutError::NotText { path } => {
                write!(f, "cannot parse {path}: not valid UTF-8 text")
            }
            LoadLayoutError::Text { path, error } => write!(f, "cannot parse {path}: {error}"),
            LoadLayoutError::Gds { path, error } => write!(f, "cannot parse {path}: {error}"),
        }
    }
}

impl std::error::Error for LoadLayoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadLayoutError::Io { .. } | LoadLayoutError::NotText { .. } => None,
            LoadLayoutError::Text { error, .. } => Some(error),
            LoadLayoutError::Gds { error, .. } => Some(error),
        }
    }
}

/// Loads a layout file, dispatching on the detected format.
///
/// The file is read once; GDSII inputs are filtered through `map` and
/// flattened per `options`, text inputs are parsed strictly (invalid UTF-8
/// is an error, not silently replaced).
///
/// # Errors
///
/// Returns a [`LoadLayoutError`] naming the failing path and cause.
pub fn load_layout_file(
    path: &str,
    map: &LayerMap,
    options: &ReadOptions,
) -> Result<Layout, LoadLayoutError> {
    let bytes = std::fs::read(path).map_err(|error| LoadLayoutError::Io {
        path: path.to_string(),
        message: error.to_string(),
    })?;
    match LayoutFormat::detect(path, &bytes) {
        LayoutFormat::Gds => {
            let library = GdsLibrary::from_bytes(&bytes).map_err(|error| LoadLayoutError::Gds {
                path: path.to_string(),
                error,
            })?;
            layout_from_library(&library, map, options).map_err(|error| LoadLayoutError::Gds {
                path: path.to_string(),
                error,
            })
        }
        LayoutFormat::Text => {
            let text = String::from_utf8(bytes).map_err(|_| LoadLayoutError::NotText {
                path: path.to_string(),
            })?;
            io::from_text(&text).map_err(|error| LoadLayoutError::Text {
                path: path.to_string(),
                error,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_geometry::{Nm, Rect};

    fn temp_path(name: &str) -> String {
        let mut path = std::env::temp_dir();
        path.push(format!("mpl-gds-load-{}-{name}", std::process::id()));
        path.to_string_lossy().into_owned()
    }

    fn sample_layout() -> Layout {
        let mut builder = Layout::builder("load");
        builder.add_rect(Rect::new(Nm(0), Nm(0), Nm(20), Nm(20)));
        builder.build()
    }

    #[test]
    fn dispatches_text_and_gds_by_content() {
        let layout = sample_layout();
        let text_path = temp_path("a.txt");
        std::fs::write(&text_path, io::to_text(&layout)).expect("write");
        let gds_path = temp_path("a.gds");
        crate::write_layout_file(&gds_path, &layout, 1, 0).expect("write");
        assert_eq!(
            load_layout_file(&text_path, &LayerMap::all(), &ReadOptions::default())
                .expect("text")
                .shape_count(),
            1
        );
        assert_eq!(
            load_layout_file(&gds_path, &LayerMap::all(), &ReadOptions::default())
                .expect("gds")
                .shape_count(),
            1
        );
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&gds_path).ok();
    }

    #[test]
    fn invalid_utf8_text_is_a_typed_error() {
        let path = temp_path("bad.txt");
        std::fs::write(&path, [0x23u8, 0x20, 0xff, 0xfe]).expect("write");
        let error = load_layout_file(&path, &LayerMap::all(), &ReadOptions::default())
            .expect_err("must fail");
        assert!(matches!(error, LoadLayoutError::NotText { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_name_the_path() {
        let error = load_layout_file(
            "/nonexistent/layout.gds",
            &LayerMap::all(),
            &ReadOptions::default(),
        )
        .expect_err("must fail");
        assert!(error.to_string().contains("/nonexistent/layout.gds"));
    }
}
