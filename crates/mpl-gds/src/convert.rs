//! Conversion between GDSII libraries and the workspace layout model.
//!
//! The bridge has three parts:
//!
//! * [`LayerMap`] — selects which GDS `layer:datatype` pairs become layout
//!   shapes (the decomposition flow is single-layer; a real GDS holds many).
//! * [`layout_from_library`] — flattens a library, filters it through the
//!   layer map, scales database units to nanometres, and (by default)
//!   merges touching polygons back into connected shapes, which is what the
//!   stitch machinery expects.
//! * [`library_from_layout`] / [`library_from_masks`] — serialise a layout
//!   (or a colored decomposition, one layer per mask) as boundary records,
//!   one rectangle per boundary.

use crate::flatten::flatten_tagged;
use crate::model::{GdsElement, GdsLibrary, GdsStruct};
use crate::GdsError;
use mpl_geometry::{GridIndex, Nm, Polygon, Rect};
use mpl_layout::{CellInstance, Layout, LayoutHierarchy};

/// Selection of GDS `layer:datatype` pairs to import.
#[derive(Debug, Clone, Default)]
pub struct LayerMap {
    /// `None` accepts every pair; otherwise only listed pairs are imported.
    /// A `None` datatype accepts every datatype on that layer.
    selection: Option<Vec<(i16, Option<i16>)>>,
}

impl LayerMap {
    /// Accepts every layer and datatype.
    pub fn all() -> Self {
        LayerMap { selection: None }
    }

    /// Adds one `layer` (all datatypes) or `layer:datatype` pair.
    pub fn with(mut self, layer: i16, datatype: Option<i16>) -> Self {
        self.selection
            .get_or_insert_with(Vec::new)
            .push((layer, datatype));
        self
    }

    /// Parses a `L` or `L:D` specification, as given to `--layer`.
    ///
    /// # Errors
    ///
    /// Returns [`GdsError::BadLayerSpec`] for anything else.
    pub fn parse_spec(spec: &str) -> Result<(i16, Option<i16>), GdsError> {
        let bad = || GdsError::BadLayerSpec {
            spec: spec.to_string(),
        };
        match spec.split_once(':') {
            Some((layer, datatype)) => {
                let layer = layer.trim().parse().map_err(|_| bad())?;
                let datatype = datatype.trim().parse().map_err(|_| bad())?;
                Ok((layer, Some(datatype)))
            }
            None => {
                let layer = spec.trim().parse().map_err(|_| bad())?;
                Ok((layer, None))
            }
        }
    }

    /// Builds a map from `--layer` specifications; no specs means *all*.
    ///
    /// # Errors
    ///
    /// Returns [`GdsError::BadLayerSpec`] for a malformed specification.
    pub fn from_specs<S: AsRef<str>>(specs: &[S]) -> Result<LayerMap, GdsError> {
        let mut map = LayerMap::all();
        for spec in specs {
            let (layer, datatype) = LayerMap::parse_spec(spec.as_ref())?;
            map = map.with(layer, datatype);
        }
        Ok(map)
    }

    /// Whether geometry on `layer`/`datatype` is imported.
    pub fn accepts(&self, layer: i16, datatype: i16) -> bool {
        match &self.selection {
            None => true,
            Some(pairs) => pairs
                .iter()
                .any(|&(l, d)| l == layer && d.is_none_or(|d| d == datatype)),
        }
    }

    /// Whether this map accepts everything.
    pub fn is_all(&self) -> bool {
        self.selection.is_none()
    }
}

/// Options for [`layout_from_library`].
#[derive(Debug, Clone, Default)]
pub struct ReadOptions {
    /// Flatten from this structure (default: the inferred top structure).
    pub top: Option<String>,
    /// Keep fractured boundaries apart instead of merging touching polygons
    /// into connected shapes.
    pub keep_fractured: bool,
}

/// Flattens a GDS library into a single-layer [`Layout`].
///
/// Geometry is filtered through `map`, scaled from database units to
/// nanometres using the library's `UNITS` record, and — unless
/// `options.keep_fractured` is set — touching polygons are merged into
/// connected shapes so that a feature fractured into many boundaries (the
/// normal state of real mask data) becomes one decomposition vertex.
///
/// # Errors
///
/// Propagates flattening errors and reports [`GdsError::EmptySelection`]
/// when a restrictive layer map filtered away every shape.
pub fn layout_from_library(
    library: &GdsLibrary,
    map: &LayerMap,
    options: &ReadOptions,
) -> Result<Layout, GdsError> {
    Ok(layout_with_hierarchy(library, map, options)?.0)
}

/// Flattens a GDS library like [`layout_from_library`] — the returned
/// layout is identical — and additionally reports which top-level cell
/// instance every shape came from.
///
/// A merged shape (touching polygons unioned into one) keeps its tag only
/// when every constituent polygon came from the same instance; geometry
/// that merges across a cell boundary, or belongs to the top structure
/// itself, is tagged `None`. Instance translations are scaled to
/// nanometres.
///
/// # Errors
///
/// Same as [`layout_from_library`].
pub fn layout_with_hierarchy(
    library: &GdsLibrary,
    map: &LayerMap,
    options: &ReadOptions,
) -> Result<(Layout, LayoutHierarchy), GdsError> {
    let top_name = library.top_struct(options.top.as_deref())?.name.clone();
    let flat = flatten_tagged(library, options.top.as_deref())?;
    let scale = library.nm_per_db_unit();
    let mut polygons: Vec<Polygon> = Vec::new();
    let mut tags: Vec<Option<usize>> = Vec::new();
    let mut seen_any = false;
    for (shape, origin) in flat.shapes.iter().zip(&flat.origins) {
        seen_any = true;
        if !map.accepts(shape.layer, shape.datatype) {
            continue;
        }
        let rects: Vec<Rect> = shape
            .rects
            .iter()
            .map(|&(xlo, ylo, xhi, yhi)| {
                Rect::new(
                    scale_to_nm(xlo, scale),
                    scale_to_nm(ylo, scale),
                    scale_to_nm(xhi, scale),
                    scale_to_nm(yhi, scale),
                )
            })
            .collect();
        if let Ok(polygon) = Polygon::from_rects(rects) {
            polygons.push(polygon);
            tags.push(*origin);
        }
    }
    if polygons.is_empty() && seen_any && !map.is_all() {
        return Err(GdsError::EmptySelection);
    }

    let groups = if options.keep_fractured {
        (0..polygons.len()).map(|i| vec![i]).collect()
    } else {
        touching_groups(&polygons)
    };

    let name = if top_name.is_empty() {
        library.name.clone()
    } else {
        top_name
    };
    let mut builder = Layout::builder(name);
    let mut shape_origins: Vec<Option<usize>> = Vec::new();
    for group in groups {
        let mut rects = Vec::new();
        for &index in &group {
            rects.extend_from_slice(polygons[index].rects());
        }
        if let Ok(polygon) = Polygon::from_rects(rects) {
            builder.add_polygon(polygon);
            // A union spanning several instances (or top-level geometry)
            // has no single origin.
            shape_origins.push(
                group
                    .iter()
                    .map(|&index| tags[index])
                    .reduce(|a, b| if a == b { a } else { None })
                    .flatten(),
            );
        }
    }
    let instances = flat
        .instances
        .iter()
        .map(|instance| CellInstance {
            cell: instance.cell.clone(),
            dx: scale_to_nm(instance.dx, scale).value(),
            dy: scale_to_nm(instance.dy, scale).value(),
        })
        .collect();
    Ok((
        builder.build(),
        LayoutHierarchy::new(instances, shape_origins).with_nested_inherited(flat.nested_inherited),
    ))
}

/// Groups polygon indices into connected (touching/overlapping) components,
/// preserving first-appearance order.
fn touching_groups(polygons: &[Polygon]) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..polygons.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }

    // Spatial index over component rectangles keeps this near-linear.
    let mut index = GridIndex::new(Nm(256));
    let mut rect_owner: Vec<usize> = Vec::new();
    for (poly_index, polygon) in polygons.iter().enumerate() {
        for &rect in polygon.rects() {
            index.insert(rect_owner.len(), rect);
            rect_owner.push(poly_index);
        }
    }
    for (poly_index, polygon) in polygons.iter().enumerate() {
        for rect in polygon.rects() {
            for candidate in index.query_within(rect, Nm(1)) {
                let other = rect_owner[candidate];
                if other == poly_index {
                    continue;
                }
                let (ra, rb) = (find(&mut parent, poly_index), find(&mut parent, other));
                if ra != rb && polygons[poly_index].touches(&polygons[other]) {
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    parent[hi] = lo;
                }
            }
        }
    }

    let mut group_of_root: Vec<Option<usize>> = vec![None; polygons.len()];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..polygons.len() {
        let root = find(&mut parent, i);
        match group_of_root[root] {
            Some(g) => groups[g].push(i),
            None => {
                group_of_root[root] = Some(groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

fn scale_to_nm(value: i64, scale: f64) -> Nm {
    if scale == 1.0 {
        Nm(value)
    } else {
        Nm((value as f64 * scale).round() as i64)
    }
}

fn db_coord(value: Nm) -> Result<i32, GdsError> {
    i32::try_from(value.value()).map_err(|_| GdsError::CoordinateOverflow {
        value: value.value(),
    })
}

fn rect_loop(rect: &Rect) -> Result<Vec<(i32, i32)>, GdsError> {
    let (xlo, ylo) = (db_coord(rect.xlo())?, db_coord(rect.ylo())?);
    let (xhi, yhi) = (db_coord(rect.xhi())?, db_coord(rect.yhi())?);
    Ok(vec![
        (xlo, ylo),
        (xhi, ylo),
        (xhi, yhi),
        (xlo, yhi),
        (xlo, ylo),
    ])
}

/// Serialises a layout as a one-structure GDS library on `layer:datatype`,
/// one `BOUNDARY` per component rectangle, with 1 nm database units.
///
/// # Errors
///
/// Returns [`GdsError::CoordinateOverflow`] when a coordinate exceeds the
/// 32-bit GDSII coordinate space.
pub fn library_from_layout(
    layout: &Layout,
    layer: i16,
    datatype: i16,
) -> Result<GdsLibrary, GdsError> {
    let mut elements = Vec::new();
    for shape in layout.iter() {
        for rect in shape.polygon().rects() {
            elements.push(GdsElement::Boundary {
                layer,
                datatype,
                xy: rect_loop(rect)?,
            });
        }
    }
    let mut library = GdsLibrary::new(layout.name());
    library.structs.push(GdsStruct {
        name: layout.name().to_string(),
        elements,
    });
    Ok(library)
}

/// Serialises a colored decomposition: mask `k` goes to layer
/// `base_layer + k` (datatype 0), so the result opens directly in a layout
/// viewer with one selectable layer per exposure.
///
/// # Errors
///
/// Returns [`GdsError::CoordinateOverflow`] when a coordinate exceeds the
/// 32-bit GDSII coordinate space.
pub fn library_from_masks(
    name: &str,
    masks: &[Vec<Polygon>],
    base_layer: i16,
) -> Result<GdsLibrary, GdsError> {
    let mut elements = Vec::new();
    for (mask_index, polygons) in masks.iter().enumerate() {
        let layer = base_layer + mask_index as i16;
        for polygon in polygons {
            for rect in polygon.rects() {
                elements.push(GdsElement::Boundary {
                    layer,
                    datatype: 0,
                    xy: rect_loop(rect)?,
                });
            }
        }
    }
    let mut library = GdsLibrary::new(name);
    library.structs.push(GdsStruct {
        name: name.to_string(),
        elements,
    });
    Ok(library)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64, c: i64, d: i64) -> Rect {
        Rect::new(Nm(a), Nm(b), Nm(c), Nm(d))
    }

    fn sample_layout() -> Layout {
        let mut builder = Layout::builder("conv");
        builder.add_rect(r(0, 0, 20, 20));
        builder.add_polygon(
            Polygon::from_rects(vec![r(100, 0, 200, 20), r(100, 0, 120, 100)]).expect("non-empty"),
        );
        builder.build()
    }

    #[test]
    fn layout_round_trips_through_a_library() {
        let layout = sample_layout();
        let library = library_from_layout(&layout, 7, 0).expect("write");
        let parsed =
            layout_from_library(&library, &LayerMap::all(), &ReadOptions::default()).expect("read");
        assert_eq!(parsed.name(), "conv");
        assert_eq!(parsed.shape_count(), 2);
        // Shape 1's two touching rectangles were re-merged into one shape.
        assert_eq!(
            parsed.shapes()[1].polygon().bounding_box(),
            r(100, 0, 200, 100)
        );
    }

    #[test]
    fn layer_map_filters_and_reports_empty_selections() {
        let layout = sample_layout();
        let library = library_from_layout(&layout, 7, 3).expect("write");
        let map = LayerMap::all().with(7, Some(3));
        let parsed = layout_from_library(&library, &map, &ReadOptions::default()).expect("read");
        assert_eq!(parsed.shape_count(), 2);
        let wrong_datatype = LayerMap::all().with(7, Some(0));
        assert_eq!(
            layout_from_library(&library, &wrong_datatype, &ReadOptions::default()),
            Err(GdsError::EmptySelection)
        );
        let wrong_layer = LayerMap::all().with(8, None);
        assert_eq!(
            layout_from_library(&library, &wrong_layer, &ReadOptions::default()),
            Err(GdsError::EmptySelection)
        );
    }

    #[test]
    fn keep_fractured_preserves_boundary_granularity() {
        let layout = sample_layout();
        let library = library_from_layout(&layout, 1, 0).expect("write");
        let options = ReadOptions {
            keep_fractured: true,
            ..ReadOptions::default()
        };
        let parsed = layout_from_library(&library, &LayerMap::all(), &options).expect("read");
        // Three rectangles were written, so three unmerged shapes come back.
        assert_eq!(parsed.shape_count(), 3);
    }

    #[test]
    fn hierarchy_tags_survive_conversion_and_merging_clears_them() {
        use crate::model::GdsStrans;
        // CELL is a 20x20 square. TOP places it three times: two
        // placements touch edge-to-edge (their union has no single
        // origin), the third is isolated and keeps its tag. TOP also owns
        // a square of its own.
        let mut library = GdsLibrary::new("L");
        library.structs.push(GdsStruct {
            name: "CELL".into(),
            elements: vec![GdsElement::Boundary {
                layer: 1,
                datatype: 0,
                xy: vec![(0, 0), (20, 0), (20, 20), (0, 20), (0, 0)],
            }],
        });
        let place = |x: i32, y: i32| GdsElement::Sref {
            name: "CELL".into(),
            strans: GdsStrans::default(),
            origin: (x, y),
        };
        library.structs.push(GdsStruct {
            name: "TOP".into(),
            elements: vec![
                place(0, 0),
                place(20, 0), // touches the first placement
                place(500, 0),
                GdsElement::Boundary {
                    layer: 1,
                    datatype: 0,
                    xy: vec![(900, 0), (920, 0), (920, 20), (900, 20), (900, 0)],
                },
            ],
        });
        let (layout, hierarchy) =
            layout_with_hierarchy(&library, &LayerMap::all(), &ReadOptions::default())
                .expect("read");
        assert_eq!(
            layout,
            layout_from_library(&library, &LayerMap::all(), &ReadOptions::default()).expect("read")
        );
        assert_eq!(hierarchy.instance_count(), 3);
        assert_eq!(hierarchy.cell_count(), 1);
        assert_eq!(hierarchy.instances()[2].dx, 500);
        // Merged pair, isolated instance, top-level square.
        assert_eq!(layout.shape_count(), 3);
        assert_eq!(hierarchy.shape_origins(), &[None, Some(2), None]);
    }

    #[test]
    fn layer_specs_parse_and_reject() {
        assert_eq!(LayerMap::parse_spec("17").unwrap(), (17, None));
        assert_eq!(LayerMap::parse_spec("17:4").unwrap(), (17, Some(4)));
        assert_eq!(LayerMap::parse_spec(" 2 : 1 ").unwrap(), (2, Some(1)));
        assert!(LayerMap::parse_spec("m1").is_err());
        assert!(LayerMap::parse_spec("1:x").is_err());
        assert!(LayerMap::parse_spec("").is_err());
    }

    #[test]
    fn masks_land_on_consecutive_layers() {
        let masks = vec![
            vec![Polygon::rect(r(0, 0, 10, 10))],
            vec![Polygon::rect(r(40, 0, 50, 10))],
        ];
        let library = library_from_masks("colored", &masks, 100).expect("write");
        let mask0 = LayerMap::all().with(100, None);
        let mask1 = LayerMap::all().with(101, None);
        let layout0 = layout_from_library(&library, &mask0, &ReadOptions::default()).expect("read");
        let layout1 = layout_from_library(&library, &mask1, &ReadOptions::default()).expect("read");
        assert_eq!(layout0.shape_count(), 1);
        assert_eq!(layout1.shape_count(), 1);
        assert_eq!(
            layout0.shapes()[0].polygon().bounding_box(),
            r(0, 0, 10, 10)
        );
    }

    #[test]
    fn huge_coordinates_overflow_cleanly() {
        let mut builder = Layout::builder("big");
        builder.add_rect(r(0, 0, 3_000_000_000, 10));
        let layout = builder.build();
        assert_eq!(
            library_from_layout(&layout, 1, 0),
            Err(GdsError::CoordinateOverflow {
                value: 3_000_000_000
            })
        );
    }

    #[test]
    fn database_units_scale_to_nanometres() {
        let layout = sample_layout();
        let mut library = library_from_layout(&layout, 1, 0).expect("write");
        // Pretend the file was written with 2 nm database units.
        library.meter_unit = 2e-9;
        let parsed =
            layout_from_library(&library, &LayerMap::all(), &ReadOptions::default()).expect("read");
        assert_eq!(parsed.shapes()[0].polygon().bounding_box(), r(0, 0, 40, 40));
    }
}
