//! The GDSII record layer: lexing, payload decoding and emission.
//!
//! A GDSII stream is a sequence of records, each with a 4-byte header —
//! big-endian total length (including the header), a record-type byte and a
//! data-type byte — followed by the payload. This module provides
//! [`RecordReader`], a zero-copy lexer over a byte slice, typed payload
//! decoders on [`RawRecord`], and [`emit_record`], the length/padding-correct
//! writer used by the serialisation path.

use crate::GdsError;

/// The record types of the GDSII stream format that this reader understands.
///
/// Numeric values are the record-type bytes of the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum RecordType {
    Header = 0x00,
    BgnLib = 0x01,
    LibName = 0x02,
    Units = 0x03,
    EndLib = 0x04,
    BgnStr = 0x05,
    StrName = 0x06,
    EndStr = 0x07,
    Boundary = 0x08,
    Path = 0x09,
    Sref = 0x0a,
    Aref = 0x0b,
    Text = 0x0c,
    Layer = 0x0d,
    Datatype = 0x0e,
    Width = 0x0f,
    Xy = 0x10,
    EndEl = 0x11,
    Sname = 0x12,
    ColRow = 0x13,
    TextNode = 0x14,
    Node = 0x15,
    TextType = 0x16,
    Presentation = 0x17,
    String = 0x19,
    Strans = 0x1a,
    Mag = 0x1b,
    Angle = 0x1c,
    RefLibs = 0x1f,
    Fonts = 0x20,
    PathType = 0x21,
    Generations = 0x22,
    AttrTable = 0x23,
    ElFlags = 0x26,
    NodeType = 0x2a,
    PropAttr = 0x2b,
    PropValue = 0x2c,
    Box = 0x2d,
    BoxType = 0x2e,
    Plex = 0x2f,
    TapeNum = 0x32,
    TapeCode = 0x33,
    Format = 0x36,
    Mask = 0x37,
    EndMasks = 0x38,
}

impl RecordType {
    /// Maps a record-type byte to a known record type.
    pub fn from_byte(byte: u8) -> Option<RecordType> {
        use RecordType::*;
        Some(match byte {
            0x00 => Header,
            0x01 => BgnLib,
            0x02 => LibName,
            0x03 => Units,
            0x04 => EndLib,
            0x05 => BgnStr,
            0x06 => StrName,
            0x07 => EndStr,
            0x08 => Boundary,
            0x09 => Path,
            0x0a => Sref,
            0x0b => Aref,
            0x0c => Text,
            0x0d => Layer,
            0x0e => Datatype,
            0x0f => Width,
            0x10 => Xy,
            0x11 => EndEl,
            0x12 => Sname,
            0x13 => ColRow,
            0x14 => TextNode,
            0x15 => Node,
            0x16 => TextType,
            0x17 => Presentation,
            0x19 => String,
            0x1a => Strans,
            0x1b => Mag,
            0x1c => Angle,
            0x1f => RefLibs,
            0x20 => Fonts,
            0x21 => PathType,
            0x22 => Generations,
            0x23 => AttrTable,
            0x26 => ElFlags,
            0x2a => NodeType,
            0x2b => PropAttr,
            0x2c => PropValue,
            0x2d => Box,
            0x2e => BoxType,
            0x2f => Plex,
            0x32 => TapeNum,
            0x33 => TapeCode,
            0x36 => Format,
            0x37 => Mask,
            0x38 => EndMasks,
            _ => return None,
        })
    }

    /// The record name used in error messages.
    pub fn name(self) -> &'static str {
        use RecordType::*;
        match self {
            Header => "HEADER",
            BgnLib => "BGNLIB",
            LibName => "LIBNAME",
            Units => "UNITS",
            EndLib => "ENDLIB",
            BgnStr => "BGNSTR",
            StrName => "STRNAME",
            EndStr => "ENDSTR",
            Boundary => "BOUNDARY",
            Path => "PATH",
            Sref => "SREF",
            Aref => "AREF",
            Text => "TEXT",
            Layer => "LAYER",
            Datatype => "DATATYPE",
            Width => "WIDTH",
            Xy => "XY",
            EndEl => "ENDEL",
            Sname => "SNAME",
            ColRow => "COLROW",
            TextNode => "TEXTNODE",
            Node => "NODE",
            TextType => "TEXTTYPE",
            Presentation => "PRESENTATION",
            String => "STRING",
            Strans => "STRANS",
            Mag => "MAG",
            Angle => "ANGLE",
            RefLibs => "REFLIBS",
            Fonts => "FONTS",
            PathType => "PATHTYPE",
            Generations => "GENERATIONS",
            AttrTable => "ATTRTABLE",
            ElFlags => "ELFLAGS",
            NodeType => "NODETYPE",
            PropAttr => "PROPATTR",
            PropValue => "PROPVALUE",
            Box => "BOX",
            BoxType => "BOXTYPE",
            Plex => "PLEX",
            TapeNum => "TAPENUM",
            TapeCode => "TAPECODE",
            Format => "FORMAT",
            Mask => "MASK",
            EndMasks => "ENDMASKS",
        }
    }
}

/// One lexed record: header fields plus a borrowed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord<'a> {
    /// Byte offset of the record header within the stream.
    pub offset: usize,
    /// The record type.
    pub record_type: RecordType,
    /// The raw payload (record bytes after the 4-byte header).
    pub data: &'a [u8],
}

impl RawRecord<'_> {
    /// Decodes the payload as big-endian two-byte signed integers.
    pub fn i16s(&self) -> Result<Vec<i16>, GdsError> {
        if !self.data.len().is_multiple_of(2) {
            return Err(self.bad_payload("length is not a multiple of 2"));
        }
        Ok(self
            .data
            .chunks_exact(2)
            .map(|c| i16::from_be_bytes([c[0], c[1]]))
            .collect())
    }

    /// Decodes the payload as a single two-byte signed integer.
    pub fn single_i16(&self) -> Result<i16, GdsError> {
        match self.data {
            [a, b] => Ok(i16::from_be_bytes([*a, *b])),
            _ => Err(self.bad_payload("expected exactly 2 bytes")),
        }
    }

    /// Decodes the payload as big-endian four-byte signed integers.
    pub fn i32s(&self) -> Result<Vec<i32>, GdsError> {
        if !self.data.len().is_multiple_of(4) {
            return Err(self.bad_payload("length is not a multiple of 4"));
        }
        Ok(self
            .data
            .chunks_exact(4)
            .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Decodes the payload as a single four-byte signed integer.
    pub fn single_i32(&self) -> Result<i32, GdsError> {
        match self.data {
            [a, b, c, d] => Ok(i32::from_be_bytes([*a, *b, *c, *d])),
            _ => Err(self.bad_payload("expected exactly 4 bytes")),
        }
    }

    /// Decodes the payload as 8-byte excess-64 reals.
    pub fn f64s(&self) -> Result<Vec<f64>, GdsError> {
        if !self.data.len().is_multiple_of(8) {
            return Err(self.bad_payload("length is not a multiple of 8"));
        }
        Ok(self
            .data
            .chunks_exact(8)
            .map(|c| {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(c);
                decode_real8(bytes)
            })
            .collect())
    }

    /// Decodes the payload as a single 8-byte excess-64 real.
    pub fn single_f64(&self) -> Result<f64, GdsError> {
        if self.data.len() != 8 {
            return Err(self.bad_payload("expected exactly 8 bytes"));
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.data);
        Ok(decode_real8(bytes))
    }

    /// Decodes the payload as ASCII text, stripping NUL padding.
    pub fn ascii(&self) -> String {
        let trimmed = match self.data.iter().rposition(|&b| b != 0) {
            Some(last) => &self.data[..=last],
            None => &[],
        };
        trimmed.iter().map(|&b| b as char).collect()
    }

    /// Decodes the payload as coordinate pairs (XY record).
    pub fn points(&self) -> Result<Vec<(i32, i32)>, GdsError> {
        if !self.data.len().is_multiple_of(8) {
            return Err(self.bad_payload("length is not a multiple of 8 (x/y pairs)"));
        }
        Ok(self.i32s()?.chunks_exact(2).map(|c| (c[0], c[1])).collect())
    }

    fn bad_payload(&self, reason: &'static str) -> GdsError {
        GdsError::BadPayload {
            offset: self.offset,
            record: self.record_type.name(),
            reason,
        }
    }
}

/// Zero-copy record lexer over a GDSII byte stream.
#[derive(Debug, Clone)]
pub struct RecordReader<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> RecordReader<'a> {
    /// Starts lexing at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        RecordReader { bytes, position: 0 }
    }

    /// Current byte offset (start of the next record).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Lexes the next record, or `None` at a clean end of stream.
    ///
    /// Trailing NUL padding after `ENDLIB` (GDSII files are often padded to
    /// a 2048-byte tape-block multiple) is treated as end of stream.
    pub fn next_record(&mut self) -> Result<Option<RawRecord<'a>>, GdsError> {
        let offset = self.position;
        let remaining = &self.bytes[offset..];
        if remaining.is_empty() || remaining.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        if remaining.len() < 4 {
            return Err(GdsError::Truncated {
                offset,
                needed: 4 - remaining.len(),
                remaining: remaining.len(),
            });
        }
        let length = u16::from_be_bytes([remaining[0], remaining[1]]) as usize;
        if length < 4 || !length.is_multiple_of(2) {
            return Err(GdsError::BadRecordLength { offset, length });
        }
        if remaining.len() < length {
            return Err(GdsError::Truncated {
                offset,
                needed: length - remaining.len(),
                remaining: remaining.len(),
            });
        }
        let record_type = RecordType::from_byte(remaining[2]).ok_or({
            GdsError::UnknownRecordType {
                offset,
                record_type: remaining[2],
            }
        })?;
        self.position = offset + length;
        Ok(Some(RawRecord {
            offset,
            record_type,
            data: &remaining[4..length],
        }))
    }
}

/// Decodes an 8-byte GDSII excess-64 real.
///
/// Layout: sign bit, 7-bit base-16 exponent biased by 64, 56-bit mantissa
/// interpreted as a fraction in `[0, 1)`.
pub fn decode_real8(bytes: [u8; 8]) -> f64 {
    let sign = if bytes[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let exponent = i32::from(bytes[0] & 0x7f) - 64;
    let mut mantissa = 0u64;
    for &byte in &bytes[1..8] {
        mantissa = (mantissa << 8) | u64::from(byte);
    }
    if mantissa == 0 {
        return 0.0;
    }
    let fraction = mantissa as f64 / (1u64 << 56) as f64;
    sign * fraction * 16f64.powi(exponent)
}

/// Encodes a finite `f64` as an 8-byte GDSII excess-64 real.
pub fn encode_real8(value: f64) -> [u8; 8] {
    if value == 0.0 || !value.is_finite() {
        return [0u8; 8];
    }
    let sign_bit = if value < 0.0 { 0x80u8 } else { 0x00u8 };
    let mut fraction = value.abs();
    let mut exponent = 0i32;
    // Normalise so that fraction lies in [1/16, 1).
    while fraction >= 1.0 {
        fraction /= 16.0;
        exponent += 1;
    }
    while fraction < 1.0 / 16.0 {
        fraction *= 16.0;
        exponent -= 1;
    }
    let mut mantissa = (fraction * (1u64 << 56) as f64).round() as u64;
    if mantissa >= (1u64 << 56) {
        // Rounding pushed the fraction to 1.0: renormalise instead of
        // letting the value collapse to an all-zero (0.0) mantissa.
        mantissa >>= 4;
        exponent += 1;
    }
    let biased = (exponent + 64).clamp(0, 127) as u8;
    let mut bytes = [0u8; 8];
    bytes[0] = sign_bit | biased;
    for i in 0..7 {
        bytes[1 + i] = ((mantissa >> (8 * (6 - i))) & 0xff) as u8;
    }
    bytes
}

/// Appends one record (header + payload, padded per the data type) to `out`.
///
/// # Errors
///
/// Returns [`GdsError::RecordTooLong`] when the payload does not fit the
/// 16-bit GDSII record length (e.g. a boundary with more vertices than one
/// `XY` record can carry).
pub fn emit_record(
    out: &mut Vec<u8>,
    record_type: RecordType,
    data_type: u8,
    payload: &[u8],
) -> Result<(), GdsError> {
    let total = 4 + payload.len();
    if total > u16::MAX as usize {
        return Err(GdsError::RecordTooLong {
            record: record_type.name(),
            bytes: payload.len(),
        });
    }
    out.extend_from_slice(&(total as u16).to_be_bytes());
    out.push(record_type as u8);
    out.push(data_type);
    out.extend_from_slice(payload);
    Ok(())
}

/// Appends an ASCII record, NUL-padding the string to an even length.
///
/// # Errors
///
/// Returns [`GdsError::RecordTooLong`] when the string does not fit.
pub fn emit_ascii(out: &mut Vec<u8>, record_type: RecordType, text: &str) -> Result<(), GdsError> {
    let mut payload: Vec<u8> = text.bytes().collect();
    if !payload.len().is_multiple_of(2) {
        payload.push(0);
    }
    emit_record(out, record_type, DATA_ASCII, payload.as_slice())
}

/// Appends a record of big-endian two-byte integers.
///
/// # Errors
///
/// Returns [`GdsError::RecordTooLong`] when the values do not fit.
pub fn emit_i16s(
    out: &mut Vec<u8>,
    record_type: RecordType,
    values: &[i16],
) -> Result<(), GdsError> {
    let mut payload = Vec::with_capacity(values.len() * 2);
    for value in values {
        payload.extend_from_slice(&value.to_be_bytes());
    }
    emit_record(out, record_type, DATA_I16, &payload)
}

/// Appends a record of big-endian four-byte integers.
///
/// # Errors
///
/// Returns [`GdsError::RecordTooLong`] when the values do not fit.
pub fn emit_i32s(
    out: &mut Vec<u8>,
    record_type: RecordType,
    values: &[i32],
) -> Result<(), GdsError> {
    let mut payload = Vec::with_capacity(values.len() * 4);
    for value in values {
        payload.extend_from_slice(&value.to_be_bytes());
    }
    emit_record(out, record_type, DATA_I32, &payload)
}

/// Appends a record of excess-64 reals.
///
/// # Errors
///
/// Returns [`GdsError::RecordTooLong`] when the values do not fit.
pub fn emit_f64s(
    out: &mut Vec<u8>,
    record_type: RecordType,
    values: &[f64],
) -> Result<(), GdsError> {
    let mut payload = Vec::with_capacity(values.len() * 8);
    for &value in values {
        payload.extend_from_slice(&encode_real8(value));
    }
    emit_record(out, record_type, DATA_F64, &payload)
}

/// GDSII data-type byte: no data.
pub const DATA_NONE: u8 = 0x00;
/// GDSII data-type byte: bit array.
pub const DATA_BITS: u8 = 0x01;
/// GDSII data-type byte: two-byte signed integers.
pub const DATA_I16: u8 = 0x02;
/// GDSII data-type byte: four-byte signed integers.
pub const DATA_I32: u8 = 0x03;
/// GDSII data-type byte: eight-byte excess-64 reals.
pub const DATA_F64: u8 = 0x05;
/// GDSII data-type byte: ASCII string.
pub const DATA_ASCII: u8 = 0x06;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real8_known_vectors() {
        // 1.0 encodes as exponent 1 (16^1), mantissa 1/16: 0x41 0x10 00...
        assert_eq!(encode_real8(1.0), [0x41, 0x10, 0, 0, 0, 0, 0, 0]);
        assert_eq!(decode_real8([0x41, 0x10, 0, 0, 0, 0, 0, 0]), 1.0);
        // -2.0: sign bit set, same exponent, mantissa 2/16.
        assert_eq!(encode_real8(-2.0), [0xc1, 0x20, 0, 0, 0, 0, 0, 0]);
        assert_eq!(decode_real8([0xc1, 0x20, 0, 0, 0, 0, 0, 0]), -2.0);
        // Zero is all-zero bytes.
        assert_eq!(encode_real8(0.0), [0u8; 8]);
        assert_eq!(decode_real8([0u8; 8]), 0.0);
    }

    #[test]
    fn real8_round_trips_typical_unit_values() {
        for &value in &[1e-9, 1e-3, 0.5, 0.001, 25.0, 1e-6, 3.25, -0.125] {
            let decoded = decode_real8(encode_real8(value));
            let relative = ((decoded - value) / value).abs();
            assert!(relative < 1e-12, "{value} -> {decoded}");
        }
    }

    #[test]
    fn lexer_walks_records_and_reports_offsets() {
        let mut bytes = Vec::new();
        emit_record(&mut bytes, RecordType::Header, DATA_I16, &[0x02, 0x58]).unwrap();
        emit_ascii(&mut bytes, RecordType::LibName, "LIB").unwrap();
        emit_record(&mut bytes, RecordType::EndLib, DATA_NONE, &[]).unwrap();
        let mut reader = RecordReader::new(&bytes);
        let header = reader.next_record().unwrap().unwrap();
        assert_eq!(header.record_type, RecordType::Header);
        assert_eq!(header.offset, 0);
        assert_eq!(header.single_i16().unwrap(), 600);
        let libname = reader.next_record().unwrap().unwrap();
        assert_eq!(libname.record_type, RecordType::LibName);
        assert_eq!(libname.offset, 6);
        assert_eq!(libname.ascii(), "LIB");
        let endlib = reader.next_record().unwrap().unwrap();
        assert_eq!(endlib.record_type, RecordType::EndLib);
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn trailing_nul_padding_is_end_of_stream() {
        let mut bytes = Vec::new();
        emit_record(&mut bytes, RecordType::EndLib, DATA_NONE, &[]).unwrap();
        bytes.extend_from_slice(&[0u8; 44]);
        let mut reader = RecordReader::new(&bytes);
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_reported() {
        let bytes = [0x00u8, 0x06, 0x00];
        let mut reader = RecordReader::new(&bytes);
        assert_eq!(
            reader.next_record(),
            Err(GdsError::Truncated {
                offset: 0,
                needed: 1,
                remaining: 3,
            })
        );
    }

    #[test]
    fn truncated_payload_is_reported() {
        // Declares 12 bytes but only 6 are present.
        let bytes = [0x00u8, 0x0c, 0x10, 0x03, 0x00, 0x01];
        let mut reader = RecordReader::new(&bytes);
        assert_eq!(
            reader.next_record(),
            Err(GdsError::Truncated {
                offset: 0,
                needed: 6,
                remaining: 6,
            })
        );
    }

    #[test]
    fn bad_record_lengths_are_reported() {
        for bad in [[0x00u8, 0x03, 0x10, 0x03], [0x00, 0x07, 0x10, 0x03]] {
            let mut reader = RecordReader::new(&bad);
            assert!(matches!(
                reader.next_record(),
                Err(GdsError::BadRecordLength { offset: 0, .. })
            ));
        }
        // Length 0 would loop forever if accepted.
        let mut reader = RecordReader::new(&[0x00, 0x00, 0x10, 0x03, 0x01]);
        assert!(matches!(
            reader.next_record(),
            Err(GdsError::BadRecordLength {
                offset: 0,
                length: 0
            })
        ));
    }

    #[test]
    fn unknown_record_types_are_reported() {
        let bytes = [0x00u8, 0x04, 0x7e, 0x00];
        let mut reader = RecordReader::new(&bytes);
        assert_eq!(
            reader.next_record(),
            Err(GdsError::UnknownRecordType {
                offset: 0,
                record_type: 0x7e,
            })
        );
    }

    #[test]
    fn payload_decoders_validate_sizes() {
        let record = RawRecord {
            offset: 0,
            record_type: RecordType::Xy,
            data: &[0, 0, 0],
        };
        assert!(record.points().is_err());
        assert!(record.i32s().is_err());
        assert!(record.single_i16().is_err());
        let record = RawRecord {
            offset: 0,
            record_type: RecordType::Xy,
            data: &[0, 0, 0, 1, 0, 0, 0, 2],
        };
        assert_eq!(record.points().unwrap(), vec![(1, 2)]);
    }

    #[test]
    fn ascii_strips_nul_padding() {
        let record = RawRecord {
            offset: 0,
            record_type: RecordType::StrName,
            data: b"TOP\0",
        };
        assert_eq!(record.ascii(), "TOP");
    }
}
