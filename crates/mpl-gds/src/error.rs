//! Typed errors for GDSII parsing, conversion and writing.

use std::fmt;

/// Error produced while reading, interpreting or converting a GDSII stream.
///
/// Every lexical variant carries the byte offset of the offending record so
/// command-line consumers can point at the exact position in the file,
/// matching the line-number idiom of `mpl_layout::io::ParseLayoutError`.
#[derive(Debug, Clone, PartialEq)]
pub enum GdsError {
    /// The stream ended in the middle of a record header or payload.
    Truncated {
        /// Byte offset of the record whose header or payload was cut short.
        offset: usize,
        /// Number of bytes the record still needed.
        needed: usize,
        /// Number of bytes actually remaining.
        remaining: usize,
    },
    /// A record header declared an impossible length (< 4 bytes or odd).
    BadRecordLength {
        /// Byte offset of the record header.
        offset: usize,
        /// The declared total record length.
        length: usize,
    },
    /// A record type byte outside the GDSII specification.
    UnknownRecordType {
        /// Byte offset of the record header.
        offset: usize,
        /// The unrecognised record-type byte.
        record_type: u8,
    },
    /// A record carried a payload whose size does not fit its data type
    /// (e.g. an `XY` record whose payload is not a multiple of 8 bytes).
    BadPayload {
        /// Byte offset of the record header.
        offset: usize,
        /// Name of the record being decoded.
        record: &'static str,
        /// What was wrong with the payload.
        reason: &'static str,
    },
    /// A record appeared somewhere the GDSII grammar does not allow it.
    UnexpectedRecord {
        /// Byte offset of the record header.
        offset: usize,
        /// Name of the record that appeared.
        record: &'static str,
        /// The parser context it appeared in.
        context: &'static str,
    },
    /// The stream ended before `ENDLIB` (or a structure before `ENDSTR`).
    UnexpectedEof {
        /// The parser context that was still open.
        context: &'static str,
    },
    /// A structure reference names a structure the library does not define.
    UndefinedStruct {
        /// The referenced structure name.
        name: String,
    },
    /// Structure references form a cycle.
    RecursiveStruct {
        /// The structure on which the cycle was detected.
        name: String,
    },
    /// An acyclic reference chain exceeds the supported depth limit.
    DeepHierarchy {
        /// The structure whose reference chain exceeds the limit.
        name: String,
        /// The maximum supported reference depth, in chain edges.
        limit: usize,
    },
    /// A reference uses a transform the rectilinear pipeline cannot honour
    /// (non-multiple-of-90° rotation or non-unit magnification).
    UnsupportedTransform {
        /// The referenced structure name.
        name: String,
        /// Rotation angle in degrees.
        angle: f64,
        /// Magnification factor.
        mag: f64,
    },
    /// A boundary is not rectilinear, so it cannot be decomposed into the
    /// rectangle-union polygon model.
    NonRectilinear {
        /// The structure containing the boundary.
        structure: String,
        /// Index of the offending element within the structure.
        element: usize,
    },
    /// The requested top structure does not exist, or the library is empty.
    NoTopStruct {
        /// The requested name, if any.
        requested: Option<String>,
    },
    /// Several structures are referenced by nothing; the caller must name
    /// the top structure explicitly rather than have geometry silently
    /// dropped.
    AmbiguousTop {
        /// The candidate top-structure names, in file order.
        candidates: Vec<String>,
    },
    /// No geometry survived layer selection.
    EmptySelection,
    /// A layout coordinate does not fit the 32-bit GDSII coordinate space.
    CoordinateOverflow {
        /// The offending nanometre coordinate.
        value: i64,
    },
    /// A record payload exceeds the 16-bit GDSII record length (e.g. a
    /// boundary with more vertices than one `XY` record can carry).
    RecordTooLong {
        /// Name of the record being emitted.
        record: &'static str,
        /// The payload size that did not fit.
        bytes: usize,
    },
    /// A malformed `--layer L[:D]` specification.
    BadLayerSpec {
        /// The offending specification text.
        spec: String,
    },
    /// An underlying I/O failure (file read/write).
    Io {
        /// The path being accessed.
        path: String,
        /// The operating-system error message.
        message: String,
    },
}

impl fmt::Display for GdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdsError::Truncated {
                offset,
                needed,
                remaining,
            } => write!(
                f,
                "truncated GDSII record at byte {offset}: needs {needed} more bytes, \
                 only {remaining} remain"
            ),
            GdsError::BadRecordLength { offset, length } => write!(
                f,
                "bad GDSII record length {length} at byte {offset} \
                 (records are at least 4 bytes and even-sized)"
            ),
            GdsError::UnknownRecordType {
                offset,
                record_type,
            } => write!(
                f,
                "unknown GDSII record type {record_type:#04x} at byte {offset}"
            ),
            GdsError::BadPayload {
                offset,
                record,
                reason,
            } => write!(f, "bad {record} payload at byte {offset}: {reason}"),
            GdsError::UnexpectedRecord {
                offset,
                record,
                context,
            } => write!(f, "unexpected {record} record at byte {offset} {context}"),
            GdsError::UnexpectedEof { context } => {
                write!(f, "GDSII stream ended {context}")
            }
            GdsError::UndefinedStruct { name } => {
                write!(f, "reference to undefined structure {name:?}")
            }
            GdsError::RecursiveStruct { name } => {
                write!(f, "structure references recurse through {name:?}")
            }
            GdsError::DeepHierarchy { name, limit } => write!(
                f,
                "structure {name:?} exceeds the reference depth limit of {limit}"
            ),
            GdsError::UnsupportedTransform { name, angle, mag } => write!(
                f,
                "reference to {name:?} uses an unsupported transform \
                 (angle {angle}°, mag {mag}); only 90° multiples and mag 1 are supported"
            ),
            GdsError::NonRectilinear { structure, element } => write!(
                f,
                "element {element} of structure {structure:?} is not rectilinear"
            ),
            GdsError::NoTopStruct { requested } => match requested {
                Some(name) => write!(f, "top structure {name:?} not found in library"),
                None => write!(f, "library defines no structures to flatten"),
            },
            GdsError::AmbiguousTop { candidates } => write!(
                f,
                "library has {} top-level structures ({}); select one explicitly",
                candidates.len(),
                candidates.join(", ")
            ),
            GdsError::EmptySelection => {
                write!(f, "no geometry matched the layer selection")
            }
            GdsError::CoordinateOverflow { value } => write!(
                f,
                "coordinate {value} nm does not fit the 32-bit GDSII coordinate space"
            ),
            GdsError::RecordTooLong { record, bytes } => write!(
                f,
                "{record} payload of {bytes} bytes exceeds the 16-bit GDSII record length"
            ),
            GdsError::BadLayerSpec { spec } => write!(
                f,
                "bad layer specification {spec:?} (expected LAYER or LAYER:DATATYPE)"
            ),
            GdsError::Io { path, message } => write!(f, "cannot access {path}: {message}"),
        }
    }
}

impl std::error::Error for GdsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offsets() {
        let err = GdsError::Truncated {
            offset: 12,
            needed: 8,
            remaining: 2,
        };
        assert!(err.to_string().contains("byte 12"));
        let err = GdsError::BadRecordLength {
            offset: 40,
            length: 3,
        };
        assert!(err.to_string().contains("byte 40"));
        let err = GdsError::UnknownRecordType {
            offset: 7,
            record_type: 0x7f,
        };
        assert!(err.to_string().contains("0x7f"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(GdsError::EmptySelection);
        assert!(!err.to_string().is_empty());
    }
}
