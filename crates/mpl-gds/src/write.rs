//! GDSII serialisation: turns a [`GdsLibrary`] back into a record stream.
//!
//! The emitter produces deterministic output (fixed timestamps) so written
//! files are byte-for-byte reproducible and diff-friendly in tests.

use crate::model::{GdsElement, GdsLibrary, GdsStrans};
use crate::record::{
    emit_ascii, emit_f64s, emit_i16s, emit_i32s, emit_record, RecordType, DATA_BITS, DATA_NONE,
};
use crate::GdsError;

/// Fixed timestamp written into `BGNLIB`/`BGNSTR` (year, month, day, hour,
/// minute, second — twice, for modification and access). Deterministic
/// output matters more to this workspace than real wall-clock stamps.
const TIMESTAMP: [i16; 12] = [2026, 1, 1, 0, 0, 0, 2026, 1, 1, 0, 0, 0];

impl GdsLibrary {
    /// Serialises the library to GDSII bytes.
    ///
    /// # Errors
    ///
    /// Returns [`GdsError::RecordTooLong`] when a name or vertex list does
    /// not fit the 16-bit GDSII record length.
    pub fn to_bytes(&self) -> Result<Vec<u8>, GdsError> {
        let mut out = Vec::new();
        emit_i16s(&mut out, RecordType::Header, &[600])?;
        emit_i16s(&mut out, RecordType::BgnLib, &TIMESTAMP)?;
        emit_ascii(&mut out, RecordType::LibName, &self.name)?;
        emit_f64s(
            &mut out,
            RecordType::Units,
            &[self.user_unit, self.meter_unit],
        )?;
        for st in &self.structs {
            emit_i16s(&mut out, RecordType::BgnStr, &TIMESTAMP)?;
            emit_ascii(&mut out, RecordType::StrName, &st.name)?;
            for element in &st.elements {
                emit_element(&mut out, element)?;
            }
            emit_record(&mut out, RecordType::EndStr, DATA_NONE, &[])?;
        }
        emit_record(&mut out, RecordType::EndLib, DATA_NONE, &[])?;
        Ok(out)
    }

    /// Writes the library to a file.
    ///
    /// # Errors
    ///
    /// Returns [`GdsError::Io`] when the file cannot be written, or any
    /// serialisation error from [`GdsLibrary::to_bytes`].
    pub fn save(&self, path: &str) -> Result<(), GdsError> {
        std::fs::write(path, self.to_bytes()?).map_err(|error| GdsError::Io {
            path: path.to_string(),
            message: error.to_string(),
        })
    }

    /// Reads and parses a library from a file.
    ///
    /// # Errors
    ///
    /// Returns [`GdsError::Io`] when the file cannot be read, or any parse
    /// error from [`GdsLibrary::from_bytes`].
    pub fn load(path: &str) -> Result<GdsLibrary, GdsError> {
        let bytes = std::fs::read(path).map_err(|error| GdsError::Io {
            path: path.to_string(),
            message: error.to_string(),
        })?;
        GdsLibrary::from_bytes(&bytes)
    }
}

fn emit_strans(out: &mut Vec<u8>, strans: &GdsStrans) -> Result<(), GdsError> {
    let default = GdsStrans::default();
    if *strans == default {
        return Ok(());
    }
    let bits: i16 = if strans.reflect { -0x8000 } else { 0 };
    emit_record(out, RecordType::Strans, DATA_BITS, &bits.to_be_bytes())?;
    if strans.mag != 1.0 {
        emit_f64s(out, RecordType::Mag, &[strans.mag])?;
    }
    if strans.angle != 0.0 {
        emit_f64s(out, RecordType::Angle, &[strans.angle])?;
    }
    Ok(())
}

fn emit_xy(out: &mut Vec<u8>, points: &[(i32, i32)]) -> Result<(), GdsError> {
    let mut flat = Vec::with_capacity(points.len() * 2);
    for &(x, y) in points {
        flat.push(x);
        flat.push(y);
    }
    emit_i32s(out, RecordType::Xy, &flat)
}

fn emit_element(out: &mut Vec<u8>, element: &GdsElement) -> Result<(), GdsError> {
    match element {
        GdsElement::Boundary {
            layer,
            datatype,
            xy,
        } => {
            emit_record(out, RecordType::Boundary, DATA_NONE, &[])?;
            emit_i16s(out, RecordType::Layer, &[*layer])?;
            emit_i16s(out, RecordType::Datatype, &[*datatype])?;
            emit_xy(out, xy)?;
        }
        GdsElement::Box { layer, boxtype, xy } => {
            emit_record(out, RecordType::Box, DATA_NONE, &[])?;
            emit_i16s(out, RecordType::Layer, &[*layer])?;
            emit_i16s(out, RecordType::BoxType, &[*boxtype])?;
            emit_xy(out, xy)?;
        }
        GdsElement::Path {
            layer,
            datatype,
            pathtype,
            width,
            xy,
        } => {
            emit_record(out, RecordType::Path, DATA_NONE, &[])?;
            emit_i16s(out, RecordType::Layer, &[*layer])?;
            emit_i16s(out, RecordType::Datatype, &[*datatype])?;
            if *pathtype != 0 {
                emit_i16s(out, RecordType::PathType, &[*pathtype])?;
            }
            if *width != 0 {
                emit_i32s(out, RecordType::Width, &[*width])?;
            }
            emit_xy(out, xy)?;
        }
        GdsElement::Sref {
            name,
            strans,
            origin,
        } => {
            emit_record(out, RecordType::Sref, DATA_NONE, &[])?;
            emit_ascii(out, RecordType::Sname, name)?;
            emit_strans(out, strans)?;
            emit_xy(out, &[*origin])?;
        }
        GdsElement::Aref {
            name,
            strans,
            cols,
            rows,
            xy,
        } => {
            emit_record(out, RecordType::Aref, DATA_NONE, &[])?;
            emit_ascii(out, RecordType::Sname, name)?;
            emit_strans(out, strans)?;
            emit_i16s(out, RecordType::ColRow, &[*cols, *rows])?;
            emit_xy(out, xy.as_slice())?;
        }
    }
    emit_record(out, RecordType::EndEl, DATA_NONE, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GdsStruct;

    fn sample_library() -> GdsLibrary {
        let mut library = GdsLibrary::new("RT");
        library.structs.push(GdsStruct {
            name: "TOP".into(),
            elements: vec![
                GdsElement::Boundary {
                    layer: 5,
                    datatype: 2,
                    xy: vec![(0, 0), (40, 0), (40, 20), (0, 20), (0, 0)],
                },
                GdsElement::Path {
                    layer: 5,
                    datatype: 0,
                    pathtype: 2,
                    width: 8,
                    xy: vec![(100, 0), (200, 0), (200, 80)],
                },
                GdsElement::Sref {
                    name: "CELL".into(),
                    strans: GdsStrans {
                        reflect: true,
                        mag: 1.0,
                        angle: 270.0,
                    },
                    origin: (-30, 60),
                },
                GdsElement::Aref {
                    name: "CELL".into(),
                    strans: GdsStrans::default(),
                    cols: 4,
                    rows: 2,
                    xy: [(0, 0), (400, 0), (0, 100)],
                },
            ],
        });
        library.structs.push(GdsStruct {
            name: "CELL".into(),
            elements: vec![GdsElement::Box {
                layer: 6,
                boxtype: 1,
                xy: vec![(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)],
            }],
        });
        library
    }

    #[test]
    fn library_round_trips_through_bytes() {
        let library = sample_library();
        let bytes = library.to_bytes().unwrap();
        let parsed = GdsLibrary::from_bytes(&bytes).expect("parse");
        assert_eq!(parsed, library);
    }

    #[test]
    fn oversized_records_are_typed_errors_not_panics() {
        // A boundary with more vertices than one XY record can carry (the
        // payload limit is 65531 bytes, i.e. 8191 x/y pairs).
        let mut library = GdsLibrary::new("BIG");
        library.structs.push(GdsStruct {
            name: "TOP".into(),
            elements: vec![GdsElement::Boundary {
                layer: 1,
                datatype: 0,
                xy: (0..9000).map(|i| (i, 0)).collect(),
            }],
        });
        assert!(matches!(
            library.to_bytes(),
            Err(GdsError::RecordTooLong { record: "XY", .. })
        ));
    }

    #[test]
    fn serialisation_is_deterministic() {
        let library = sample_library();
        assert_eq!(library.to_bytes().unwrap(), library.to_bytes().unwrap());
    }

    #[test]
    fn records_are_even_sized_and_stream_starts_with_header() {
        let bytes = sample_library().to_bytes().unwrap();
        assert_eq!(&bytes[..4], &[0x00, 0x06, 0x00, 0x02]);
        assert_eq!(bytes.len() % 2, 0);
        // Odd-length names must be NUL-padded: library "RT" is even, but a
        // 3-character structure name exercises the padding path.
        let mut library = GdsLibrary::new("ODD");
        library.structs.push(GdsStruct {
            name: "TOP".into(),
            elements: vec![],
        });
        let bytes = library.to_bytes().unwrap();
        let parsed = GdsLibrary::from_bytes(&bytes).expect("parse");
        assert_eq!(parsed.name, "ODD");
        assert_eq!(parsed.structs[0].name, "TOP");
    }
}
