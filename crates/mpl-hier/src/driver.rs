//! The hierarchical run driver: split along instance seams, decompose
//! through the batch engine (memoized, so each distinct cell body is
//! colored once), reconcile, assemble.

use crate::reconcile::reconcile;
use crate::split::{classify, SplitComponent};
use mpl_core::{
    ComponentStats, ConfigError, Decomposer, DecompositionObserver, DecompositionPlan,
    DecompositionResult, DecompositionSession, Executor, LayoutId, MemoCache,
};
use mpl_layout::LayoutHierarchy;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the hierarchical driver did to one layout.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HierStats {
    /// Top-level cell instances the layout's hierarchy records.
    pub instances: usize,
    /// Distinct cells among those instances.
    pub cells: usize,
    /// Shapes whose instance tag was *inherited* through a nested
    /// reference chain (SREF/AREF at depth ≥ 2 below the top cell).
    ///
    /// The driver only models one level of hierarchy: geometry emitted by
    /// a nested reference is silently attributed to the enclosing
    /// top-level instance, so its per-instance pieces can mix distinct
    /// sub-cells. A non-zero value flags that approximation; it does not
    /// affect correctness (reconciliation re-verifies every conflict
    /// globally), only how much cell-level reuse the splitter can find.
    pub nested_inherited: usize,
    /// Components whose vertices share one provenance, decomposed whole —
    /// exactly as the flat memoized path would.
    pub resident_components: usize,
    /// Mixed-provenance components split along instance seams.
    pub split_components: usize,
    /// Per-instance pieces cut out of the split components.
    pub instance_pieces: usize,
    /// Vertices of the residual pieces: top-level geometry and shapes that
    /// merged across an instance boundary.
    pub boundary_vertices: usize,
    /// Piece colorings rotated by a non-identity permutation during
    /// reconciliation.
    pub permuted_pieces: usize,
    /// Boundary vertices re-colored by the greedy repair fallback.
    pub recolored_vertices: usize,
    /// Cross-provenance conflicts after the permutation pass, before
    /// repair.
    pub cross_conflicts_before: usize,
    /// Cross-provenance conflicts after repair (what the final coloring
    /// pays).
    pub cross_conflicts_after: usize,
}

/// A layout's decomposition result together with its hierarchy statistics.
#[derive(Debug)]
pub struct HierLayoutResult {
    /// The merged decomposition, assembled over the full layout graph; its
    /// conflict count is recomputed globally and therefore agrees with
    /// [`verify_spacing`](mpl_core::verify_spacing).
    pub result: DecompositionResult,
    /// What the hierarchical driver did to produce it.
    pub stats: HierStats,
}

/// Streaming notifications of a hierarchical run's per-piece progress.
pub trait HierProgress: Sync {
    /// A piece sub-problem (or the layout's resident batch) finished:
    /// `done` of `total` inner decompositions of `layout` are complete.
    fn piece_done(&self, layout: LayoutId, done: usize, total: usize) {
        let _ = (layout, done, total);
    }
}

/// Ignores all progress (the [`run_hier`] default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHierProgress;

impl HierProgress for NoHierProgress {}

/// How one outer layout maps onto inner submissions.
struct LayoutSplits {
    /// Original task indices of single-provenance components.
    resident: Vec<usize>,
    /// Mixed-provenance components, split along instance seams.
    split: Vec<SplitComponent>,
    hierarchy: Option<Arc<LayoutHierarchy>>,
}

/// What one inner submission carries, in inner submission order.
enum Submission {
    /// All resident tasks of outer layout `slot`, batched as one plan.
    Resident { slot: usize },
    /// Piece `piece` of split component `split` of outer layout `slot`.
    Piece {
        slot: usize,
        split: usize,
        piece: usize,
    },
}

/// Maps inner plan completions to per-layout piece progress ticks.
struct HierObserver<'a> {
    progress: &'a dyn HierProgress,
    /// Inner slot → (outer id, outer slot).
    map: Vec<(LayoutId, usize)>,
    /// Inner submissions per outer slot.
    totals: Vec<usize>,
    done: Vec<AtomicUsize>,
}

impl DecompositionObserver for HierObserver<'_> {
    fn execution_finished(&self, inner: LayoutId, _result: &DecompositionResult) {
        let (outer, slot) = self.map[inner.index()];
        let done = self.done[slot].fetch_add(1, Ordering::Relaxed) + 1;
        self.progress.piece_done(outer, done, self.totals[slot]);
    }
}

/// Executes the session's batch hierarchically — see [`run_hier_observed`]
/// for the full contract.
///
/// # Errors
///
/// Propagates the [`ConfigError`]s of [`run_hier_observed`].
pub fn run_hier(
    session: &DecompositionSession,
    executor: &dyn Executor,
) -> Result<Vec<(LayoutId, HierLayoutResult)>, ConfigError> {
    run_hier_observed(session, executor, &NoHierProgress)
}

/// Executes the session's batch hierarchically, streaming per-piece
/// progress.
///
/// Every layout's components are classified by the cell-instance
/// provenance its [`DecompositionSession::hierarchy`] attachment records.
/// Single-provenance components flow through the ordinary batch engine
/// untouched; mixed-provenance components are split into per-instance
/// pieces plus a residual boundary piece, decomposed as independent
/// sub-problems on the same executor, and reconciled deterministically
/// (mismatch-minimising color permutations first, bounded greedy boundary
/// repair second).  The merged coloring's conflict count is recomputed
/// over the full graph, so it always agrees with
/// [`verify_spacing`](mpl_core::verify_spacing).  Results are returned in
/// submission order, like [`DecompositionSession::run`].
///
/// The inner batch **always** memoizes — through the session's cache when
/// one is attached, through a transient cache otherwise — so
/// translation-identical instance pieces are colored once and stamped
/// everywhere else, and every coloring is a pure function of its canonical
/// signature.  In particular a layout whose components are all
/// single-provenance (isolated instances, no hierarchy attachment, text
/// fixtures) gets colors **bit-identical** to the flat memoized path
/// `session.run(executor)` with a cache attached.
///
/// # Errors
///
/// [`ConfigError::HierWithTiling`] when the session also requests spatial
/// tiling: the two drivers partition components along different seams and
/// cannot be composed in one run.
pub fn run_hier_observed(
    session: &DecompositionSession,
    executor: &dyn Executor,
    progress: &dyn HierProgress,
) -> Result<Vec<(LayoutId, HierLayoutResult)>, ConfigError> {
    if session.tiling().is_some() {
        return Err(ConfigError::HierWithTiling);
    }

    // Classify every layout's components along its instance seams.
    let plans: Vec<(LayoutId, &DecompositionPlan)> = session.plans().collect();
    let splits: Vec<LayoutSplits> = plans
        .iter()
        .map(|&(id, plan)| {
            let hierarchy = session.hierarchy(id).cloned();
            let (resident, split) = classify(plan, hierarchy.as_deref());
            LayoutSplits {
                resident,
                split,
                hierarchy,
            }
        })
        .collect();

    // One inner session: the resident batch of each layout plus every
    // piece, all drained through one shared largest-first queue.  The
    // memo cache is what turns N translation-identical instance pieces
    // into one engine solve plus N−1 stamps.
    let mut inner = DecompositionSession::new();
    inner.set_memo(Some(session.memo().cloned().unwrap_or_else(|| {
        Arc::new(MemoCache::new(MemoCache::DEFAULT_CAPACITY))
    })));
    let mut submissions = Vec::new();
    let mut totals = vec![0usize; plans.len()];
    for (slot, (&(outer, plan), layout_splits)) in plans.iter().zip(&splits).enumerate() {
        // A cancel token on the outer submission covers every inner
        // sub-problem carved out of it: resident batches and instance
        // pieces alike skip (or stop mid-search) once the token fires.
        let cancel = session.cancel_token(outer).cloned();
        if !layout_splits.resident.is_empty() {
            let decomposer = Decomposer::new(plan.config().clone());
            let subproblems = layout_splits
                .resident
                .iter()
                .map(|&index| {
                    let task = &plan.tasks()[index];
                    (task.problem().clone(), task.to_global().to_vec())
                })
                .collect();
            let inner_id = inner.submit(DecompositionPlan::for_subproblems(
                decomposer,
                plan.layout_name().to_string(),
                plan.graph_shared(),
                subproblems,
            ));
            inner.set_cancel(inner_id, cancel.clone());
            submissions.push(Submission::Resident { slot });
            totals[slot] += 1;
        }
        for (split, component) in layout_splits.split.iter().enumerate() {
            let task = &plan.tasks()[component.task_index];
            for (piece, split_piece) in component.pieces.iter().enumerate() {
                let decomposer = Decomposer::new(plan.config().clone());
                let to_global: Vec<usize> = split_piece
                    .locals
                    .iter()
                    .map(|&local| task.to_global()[local])
                    .collect();
                let name = match split_piece.origin {
                    Some(instance) => format!(
                        "{}/c{}i{}",
                        plan.layout_name(),
                        component.task_index,
                        instance
                    ),
                    None => format!("{}/c{}b", plan.layout_name(), component.task_index),
                };
                let inner_id = inner.submit(DecompositionPlan::for_subproblems(
                    decomposer,
                    name,
                    plan.graph_shared(),
                    vec![(split_piece.problem.clone(), to_global)],
                ));
                inner.set_cancel(inner_id, cancel.clone());
                submissions.push(Submission::Piece { slot, split, piece });
                totals[slot] += 1;
            }
        }
    }

    let observer = HierObserver {
        progress,
        map: submissions
            .iter()
            .map(|submission| match submission {
                Submission::Resident { slot } | Submission::Piece { slot, .. } => {
                    (plans[*slot].0, *slot)
                }
            })
            .collect(),
        totals: totals.clone(),
        done: totals.iter().map(|_| AtomicUsize::new(0)).collect(),
    };
    let inner_results = inner.run_observed(executor, &observer);

    // Assemble: scatter resident colors, reconcile split components,
    // rebuild one result per outer layout over its full graph.
    let mut assemblies: Vec<Assembly> = plans
        .iter()
        .zip(&splits)
        .map(|(&(_, plan), layout_splits)| Assembly {
            colors: vec![0u8; plan.graph().vertex_count()],
            components: vec![None; plan.tasks().len()],
            piece_colors: layout_splits
                .split
                .iter()
                .map(|component| vec![Vec::new(); component.pieces.len()])
                .collect(),
            color_time: Duration::ZERO,
        })
        .collect();
    let mut piece_stats: Vec<Vec<Vec<ComponentStats>>> = splits
        .iter()
        .map(|layout_splits| {
            layout_splits
                .split
                .iter()
                .map(|component| Vec::with_capacity(component.pieces.len()))
                .collect()
        })
        .collect();

    for (submission, (_, inner_result)) in submissions.iter().zip(inner_results) {
        match submission {
            Submission::Resident { slot } => {
                let assembly = &mut assemblies[*slot];
                let plan = plans[*slot].1;
                let layout_splits = &splits[*slot];
                for (position, &index) in layout_splits.resident.iter().enumerate() {
                    let task = &plan.tasks()[index];
                    for &global in task.to_global() {
                        assembly.colors[global] = inner_result.colors()[global];
                    }
                    let mut stats = inner_result.component_stats()[position].clone();
                    stats.index = index;
                    assembly.components[index] = Some(stats);
                }
                assembly.color_time = assembly.color_time.max(inner_result.color_time());
            }
            Submission::Piece { slot, split, piece } => {
                let plan = plans[*slot].1;
                let component = &splits[*slot].split[*split];
                let task = &plan.tasks()[component.task_index];
                let split_piece = &component.pieces[*piece];
                assemblies[*slot].piece_colors[*split][*piece] = split_piece
                    .locals
                    .iter()
                    .map(|&local| inner_result.colors()[task.to_global()[local]])
                    .collect();
                piece_stats[*slot][*split].push(inner_result.component_stats()[0].clone());
                assemblies[*slot].color_time =
                    assemblies[*slot].color_time.max(inner_result.color_time());
            }
        }
    }

    let mut results = Vec::with_capacity(plans.len());
    for (slot, (&(id, plan), layout_splits)) in plans.iter().zip(&splits).enumerate() {
        let assembly = &mut assemblies[slot];
        let mut stats = HierStats {
            instances: layout_splits
                .hierarchy
                .as_ref()
                .map_or(0, |hierarchy| hierarchy.instance_count()),
            cells: layout_splits
                .hierarchy
                .as_ref()
                .map_or(0, |hierarchy| hierarchy.cell_count()),
            nested_inherited: layout_splits
                .hierarchy
                .as_ref()
                .map_or(0, |hierarchy| hierarchy.nested_inherited()),
            resident_components: layout_splits.resident.len(),
            split_components: layout_splits.split.len(),
            ..HierStats::default()
        };
        for (split, component) in layout_splits.split.iter().enumerate() {
            let task = &plan.tasks()[component.task_index];
            let problem = task.problem();
            let (merged, outcome) = reconcile(component, problem, &assembly.piece_colors[split]);
            for (local, &global) in task.to_global().iter().enumerate() {
                assembly.colors[global] = merged[local];
            }
            stats.instance_pieces += component
                .pieces
                .iter()
                .filter(|piece| piece.origin.is_some())
                .count();
            stats.boundary_vertices += component
                .pieces
                .iter()
                .filter(|piece| piece.origin.is_none())
                .map(|piece| piece.locals.len())
                .sum::<usize>();
            stats.permuted_pieces += outcome.permuted_pieces;
            stats.recolored_vertices += outcome.recolored_vertices;
            stats.cross_conflicts_before += outcome.cross_conflicts_before;
            stats.cross_conflicts_after += outcome.cross_conflicts_after;
            assembly.components[component.task_index] = Some(merged_component_stats(
                component.task_index,
                problem,
                &merged,
                &piece_stats[slot][split],
            ));
        }
        let components = assembly
            .components
            .iter_mut()
            .map(|stats| stats.take().expect("every task is resident or split"))
            .collect();
        let result = DecompositionResult::assemble(
            plan,
            executor.name(),
            std::mem::take(&mut assembly.colors),
            components,
            assembly.color_time,
        );
        results.push((id, HierLayoutResult { result, stats }));
    }
    Ok(results)
}

/// Per-layout scratch while scattering inner results back.
struct Assembly {
    colors: Vec<u8>,
    components: Vec<Option<ComponentStats>>,
    /// `piece_colors[split][piece][i]` is the color piece `piece` assigned
    /// to its vertex `i` of split component `split`.
    piece_colors: Vec<Vec<Vec<u8>>>,
    color_time: Duration,
}

/// Synthesizes the merged component's statistics from its piece runs: the
/// quality numbers are re-evaluated on the reconciled coloring, the work
/// counters are summed over the pieces.  The inner batch always memoizes,
/// so the merged `memo_hit` reports whether **every** piece was stamped
/// from the cache.
fn merged_component_stats(
    index: usize,
    problem: &mpl_core::ComponentProblem,
    merged: &[u8],
    pieces: &[ComponentStats],
) -> ComponentStats {
    let (conflicts, stitches, cost) = problem.evaluate(merged);
    ComponentStats {
        index,
        vertex_count: problem.vertex_count(),
        conflict_edge_count: problem.conflict_edges().len(),
        stitch_edge_count: problem.stitch_edges().len(),
        conflicts,
        stitches,
        cost,
        time: pieces.iter().map(|stats| stats.time).sum(),
        division_time: pieces.iter().map(|stats| stats.division_time).sum(),
        bnb_nodes: pieces.iter().map(|stats| stats.bnb_nodes).sum(),
        hit_time_limit: pieces.iter().any(|stats| stats.hit_time_limit),
        augmenting_paths: pieces.iter().map(|stats| stats.augmenting_paths).sum(),
        augmenting_path_bound: pieces.iter().map(|stats| stats.augmenting_path_bound).sum(),
        scratch_allocs: pieces.iter().map(|stats| stats.scratch_allocs).sum(),
        hidden_vertices: pieces.iter().map(|stats| stats.hidden_vertices).sum(),
        kernel_vertices: pieces.iter().map(|stats| stats.kernel_vertices).sum(),
        simplify_rounds: pieces.iter().map(|stats| stats.simplify_rounds).sum(),
        bound_improvements: pieces.iter().map(|stats| stats.bound_improvements).sum(),
        cancelled: pieces.iter().any(|stats| stats.cancelled),
        deadline_exceeded: pieces.iter().any(|stats| stats.deadline_exceeded),
        skipped: pieces.iter().any(|stats| stats.skipped),
        memo_hit: Some(pieces.iter().all(|stats| stats.memo_hit == Some(true))),
    }
}
