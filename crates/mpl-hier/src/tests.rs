//! End-to-end tests of the hierarchical driver against the flat batch
//! engine.

use crate::fixtures::{bit_cell_array, BitArrayStyle};
use crate::{run_hier, run_hier_observed, HierProgress};
use mpl_core::verify::verify_spacing;
use mpl_core::{
    ColorAlgorithm, ConfigError, Decomposer, DecomposerConfig, DecompositionSession, LayoutId,
    MemoCache, SerialExecutor, ThreadPoolExecutor, TileConfig,
};
use mpl_geometry::Nm;
use mpl_layout::{gen, LayoutHierarchy, Technology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn decomposer(algorithm: ColorAlgorithm) -> Decomposer {
    Decomposer::new(DecomposerConfig::quadruple(Technology::nm20()).with_algorithm(algorithm))
}

/// Submits the fixture and attaches its hierarchy.
fn submit(
    session: &mut DecompositionSession,
    decomposer: &Decomposer,
    fixture: &(mpl_layout::Layout, LayoutHierarchy),
) -> LayoutId {
    let id = session
        .submit_layout(decomposer, &fixture.0)
        .expect("valid config");
    session.set_hierarchy(id, Some(Arc::new(fixture.1.clone())));
    id
}

#[test]
fn the_merged_fixture_is_one_giant_component_with_residual_links() {
    let (layout, hierarchy) = bit_cell_array(4, 3, BitArrayStyle::Merged);
    assert_eq!(hierarchy.instance_count(), 12);
    assert_eq!(hierarchy.cell_count(), 1);
    // Cross-instance links lost their tags; per-cell geometry kept them.
    assert!(hierarchy.shape_origins().iter().any(Option::is_none));
    assert!(hierarchy.tagged_shape_count() > 0);
    let decomposer = decomposer(ColorAlgorithm::Linear);
    let plan = decomposer.plan(&layout).expect("valid config");
    assert_eq!(plan.tasks().len(), 1, "the array couples into one giant");
}

#[test]
fn isolated_instances_are_bit_identical_to_the_flat_memoized_path() {
    let fixture = bit_cell_array(3, 3, BitArrayStyle::Isolated);
    for algorithm in ColorAlgorithm::ALL {
        let decomposer = decomposer(algorithm);
        let mut session = DecompositionSession::new();
        submit(&mut session, &decomposer, &fixture);

        // The flat memoized reference run.
        let mut flat = DecompositionSession::new().with_memo(Arc::new(MemoCache::new(1024)));
        flat.submit_layout(&decomposer, &fixture.0)
            .expect("valid config");
        let reference = flat.run(&SerialExecutor);

        let hier = run_hier(&session, &SerialExecutor).expect("no tiling");
        let (_, hier) = &hier[0];
        assert_eq!(hier.result.colors(), reference[0].1.colors(), "{algorithm}");
        assert_eq!(hier.result.conflicts(), reference[0].1.conflicts());
        assert_eq!(hier.result.stitches(), reference[0].1.stitches());
        assert_eq!(hier.stats.split_components, 0, "{algorithm}");
        assert_eq!(hier.stats.instances, 9);
        assert_eq!(hier.stats.cells, 1);
        assert_eq!(
            hier.stats.resident_components,
            reference[0].1.component_count()
        );
    }
}

#[test]
fn merged_arrays_split_reconcile_and_verify_spacing_clean() {
    let fixture = bit_cell_array(4, 4, BitArrayStyle::Merged);
    for algorithm in ColorAlgorithm::ALL {
        let decomposer = decomposer(algorithm);
        let mut session = DecompositionSession::new();
        let id = submit(&mut session, &decomposer, &fixture);
        let hier = run_hier(&session, &SerialExecutor).expect("no tiling");
        let (_, hier) = &hier[0];
        assert_eq!(hier.stats.split_components, 1, "{algorithm}");
        assert!(hier.stats.instance_pieces > 0);
        assert!(hier.stats.boundary_vertices > 0);
        // The merged coloring pays no cross-provenance conflicts, and the
        // independent geometric checker agrees with the recomputed count.
        assert_eq!(hier.stats.cross_conflicts_after, 0, "{algorithm}");
        let violations = verify_spacing(
            session.plan(id).expect("current batch").graph(),
            hier.result.colors(),
            Technology::nm20().coloring_distance(4),
        );
        assert_eq!(violations.len(), hier.result.conflicts(), "{algorithm}");
        assert_eq!(hier.result.conflicts(), 0, "{algorithm}");
    }
}

#[test]
fn coupled_arrays_without_merges_split_into_identical_full_cells() {
    let fixture = bit_cell_array(4, 4, BitArrayStyle::Coupled);
    let decomposer = decomposer(ColorAlgorithm::SdpBacktrack);
    let mut session = DecompositionSession::new();
    let id = submit(&mut session, &decomposer, &fixture);
    let hier = run_hier(&session, &SerialExecutor).expect("no tiling");
    let (_, hier) = &hier[0];
    assert_eq!(hier.stats.split_components, 1);
    assert_eq!(hier.stats.instance_pieces, 16);
    assert_eq!(hier.stats.boundary_vertices, 0, "nothing merged");
    assert_eq!(hier.stats.cross_conflicts_after, 0);
    let violations = verify_spacing(
        session.plan(id).expect("current batch").graph(),
        hier.result.colors(),
        Technology::nm20().coloring_distance(4),
    );
    assert!(violations.is_empty());
}

#[test]
fn hier_runs_are_schedule_independent() {
    let fixture = bit_cell_array(5, 4, BitArrayStyle::Merged);
    let decomposer = decomposer(ColorAlgorithm::SdpBacktrack);
    let mut session = DecompositionSession::new();
    submit(&mut session, &decomposer, &fixture);
    let serial = run_hier(&session, &SerialExecutor).expect("no tiling");
    let pooled = run_hier(
        &session,
        &ThreadPoolExecutor::new(4).expect("non-zero threads"),
    )
    .expect("no tiling");
    assert_eq!(serial[0].1.result.colors(), pooled[0].1.result.colors());
    assert_eq!(serial[0].1.stats, pooled[0].1.stats);
    assert_eq!(pooled[0].1.result.executor(), "threads:4");
}

#[test]
fn translation_identical_instances_are_stamped_from_one_master() {
    let fixture = bit_cell_array(6, 4, BitArrayStyle::Coupled);
    let decomposer = decomposer(ColorAlgorithm::SdpBacktrack);
    let mut session = DecompositionSession::new();
    session.set_memo(Some(Arc::new(MemoCache::new(1024))));
    submit(&mut session, &decomposer, &fixture);
    run_hier(&session, &SerialExecutor).expect("no tiling");
    // All 24 cell bodies share one translation-canonical signature: every
    // piece consulted the cache, but only one master coloring was ever
    // stored — one engine solve, 23 stamps.
    let stats = session.memo().expect("attached").stats();
    assert_eq!(stats.entries, 1, "one canonical master cell stored");
    assert_eq!(stats.misses, 24, "every piece consulted the cold cache");
}

#[test]
fn warm_hier_runs_are_bit_identical_and_all_hits() {
    let fixture = bit_cell_array(4, 3, BitArrayStyle::Merged);
    let decomposer = decomposer(ColorAlgorithm::Linear);
    let mut session = DecompositionSession::new();
    session.set_memo(Some(Arc::new(MemoCache::new(4096))));
    submit(&mut session, &decomposer, &fixture);
    let cold = run_hier(&session, &SerialExecutor).expect("no tiling");
    let warm = run_hier(
        &session,
        &ThreadPoolExecutor::new(3).expect("non-zero threads"),
    )
    .expect("no tiling");
    assert_eq!(cold[0].1.result.colors(), warm[0].1.result.colors());
    assert_eq!(cold[0].1.stats, warm[0].1.stats);
    // Every piece of the warm run is stamped from the cache, so the merged
    // component reports an aggregate hit.
    assert!(warm[0]
        .1
        .result
        .component_stats()
        .iter()
        .all(|stats| stats.memo_hit == Some(true)));
}

#[test]
fn sessions_without_hierarchies_degenerate_to_the_memoized_flat_run() {
    let layout = gen::fig1_contact_clique(&Technology::nm20());
    let decomposer = decomposer(ColorAlgorithm::Linear);
    let mut session = DecompositionSession::new();
    session
        .submit_layout(&decomposer, &layout)
        .expect("valid config");
    let mut flat = DecompositionSession::new().with_memo(Arc::new(MemoCache::new(1024)));
    flat.submit_layout(&decomposer, &layout)
        .expect("valid config");
    let reference = flat.run(&SerialExecutor);
    let hier = run_hier(&session, &SerialExecutor).expect("no tiling");
    assert_eq!(hier[0].1.result.colors(), reference[0].1.colors());
    assert_eq!(hier[0].1.stats.instances, 0);
    assert_eq!(hier[0].1.stats.split_components, 0);
    assert_eq!(
        hier[0].1.stats.resident_components,
        reference[0].1.component_count()
    );
}

#[test]
fn hier_and_tiling_cannot_be_combined() {
    let fixture = bit_cell_array(2, 2, BitArrayStyle::Isolated);
    let decomposer = decomposer(ColorAlgorithm::Linear);
    let mut session = DecompositionSession::new().with_tiling(TileConfig::new(Nm(400)));
    submit(&mut session, &decomposer, &fixture);
    assert_eq!(
        run_hier(&session, &SerialExecutor).unwrap_err(),
        ConfigError::HierWithTiling
    );
}

#[test]
fn progress_reports_one_tick_per_inner_decomposition() {
    struct Counting {
        ticks: AtomicUsize,
        last: AtomicUsize,
        total: AtomicUsize,
    }
    impl HierProgress for Counting {
        fn piece_done(&self, layout: LayoutId, done: usize, total: usize) {
            assert_eq!(layout.index(), 0);
            assert!(done <= total);
            self.ticks.fetch_add(1, Ordering::Relaxed);
            self.last.fetch_max(done, Ordering::Relaxed);
            self.total.store(total, Ordering::Relaxed);
        }
    }
    let fixture = bit_cell_array(3, 2, BitArrayStyle::Merged);
    let decomposer = decomposer(ColorAlgorithm::Linear);
    let mut session = DecompositionSession::new();
    submit(&mut session, &decomposer, &fixture);
    let progress = Counting {
        ticks: AtomicUsize::new(0),
        last: AtomicUsize::new(0),
        total: AtomicUsize::new(0),
    };
    let hier = run_hier_observed(&session, &SerialExecutor, &progress).expect("no tiling");
    let stats = &hier[0].1.stats;
    let expected = stats.instance_pieces
        + stats.split_components.min(1) * usize::from(stats.boundary_vertices > 0)
        + usize::from(stats.resident_components > 0);
    assert_eq!(progress.ticks.load(Ordering::Relaxed), expected);
    assert_eq!(progress.last.load(Ordering::Relaxed), expected);
    assert_eq!(progress.total.load(Ordering::Relaxed), expected);
}

#[test]
fn mixed_batches_keep_per_layout_results_in_submission_order() {
    let decomposer = decomposer(ColorAlgorithm::Linear);
    let merged = bit_cell_array(3, 3, BitArrayStyle::Merged);
    let mut session = DecompositionSession::new();
    let a = submit(&mut session, &decomposer, &merged);
    // The second layout has no hierarchy at all.
    let b = session
        .submit_layout(&decomposer, &gen::fig1_contact_clique(&Technology::nm20()))
        .expect("valid config");
    let results =
        run_hier(&session, &ThreadPoolExecutor::new(2).expect("threads")).expect("no tiling");
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].0, a);
    assert_eq!(results[1].0, b);
    assert!(results[0].1.stats.split_components > 0);
    assert_eq!(results[1].1.stats.split_components, 0);
}
