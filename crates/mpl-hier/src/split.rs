//! Splitting merged components along cell-instance seams.
//!
//! Every graph vertex inherits the provenance of its layout shape: the
//! instance that placed it ([`LayoutHierarchy::origin_of`]), or `None` for
//! top-level geometry and for shapes whose polygons merged across an
//! instance boundary.  A component whose vertices all share one provenance
//! is *resident* — it is exactly the sub-problem the flat memoized path
//! would see, so it flows through the ordinary batch engine untouched.  A
//! component mixing provenances is split into per-instance pieces (one
//! induced sub-problem per instance, in ascending instance order) plus one
//! *residual* piece holding the unattributed boundary geometry; the pieces
//! are disjoint by construction, so the reconciler stitches them back along
//! cross-provenance edges only.
//!
//! Splitting by provenance is what the purely geometric graph division of
//! the engine cannot do: a dense instance array couples into one giant
//! component with no small vertex cuts, but its per-instance pieces are
//! translation-identical, so the memo cache colors one master body and
//! stamps every other instance.

use mpl_core::{ComponentProblem, DecompositionPlan, VertexId};
use mpl_layout::LayoutHierarchy;
use std::collections::BTreeMap;

/// One provenance class of a split component.
#[derive(Debug)]
pub(crate) struct SplitPiece {
    /// The instance that placed this piece's geometry, or `None` for the
    /// residual (top-level shapes and cross-instance merges).
    pub origin: Option<usize>,
    /// Component-local vertex ids of the piece, ascending.
    pub locals: Vec<usize>,
    /// The sub-problem induced by `locals`, ready for the batch engine.
    pub problem: ComponentProblem,
}

/// A mixed-provenance component split into per-instance pieces.
#[derive(Debug)]
pub(crate) struct SplitComponent {
    /// Index of the original task in its plan.
    pub task_index: usize,
    /// Provenance of every component-local vertex.
    pub origin: Vec<Option<usize>>,
    /// Instance pieces in ascending instance order, then the residual piece
    /// (when any vertex is unattributed) — the deterministic order the
    /// reconciler fixes them in.
    pub pieces: Vec<SplitPiece>,
}

/// Classifies a plan's tasks into residents and split components.
///
/// Without a hierarchy every task is resident and the driver degenerates to
/// the flat memoized path.
pub(crate) fn classify(
    plan: &DecompositionPlan,
    hierarchy: Option<&LayoutHierarchy>,
) -> (Vec<usize>, Vec<SplitComponent>) {
    let mut resident = Vec::new();
    let mut split = Vec::new();
    let Some(hierarchy) = hierarchy.filter(|hierarchy| !hierarchy.is_trivial()) else {
        return ((0..plan.tasks().len()).collect(), split);
    };
    let graph = plan.graph();
    for task in plan.tasks() {
        let origin: Vec<Option<usize>> = task
            .to_global()
            .iter()
            .map(|&global| hierarchy.origin_of(graph.shape_of(VertexId(global))))
            .collect();
        if origin.windows(2).all(|pair| pair[0] == pair[1]) {
            resident.push(task.index());
        } else {
            split.push(split_component(task.index(), task.problem(), origin));
        }
    }
    (resident, split)
}

/// Groups a mixed-provenance component's vertices by origin and induces one
/// sub-problem per group.
fn split_component(
    task_index: usize,
    problem: &ComponentProblem,
    origin: Vec<Option<usize>>,
) -> SplitComponent {
    let mut instances: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut residual = Vec::new();
    for (local, &tag) in origin.iter().enumerate() {
        match tag {
            Some(instance) => instances.entry(instance).or_default().push(local),
            None => residual.push(local),
        }
    }
    let pieces = instances
        .into_iter()
        .map(|(instance, locals)| (Some(instance), locals))
        .chain((!residual.is_empty()).then_some((None, residual)))
        .map(|(origin, locals)| {
            let (sub, original) = problem.induced(&locals);
            debug_assert_eq!(original, locals);
            SplitPiece {
                origin,
                locals,
                problem: sub,
            }
        })
        .collect();
    SplitComponent {
        task_index,
        origin,
        pieces,
    }
}
