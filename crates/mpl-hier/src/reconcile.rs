//! Deterministic instance reconciliation: merging the per-piece colorings
//! of one split component back into a single consistent coloring.
//!
//! Pieces are fixed in split order (instances ascending, residual last).
//! Unlike tile halos, provenance pieces are **disjoint** — no vertex is
//! colored twice — so there are no anchor vertices to match.  Instead each
//! piece is rotated by the color permutation minimising the cost of its
//! *cross edges* into the vertices already fixed: a cross conflict edge
//! pays 1 when the permuted color equals the fixed endpoint's, a cross
//! stitch edge pays α when it differs.  Permutations preserve every
//! conflict and stitch inside the piece (in particular a stamped master
//! coloring stays a master coloring), so this step can only help.  When
//! contradictory neighbours leave cross-provenance disagreements, a bounded
//! greedy repair pass re-colors boundary vertices that strictly lower the
//! component's cost.  Both steps are pure functions of the piece colorings,
//! so the merged result inherits the batch engine's schedule independence.

use crate::split::SplitComponent;
use mpl_core::ComponentProblem;

/// Upper bound on greedy repair sweeps over the cross-provenance strip.
/// Each sweep only applies strictly-improving recolorings, so the loop
/// usually stops after one or two sweeps; the cap keeps the worst case
/// obvious.
const MAX_REPAIR_SWEEPS: usize = 8;

/// What reconciliation did to one split component.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReconcileOutcome {
    /// Pieces whose coloring was rotated by a non-identity permutation.
    pub permuted_pieces: usize,
    /// Strictly-improving recolorings applied by the repair pass.
    pub recolored_vertices: usize,
    /// Cross-provenance conflicts right after the permutation pass.
    pub cross_conflicts_before: usize,
    /// Cross-provenance conflicts after greedy repair.
    pub cross_conflicts_after: usize,
}

/// Merges `piece_colors` (one coloring per [`SplitComponent`] piece, in
/// piece order, each indexed like its piece) into one component-local
/// coloring.
pub(crate) fn reconcile(
    split: &SplitComponent,
    problem: &ComponentProblem,
    piece_colors: &[Vec<u8>],
) -> (Vec<u8>, ReconcileOutcome) {
    let n = problem.vertex_count();
    let k = problem.k();
    let alpha = problem.alpha();
    debug_assert_eq!(piece_colors.len(), split.pieces.len());

    // Cross edges only: both endpoint lists are component-local.
    let mut conflict_adj = vec![Vec::new(); n];
    for &(u, v) in problem.conflict_edges() {
        if split.origin[u] != split.origin[v] {
            conflict_adj[u].push(v);
            conflict_adj[v].push(u);
        }
    }
    let mut stitch_adj = vec![Vec::new(); n];
    for &(u, v) in problem.stitch_edges() {
        if split.origin[u] != split.origin[v] {
            stitch_adj[u].push(v);
            stitch_adj[v].push(u);
        }
    }

    let mut outcome = ReconcileOutcome::default();
    let mut merged = vec![u8::MAX; n];
    let mut fixed = vec![false; n];
    for (piece, colors) in split.pieces.iter().zip(piece_colors) {
        debug_assert_eq!(colors.len(), piece.locals.len());
        // weight[c][t]: the cost saved by mapping piece color c onto t —
        // α per matched cross stitch, −1 per created cross conflict.
        let mut weight = vec![0.0f64; k * k];
        for (&local, &color) in piece.locals.iter().zip(colors) {
            let c = color as usize;
            for &u in &conflict_adj[local] {
                if fixed[u] {
                    weight[c * k + merged[u] as usize] -= 1.0;
                }
            }
            for &u in &stitch_adj[local] {
                if fixed[u] {
                    weight[c * k + merged[u] as usize] += alpha;
                }
            }
        }
        let permutation = best_cross_permutation(&weight, k);
        if permutation
            .iter()
            .enumerate()
            .any(|(c, &t)| c != t as usize)
        {
            outcome.permuted_pieces += 1;
        }
        for (&local, &color) in piece.locals.iter().zip(colors) {
            merged[local] = permutation[color as usize];
            fixed[local] = true;
        }
    }
    debug_assert!(fixed.iter().all(|&done| done));

    outcome.cross_conflicts_before = cross_conflicts(split, problem, &merged);
    outcome.recolored_vertices = repair_boundary(split, problem, &mut merged);
    outcome.cross_conflicts_after = cross_conflicts(split, problem, &merged);
    (merged, outcome)
}

/// Finds the permutation π of `0..k` maximising `Σ_c weight[c][π(c)]` —
/// exhaustively for small K (at most 720 candidates for K ≤ 6), greedily
/// above that.  Ties prefer the identity-most (lexicographically smallest)
/// permutation so reconciliation is deterministic and a no-op when nothing
/// is gained — in particular an unconstrained piece (all weights zero)
/// keeps its stamped master coloring verbatim.
fn best_cross_permutation(weight: &[f64], k: usize) -> Vec<u8> {
    let score = |perm: &[u8]| -> f64 {
        perm.iter()
            .enumerate()
            .map(|(c, &t)| weight[c * k + t as usize])
            .sum()
    };
    if k <= 6 {
        // Lexicographic enumeration starts at the identity, and only a
        // strictly better score replaces the incumbent.
        let mut perm: Vec<u8> = (0..k as u8).collect();
        let mut best = perm.clone();
        let mut best_score = score(&perm);
        while next_permutation(&mut perm) {
            let s = score(&perm);
            if s > best_score {
                best_score = s;
                best = perm.clone();
            }
        }
        best
    } else {
        // Greedy assignment by descending pair weight; leftovers keep their
        // own color when possible.
        let mut pairs: Vec<(usize, usize)> = (0..k * k).map(|i| (i / k, i % k)).collect();
        pairs.sort_by(|&(c1, t1), &(c2, t2)| {
            weight[c2 * k + t2]
                .total_cmp(&weight[c1 * k + t1])
                .then(c1.cmp(&c2))
                .then(t1.cmp(&t2))
        });
        let mut permutation = vec![u8::MAX; k];
        let mut target_taken = vec![false; k];
        for (c, t) in pairs {
            if weight[c * k + t] > 0.0 && permutation[c] == u8::MAX && !target_taken[t] {
                permutation[c] = t as u8;
                target_taken[t] = true;
            }
        }
        for c in 0..k {
            if permutation[c] != u8::MAX {
                continue;
            }
            let t = if !target_taken[c] {
                c
            } else {
                (0..k)
                    .find(|&t| !target_taken[t])
                    .expect("a free color remains")
            };
            permutation[c] = t as u8;
            target_taken[t] = true;
        }
        permutation
    }
}

/// The next lexicographic permutation of `perm`, or `false` at the last.
fn next_permutation(perm: &mut [u8]) -> bool {
    let Some(i) = (0..perm.len().saturating_sub(1))
        .rev()
        .find(|&i| perm[i] < perm[i + 1])
    else {
        return false;
    };
    let j = (i + 1..perm.len())
        .rev()
        .find(|&j| perm[j] > perm[i])
        .expect("a larger suffix element exists");
    perm.swap(i, j);
    perm[i + 1..].reverse();
    true
}

/// Conflict edges with endpoints of different provenance that ended up on
/// the same mask.
fn cross_conflicts(split: &SplitComponent, problem: &ComponentProblem, colors: &[u8]) -> usize {
    problem
        .conflict_edges()
        .iter()
        .filter(|&&(u, v)| split.origin[u] != split.origin[v] && colors[u] == colors[v])
        .count()
}

/// Greedy local repair of the cross-provenance strip: re-colors a strip
/// vertex only when that strictly lowers its incident cost, sweeping the
/// strip in ascending vertex order until a sweep changes nothing.
///
/// Returns the number of recolorings applied.
fn repair_boundary(split: &SplitComponent, problem: &ComponentProblem, colors: &mut [u8]) -> usize {
    let n = problem.vertex_count();
    let mut conflict_adj = vec![Vec::new(); n];
    for &(u, v) in problem.conflict_edges() {
        conflict_adj[u].push(v);
        conflict_adj[v].push(u);
    }
    let mut stitch_adj = vec![Vec::new(); n];
    for &(u, v) in problem.stitch_edges() {
        stitch_adj[u].push(v);
        stitch_adj[v].push(u);
    }
    let strip: Vec<usize> = (0..n)
        .filter(|&v| {
            conflict_adj[v]
                .iter()
                .chain(&stitch_adj[v])
                .any(|&u| split.origin[u] != split.origin[v])
        })
        .collect();
    if strip.is_empty() {
        return 0;
    }

    // A conflict neighbour on the same mask costs 1, a stitch neighbour on
    // a different mask costs α.
    let incident_cost = |v: usize, color: u8, colors: &[u8]| -> f64 {
        let conflicts = conflict_adj[v]
            .iter()
            .filter(|&&u| colors[u] == color)
            .count();
        let stitches = stitch_adj[v]
            .iter()
            .filter(|&&u| colors[u] != color)
            .count();
        conflicts as f64 + problem.alpha() * stitches as f64
    };

    let k = problem.k() as u8;
    let mut recolored = 0;
    for _ in 0..MAX_REPAIR_SWEEPS {
        let mut changed = false;
        for &v in &strip {
            let current = incident_cost(v, colors[v], colors);
            let best = (0..k)
                .filter(|&color| color != colors[v])
                .map(|color| (color, incident_cost(v, color, colors)))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            if let Some((color, cost)) = best {
                if cost < current {
                    colors[v] = color;
                    recolored += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    recolored
}
