//! SRAM-like cell-array fixtures for tests and benchmarks.
//!
//! The generator builds an in-memory GDS library — one `BIT` cell, stamped
//! by an `AREF` in the `TOP` structure — and reads it back through the
//! tagged flattening path ([`mpl_gds::layout_with_hierarchy`]), so every
//! fixture exercises exactly the provenance machinery a real GDS file
//! would.
//!
//! The `BIT` cell is a 2×2 contact clique on the 20 nm node (20 nm
//! contacts at 40 nm pitch: all four pairwise under the 80 nm quadruple
//! coloring distance, so a cell body alone needs all four masks), plus —
//! in the styles that have one — a bottom-row tab that reaches the next
//! column's bottom-left contact.

use mpl_gds::{
    layout_with_hierarchy, GdsElement, GdsLibrary, GdsStrans, GdsStruct, LayerMap, ReadOptions,
};
use mpl_layout::{Layout, LayoutHierarchy};

/// How densely the `BIT` instances are packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitArrayStyle {
    /// 120 × 100 nm pitch **with** tabs: each tab touches its own cell's
    /// bottom-right contact and the next column's bottom-left contact, so
    /// the three polygons merge into one cross-instance link that loses
    /// its provenance tag.  Rows couple through the links and columns
    /// through facing contacts: the whole array is **one** giant conflict
    /// component with no small vertex cuts — geometric division cannot
    /// shatter it and the flat memo cache sees a single, never-repeated
    /// signature.  Only provenance splitting helps here.
    Merged,
    /// 120 × 120 nm pitch, no tabs: facing contacts of neighbouring
    /// instances conflict (60 nm gaps under the 80 nm coloring distance)
    /// but nothing merges, so the array is one giant component whose split
    /// pieces are all translation-identical full cells.
    Coupled,
    /// 260 × 260 nm pitch with tabs: every gap exceeds the 100 nm
    /// color-friendly distance, so each instance is its own component —
    /// the control whose hierarchical coloring must be bit-identical to
    /// the flat memoized path.
    Isolated,
}

impl BitArrayStyle {
    fn pitch(self) -> (i32, i32) {
        match self {
            BitArrayStyle::Merged => (120, 100),
            BitArrayStyle::Coupled => (120, 120),
            BitArrayStyle::Isolated => (260, 260),
        }
    }

    fn has_tab(self) -> bool {
        !matches!(self, BitArrayStyle::Coupled)
    }
}

/// A closed rectangle loop in database units (1 db unit = 1 nm here).
fn rect(x0: i32, y0: i32, x1: i32, y1: i32) -> GdsElement {
    GdsElement::Boundary {
        layer: 1,
        datatype: 0,
        xy: vec![(x0, y0), (x1, y0), (x1, y1), (x0, y1), (x0, y0)],
    }
}

/// An `nx` × `ny` array of `BIT` cells in the given style, read back
/// through the tagged GDS flattening path.
///
/// The returned hierarchy records one instance per array site (row-major,
/// bottom row first); shapes that merged across instance boundaries (the
/// [`Merged`](BitArrayStyle::Merged) links) carry no provenance.
///
/// # Panics
///
/// On degenerate array sizes (`nx == 0 || ny == 0`) or if the in-memory
/// library fails to convert, which would be a bug in the fixture itself.
pub fn bit_cell_array(nx: usize, ny: usize, style: BitArrayStyle) -> (Layout, LayoutHierarchy) {
    assert!(nx > 0 && ny > 0, "array must have at least one cell");
    let (sx, sy) = style.pitch();
    let mut bit = vec![
        rect(0, 0, 20, 20),   // bottom-left contact
        rect(40, 0, 60, 20),  // bottom-right contact
        rect(0, 40, 20, 60),  // top-left contact
        rect(40, 40, 60, 60), // top-right contact
    ];
    if style.has_tab() {
        // Reaches from the bottom-right contact to the next column's
        // bottom-left contact (at x = pitch) when the pitch is 120.
        bit.push(rect(60, 0, 120, 20));
    }
    let mut library = GdsLibrary::new(format!("sram{nx}x{ny}"));
    library.structs.push(GdsStruct {
        name: "BIT".into(),
        elements: bit,
    });
    library.structs.push(GdsStruct {
        name: "TOP".into(),
        elements: vec![GdsElement::Aref {
            name: "BIT".into(),
            strans: GdsStrans::default(),
            cols: nx as i16,
            rows: ny as i16,
            xy: [(0, 0), (nx as i32 * sx, 0), (0, ny as i32 * sy)],
        }],
    });
    layout_with_hierarchy(&library, &LayerMap::all(), &ReadOptions::default())
        .expect("the fixture library is well-formed")
}
