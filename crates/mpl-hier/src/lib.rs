//! Cell-level hierarchical decomposition for multiple patterning.
//!
//! A real GDS layout is a cell DAG: one SRAM bit-cell body, stamped out
//! millions of times.  Flattening throws that structure away, and when the
//! stamped instances pack densely enough to conflict-couple, the flat
//! conflict graph fuses into one giant component that no geometric
//! division can split — the translation-canonical memo cache
//! ([`mpl_memo`](mpl_core::MemoCache)) is helpless too, because there is
//! only *one* component, not many repeats.  This crate exploits the
//! hierarchy instead:
//!
//! 1. **Tag** — `mpl-gds` flattens with provenance
//!    ([`flatten_tagged`](../mpl_gds/fn.flatten_tagged.html)): every flat
//!    shape remembers which top-level cell instance placed it, and a
//!    [`LayoutHierarchy`](mpl_layout::LayoutHierarchy) carries the tags
//!    into the layout.  Shapes that merge **across** an instance boundary
//!    lose their tag — they are boundary geometry by definition.  Only
//!    *one* level of hierarchy is modelled: geometry reached through a
//!    nested SREF/AREF chain (depth ≥ 2) silently inherits the enclosing
//!    top-level instance's tag, so its pieces can mix distinct sub-cells.
//!    The approximation is harmless for correctness (step 4 re-verifies
//!    every conflict globally) but reduces cell-level reuse; it is counted
//!    in [`HierStats::nested_inherited`] so runs can observe it.
//! 2. **Split** — components whose vertices share one provenance are
//!    *resident* and flow through the ordinary batch engine untouched; a
//!    mixed-provenance component is split into per-instance pieces plus a
//!    residual boundary piece along the instance seams the geometric
//!    division cannot see.
//! 3. **Decompose** — every piece becomes an independent sub-plan drained
//!    through one shared [`DecompositionSession`] queue with a memo cache
//!    **always** attached, so the engine colors each distinct cell body
//!    once and every translation-identical instance is stamped from the
//!    canonical master coloring.
//! 4. **Reconcile** — pieces merge deterministically (instances ascending,
//!    residual last): the cross-edge-cost-minimising color permutation
//!    aligns each piece with the vertices already fixed (free —
//!    permutations preserve all intra-piece cost), then a bounded greedy
//!    repair pass re-colors boundary vertices that strictly lower the
//!    global cost.
//!
//! The merged result is rebuilt over the **full** layout graph
//! ([`DecompositionResult::assemble`](mpl_core::DecompositionResult::assemble)),
//! so its conflict count always agrees with the independent
//! [`verify_spacing`](mpl_core::verify_spacing) checker — hierarchy reuse
//! can never silently hide a violation.  And because every piece coloring
//! is a pure function of its canonical signature, a layout whose instances
//! are all isolated (every component single-provenance) gets colors
//! bit-identical to the flat memoized path.
//!
//! [`DecompositionSession`]: mpl_core::DecompositionSession

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
pub mod fixtures;
mod reconcile;
mod split;

pub use driver::{
    run_hier, run_hier_observed, HierLayoutResult, HierProgress, HierStats, NoHierProgress,
};

#[cfg(test)]
mod tests;
