//! Property-based tests for the layout substrate: text-IO round trips and
//! generator invariants.

use mpl_geometry::{Nm, Polygon, Rect};
use mpl_layout::{gen, io, Layout, Technology};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-2000i64..2000, -2000i64..2000, 1i64..400, 1i64..400)
        .prop_map(|(x, y, w, h)| Rect::new(Nm(x), Nm(y), Nm(x + w), Nm(y + h)))
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop::collection::vec(prop::collection::vec(arb_rect(), 1..4), 0..30).prop_map(|shapes| {
        let mut builder = Layout::builder("prop-io");
        for rects in shapes {
            builder.add_polygon(Polygon::from_rects(rects).expect("non-empty"));
        }
        builder.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_io_round_trips_arbitrary_layouts(layout in arb_layout()) {
        let text = io::to_text(&layout);
        let parsed = io::from_text(&text).expect("serialised layouts always parse");
        prop_assert_eq!(parsed, layout);
    }

    #[test]
    fn row_generator_is_deterministic_and_respects_density_zero(
        seed in 0u64..1000,
        rows in 1usize..4,
        cells in 2usize..10,
    ) {
        let tech = Technology::nm20();
        let config = gen::RowLayoutConfig {
            name: "prop-rows".into(),
            rows,
            cells_per_row: cells,
            contact_density: 0.5,
            wire_density: 0.5,
            k5_clusters: 0,
            dense_strips: 0,
            strip_length: 6,
            seed,
        };
        let a = gen::generate_row_layout(&config, &tech);
        let b = gen::generate_row_layout(&config, &tech);
        prop_assert_eq!(&a, &b);
        // Every generated feature respects the minimum width.
        for shape in a.iter() {
            let bbox = shape.polygon().bounding_box();
            prop_assert!(bbox.width() >= tech.min_width());
            prop_assert!(bbox.height() >= tech.min_width());
        }
    }

    #[test]
    fn generated_features_respect_minimum_spacing(seed in 0u64..200) {
        // DRC sanity for the synthetic benchmarks: no two distinct features
        // are closer than the minimum spacing (they may touch only if they
        // belong to the same shape, which the generator never produces).
        let tech = Technology::nm20();
        let config = gen::RowLayoutConfig {
            name: "prop-drc".into(),
            rows: 1,
            cells_per_row: 8,
            contact_density: 0.7,
            wire_density: 0.7,
            k5_clusters: 1,
            dense_strips: 1,
            strip_length: 5,
            seed,
        };
        let layout = gen::generate_row_layout(&config, &tech);
        for a in layout.iter() {
            for b in layout.iter() {
                if a.id() < b.id() {
                    let d2 = a.polygon().distance_squared(b.polygon());
                    prop_assert!(
                        d2 >= tech.min_spacing().squared(),
                        "shapes {} and {} are only {} nm² apart",
                        a.id(), b.id(), d2
                    );
                }
            }
        }
    }
}

#[test]
fn every_iscas_circuit_round_trips_through_text_io() {
    let tech = Technology::nm20();
    for circuit in [
        gen::IscasCircuit::C432,
        gen::IscasCircuit::S1488,
        gen::IscasCircuit::C6288,
    ] {
        let layout = circuit.generate(&tech);
        let parsed = io::from_text(&io::to_text(&layout)).expect("parse");
        assert_eq!(parsed, layout);
    }
}
