//! Minimal text serialisation for layouts.
//!
//! The format is deliberately simple so that layouts can be inspected,
//! diffed, and checked into test fixtures:
//!
//! ```text
//! # layout <name>
//! <shape-index> <xlo> <ylo> <xhi> <yhi>
//! <shape-index> <xlo> <ylo> <xhi> <yhi>
//! ...
//! ```
//!
//! Consecutive lines sharing the same shape index describe one polygon built
//! from several rectangles.  Blank lines and lines starting with `#` (other
//! than the header) are ignored.

use crate::{Layout, LayoutBuilder};
use mpl_geometry::{Nm, Polygon, Rect};
use std::fmt;

/// The on-disk layout formats the workspace understands.
///
/// This crate only implements the text format; GDSII parsing lives in the
/// `mpl-gds` crate (which depends on this one). [`LayoutFormat::detect`] is
/// the shared dispatch point: front ends sniff the format here and route to
/// the right reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutFormat {
    /// The line-oriented text format of [`to_text`] / [`from_text`].
    Text,
    /// GDSII binary stream format (handled by the `mpl-gds` crate).
    Gds,
}

impl LayoutFormat {
    /// Detects the format of a layout file from its path and leading bytes.
    ///
    /// A `.gds` / `.gds2` / `.gdsii` extension, or a leading GDSII
    /// `HEADER` record (`00 06 00 02`), selects [`LayoutFormat::Gds`];
    /// everything else is treated as text.
    pub fn detect(path: &str, bytes: &[u8]) -> LayoutFormat {
        let lower = path.to_ascii_lowercase();
        if [".gds", ".gds2", ".gdsii"]
            .iter()
            .any(|ext| lower.ends_with(ext))
        {
            return LayoutFormat::Gds;
        }
        // HEADER record: length 6, record type 0x00, data type 0x02.
        if bytes.len() >= 4
            && bytes[0] == 0x00
            && bytes[1] == 0x06
            && bytes[2] == 0x00
            && bytes[3] == 0x02
        {
            return LayoutFormat::Gds;
        }
        LayoutFormat::Text
    }
}

/// Error produced when parsing a layout from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLayoutError {
    /// The `# layout <name>` header line is missing.
    MissingHeader,
    /// A data line did not contain exactly five integer fields.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Shape indices must be non-decreasing and dense.
    BadShapeIndex {
        /// 1-based line number.
        line: usize,
        /// The index found.
        found: usize,
        /// The largest acceptable index at this point.
        expected_at_most: usize,
    },
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLayoutError::MissingHeader => write!(f, "missing `# layout <name>` header"),
            ParseLayoutError::MalformedLine { line, content } => {
                write!(f, "malformed layout line {line}: {content:?}")
            }
            ParseLayoutError::BadShapeIndex {
                line,
                found,
                expected_at_most,
            } => write!(
                f,
                "shape index {found} on line {line} is not dense (expected at most {expected_at_most})"
            ),
        }
    }
}

impl std::error::Error for ParseLayoutError {}

/// Serialises a layout to the text format.
///
/// # Example
///
/// ```
/// use mpl_geometry::{Nm, Rect};
/// use mpl_layout::{io, Layout};
///
/// let mut b = Layout::builder("tiny");
/// b.add_rect(Rect::new(Nm(0), Nm(0), Nm(20), Nm(20)));
/// let layout = b.build();
/// let text = io::to_text(&layout);
/// let parsed = io::from_text(&text)?;
/// assert_eq!(parsed, layout);
/// # Ok::<(), io::ParseLayoutError>(())
/// ```
pub fn to_text(layout: &Layout) -> String {
    let mut out = String::new();
    out.push_str(&format!("# layout {}\n", layout.name()));
    for shape in layout.iter() {
        for rect in shape.polygon().rects() {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                shape.id().index(),
                rect.xlo().value(),
                rect.ylo().value(),
                rect.xhi().value(),
                rect.yhi().value()
            ));
        }
    }
    out
}

/// Parses a layout from the text format.
///
/// # Errors
///
/// Returns a [`ParseLayoutError`] when the header is missing, a line is
/// malformed, or shape indices are not dense and non-decreasing.
pub fn from_text(text: &str) -> Result<Layout, ParseLayoutError> {
    let mut lines = text.lines().enumerate();
    let name = loop {
        match lines.next() {
            Some((_, line)) if line.trim().is_empty() => continue,
            Some((_, line)) => {
                let line = line.trim();
                if let Some(rest) = line.strip_prefix("# layout ") {
                    break rest.trim().to_string();
                }
                return Err(ParseLayoutError::MissingHeader);
            }
            None => return Err(ParseLayoutError::MissingHeader),
        }
    };

    let mut builder: LayoutBuilder = Layout::builder(name);
    let mut pending: Vec<(usize, Rect)> = Vec::new();
    for (index, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<i64> = line
            .split_whitespace()
            .map(|f| f.parse::<i64>())
            .collect::<Result<_, _>>()
            .map_err(|_| ParseLayoutError::MalformedLine {
                line: index + 1,
                content: line.to_string(),
            })?;
        if fields.len() != 5 {
            return Err(ParseLayoutError::MalformedLine {
                line: index + 1,
                content: line.to_string(),
            });
        }
        let shape_index = fields[0] as usize;
        let next_dense = pending.last().map_or(0, |(i, _)| i + 1);
        if shape_index > next_dense {
            return Err(ParseLayoutError::BadShapeIndex {
                line: index + 1,
                found: shape_index,
                expected_at_most: next_dense,
            });
        }
        let rect = Rect::new(Nm(fields[1]), Nm(fields[2]), Nm(fields[3]), Nm(fields[4]));
        pending.push((shape_index, rect));
    }

    // Group consecutive rects by shape index.
    let mut current_index: Option<usize> = None;
    let mut current_rects: Vec<Rect> = Vec::new();
    for (shape_index, rect) in pending {
        match current_index {
            Some(ci) if ci == shape_index => current_rects.push(rect),
            Some(_) => {
                let polygon =
                    Polygon::from_rects(std::mem::take(&mut current_rects)).expect("non-empty");
                builder.add_polygon(polygon);
                current_index = Some(shape_index);
                current_rects.push(rect);
            }
            None => {
                current_index = Some(shape_index);
                current_rects.push(rect);
            }
        }
    }
    if !current_rects.is_empty() {
        let polygon = Polygon::from_rects(current_rects).expect("non-empty");
        builder.add_polygon(polygon);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layout() -> Layout {
        let mut b = Layout::builder("sample");
        b.add_rect(Rect::new(Nm(0), Nm(0), Nm(20), Nm(20)));
        b.add_polygon(
            Polygon::from_rects(vec![
                Rect::new(Nm(100), Nm(0), Nm(200), Nm(20)),
                Rect::new(Nm(100), Nm(0), Nm(120), Nm(100)),
            ])
            .expect("non-empty"),
        );
        b.add_rect(Rect::new(Nm(-40), Nm(-40), Nm(-20), Nm(-20)));
        b.build()
    }

    #[test]
    fn round_trip_preserves_layout() {
        let layout = sample_layout();
        let text = to_text(&layout);
        let parsed = from_text(&text).expect("parse");
        assert_eq!(parsed, layout);
    }

    #[test]
    fn header_is_required() {
        assert_eq!(
            from_text("0 0 0 1 1\n"),
            Err(ParseLayoutError::MissingHeader)
        );
        assert_eq!(from_text(""), Err(ParseLayoutError::MissingHeader));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = from_text("# layout x\n0 1 2 3\n").unwrap_err();
        assert!(matches!(
            err,
            ParseLayoutError::MalformedLine { line: 2, .. }
        ));
        let err = from_text("# layout x\n0 a b c d\n").unwrap_err();
        assert!(matches!(err, ParseLayoutError::MalformedLine { .. }));
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn shape_indices_must_be_dense() {
        let err = from_text("# layout x\n0 0 0 1 1\n2 0 0 1 1\n").unwrap_err();
        assert!(matches!(
            err,
            ParseLayoutError::BadShapeIndex { found: 2, .. }
        ));
    }

    #[test]
    fn format_detection_uses_extension_and_magic() {
        assert_eq!(LayoutFormat::detect("x.gds", b""), LayoutFormat::Gds);
        assert_eq!(LayoutFormat::detect("X.GDS2", b""), LayoutFormat::Gds);
        assert_eq!(LayoutFormat::detect("x.gdsii", b""), LayoutFormat::Gds);
        assert_eq!(
            LayoutFormat::detect("mystery.bin", &[0x00, 0x06, 0x00, 0x02, 0x02, 0x58]),
            LayoutFormat::Gds
        );
        assert_eq!(
            LayoutFormat::detect("layout.txt", b"# layout x\n"),
            LayoutFormat::Text
        );
        assert_eq!(LayoutFormat::detect("layout", b""), LayoutFormat::Text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# layout y\n\n# a comment\n0 0 0 5 5\n\n";
        let layout = from_text(text).expect("parse");
        assert_eq!(layout.name(), "y");
        assert_eq!(layout.shape_count(), 1);
    }
}
