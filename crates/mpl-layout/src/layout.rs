//! The layout data model.

use crate::LayoutStats;
use mpl_geometry::{Nm, Polygon, Rect};
use std::fmt;

/// A stable identifier for a layout shape.
///
/// Shape ids are dense indices assigned in insertion order; they are the
/// link between decomposition-graph vertices and the geometry they came
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeId(pub usize);

impl ShapeId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ShapeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A single layout feature: an id plus its rectilinear geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    id: ShapeId,
    polygon: Polygon,
}

impl Shape {
    /// The shape's identifier.
    pub fn id(&self) -> ShapeId {
        self.id
    }

    /// The shape's geometry.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }
}

/// A single-layer layout: a named, ordered collection of rectilinear shapes.
///
/// # Example
///
/// ```
/// use mpl_geometry::{Nm, Rect};
/// use mpl_layout::Layout;
///
/// let mut builder = Layout::builder("demo");
/// builder.add_rect(Rect::new(Nm(0), Nm(0), Nm(20), Nm(20)));
/// builder.add_rect(Rect::new(Nm(60), Nm(0), Nm(80), Nm(20)));
/// let layout = builder.build();
/// assert_eq!(layout.shape_count(), 2);
/// assert_eq!(layout.name(), "demo");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    name: String,
    shapes: Vec<Shape>,
}

impl Layout {
    /// Starts building a layout with the given name.
    pub fn builder(name: impl Into<String>) -> LayoutBuilder {
        LayoutBuilder {
            name: name.into(),
            shapes: Vec::new(),
        }
    }

    /// The layout name (typically the benchmark circuit name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shapes.
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` if the layout has no shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The shapes in id order.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Looks up a shape by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn shape(&self, id: ShapeId) -> &Shape {
        &self.shapes[id.index()]
    }

    /// Iterates over the shapes.
    pub fn iter(&self) -> std::slice::Iter<'_, Shape> {
        self.shapes.iter()
    }

    /// The bounding box of the whole layout, or `None` for an empty layout.
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut iter = self.shapes.iter().map(|s| s.polygon.bounding_box());
        let first = iter.next()?;
        Some(iter.fold(first, |acc, bb| acc.union_bbox(&bb)))
    }

    /// Computes summary statistics for the layout.
    pub fn stats(&self) -> LayoutStats {
        LayoutStats::compute(self)
    }
}

impl<'a> IntoIterator for &'a Layout {
    type Item = &'a Shape;
    type IntoIter = std::slice::Iter<'a, Shape>;
    fn into_iter(self) -> Self::IntoIter {
        self.shapes.iter()
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Layout({}, {} shapes)", self.name, self.shapes.len())
    }
}

/// Incremental builder for [`Layout`].
#[derive(Debug, Clone)]
pub struct LayoutBuilder {
    name: String,
    shapes: Vec<Shape>,
}

impl LayoutBuilder {
    /// Adds a rectangular shape and returns its id.
    pub fn add_rect(&mut self, rect: Rect) -> ShapeId {
        self.add_polygon(Polygon::rect(rect))
    }

    /// Adds a square contact of the given width with lower-left corner at
    /// `(x, y)` and returns its id.
    pub fn add_contact(&mut self, x: Nm, y: Nm, width: Nm) -> ShapeId {
        self.add_rect(Rect::new(x, y, x + width, y + width))
    }

    /// Adds a polygonal shape and returns its id.
    pub fn add_polygon(&mut self, polygon: Polygon) -> ShapeId {
        let id = ShapeId(self.shapes.len());
        self.shapes.push(Shape { id, polygon });
        id
    }

    /// Number of shapes added so far.
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Finishes the layout.
    pub fn build(self) -> Layout {
        Layout {
            name: self.name,
            shapes: self.shapes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64, c: i64, d: i64) -> Rect {
        Rect::new(Nm(a), Nm(b), Nm(c), Nm(d))
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = Layout::builder("t");
        let id0 = b.add_rect(r(0, 0, 10, 10));
        let id1 = b.add_contact(Nm(50), Nm(0), Nm(20));
        assert_eq!(id0, ShapeId(0));
        assert_eq!(id1, ShapeId(1));
        assert_eq!(b.shape_count(), 2);
        let layout = b.build();
        assert_eq!(layout.shape(id1).polygon().bounding_box(), r(50, 0, 70, 20));
        assert_eq!(layout.shape(id0).id(), id0);
    }

    #[test]
    fn empty_layout() {
        let layout = Layout::builder("empty").build();
        assert!(layout.is_empty());
        assert_eq!(layout.bounding_box(), None);
        assert_eq!(layout.to_string(), "Layout(empty, 0 shapes)");
    }

    #[test]
    fn bounding_box_covers_all_shapes() {
        let mut b = Layout::builder("bb");
        b.add_rect(r(0, 0, 10, 10));
        b.add_rect(r(100, -50, 120, 0));
        let layout = b.build();
        assert_eq!(layout.bounding_box(), Some(r(0, -50, 120, 10)));
    }

    #[test]
    fn iteration_and_display() {
        let mut b = Layout::builder("iter");
        b.add_rect(r(0, 0, 10, 10));
        b.add_rect(r(20, 0, 30, 10));
        let layout = b.build();
        assert_eq!(layout.iter().count(), 2);
        assert_eq!((&layout).into_iter().count(), 2);
        assert_eq!(ShapeId(3).to_string(), "s3");
        assert_eq!(ShapeId(3).index(), 3);
    }
}
