//! Layout substrate for multiple-patterning layout decomposition.
//!
//! This crate models the *input* side of the decomposition problem:
//!
//! * [`Technology`] — the process parameters of the paper's experimental
//!   setup (20 nm half pitch, 20 nm minimum width/spacing) and the derived
//!   minimum coloring distances for quadruple (80 nm) and pentuple (110 nm)
//!   patterning.
//! * [`Layout`] and [`Shape`] — a named collection of rectilinear polygon
//!   features on a single layer (Metal1/contact), which is all the
//!   decomposition flow needs.
//! * [`gen`] — deterministic synthetic layout generators, including the
//!   ISCAS-85/89-style named benchmark suite used to stand in for the
//!   original (unavailable) benchmark layouts, the Fig. 1 contact-clique
//!   pattern and the Fig. 7 dense-line pattern.
//! * [`io`] — a minimal text serialisation so layouts can be saved, diffed
//!   and reloaded.
//!
//! # Example
//!
//! ```
//! use mpl_layout::{gen::IscasCircuit, Technology};
//!
//! let tech = Technology::nm20();
//! let layout = IscasCircuit::C432.generate(&tech);
//! assert_eq!(layout.name(), "C432");
//! assert!(layout.shape_count() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
mod hierarchy;
pub mod io;
mod layout;
mod stats;
mod technology;

pub use hierarchy::{CellInstance, LayoutHierarchy};
pub use layout::{Layout, LayoutBuilder, Shape, ShapeId};
pub use stats::LayoutStats;
pub use technology::Technology;
