//! Cell-instance provenance for a flattened layout.
//!
//! A [`LayoutHierarchy`] records, for every shape of a flat [`Layout`],
//! which top-level cell instance the shape came from. It is produced by
//! the GDS reader (which sees the SREF/AREF structure before flattening)
//! and consumed by the hierarchical decomposition driver, which uses the
//! tags to split merged conflict components back into per-instance pieces
//! that are translates of one another.
//!
//! The type is deliberately dumb data: shape `i` of the layout maps to
//! `Some(instance)` when every rectangle of the shape was emitted by that
//! single top-level instance, and to `None` when the shape belongs to the
//! top cell itself or merged geometry from several instances (polygons
//! that touch across a cell boundary are unioned into one shape by the
//! reader, and a union spanning instances has no single origin).
//!
//! [`Layout`]: crate::Layout

use crate::ShapeId;

/// One placement of a cell under the top structure.
///
/// AREF placements are expanded: an `n × m` array contributes `n · m`
/// instances, in the same row-major order the flattener emits them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellInstance {
    /// Name of the referenced cell definition.
    pub cell: String,
    /// X translation of the placement, in nanometres.
    pub dx: i64,
    /// Y translation of the placement, in nanometres.
    pub dy: i64,
}

/// Per-shape instance provenance for a flattened [`Layout`](crate::Layout).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayoutHierarchy {
    instances: Vec<CellInstance>,
    shape_origin: Vec<Option<usize>>,
    nested_inherited: usize,
}

impl LayoutHierarchy {
    /// Builds a hierarchy from the expanded instance list and the
    /// per-shape origin tags (indexed by dense [`ShapeId`]).
    ///
    /// # Panics
    ///
    /// Panics when a tag references an instance index out of range.
    pub fn new(instances: Vec<CellInstance>, shape_origin: Vec<Option<usize>>) -> Self {
        for tag in shape_origin.iter().flatten() {
            assert!(
                *tag < instances.len(),
                "shape origin {tag} out of range for {} instances",
                instances.len()
            );
        }
        Self {
            instances,
            shape_origin,
            nested_inherited: 0,
        }
    }

    /// Records how many flattened shapes inherited their tag from an
    /// enclosing top-level instance because they were emitted through a
    /// *nested* reference (SREF/AREF at depth ≥ 2 below the top cell).
    ///
    /// The hierarchical driver treats every tag as a direct placement, so
    /// nested chains are silently merged into the enclosing instance; the
    /// counter keeps that approximation observable. See
    /// [`nested_inherited`](Self::nested_inherited).
    #[must_use]
    pub fn with_nested_inherited(mut self, count: usize) -> Self {
        self.nested_inherited = count;
        self
    }

    /// Number of shapes whose tag was inherited from the enclosing
    /// top-level instance through a nested reference chain (depth ≥ 2).
    ///
    /// Zero both for genuinely two-level layouts and for hierarchies built
    /// without provenance (e.g. synthetic fixtures); a non-zero value
    /// flags that per-instance pieces may mix geometry from distinct
    /// sub-cells.
    pub fn nested_inherited(&self) -> usize {
        self.nested_inherited
    }

    /// The expanded top-level instance list, in flatten emission order.
    pub fn instances(&self) -> &[CellInstance] {
        &self.instances
    }

    /// Number of expanded top-level instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of distinct cell definitions among the instances.
    pub fn cell_count(&self) -> usize {
        let mut names: Vec<&str> = self.instances.iter().map(|i| i.cell.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// The per-shape origin tags, indexed by dense shape index.
    pub fn shape_origins(&self) -> &[Option<usize>] {
        &self.shape_origin
    }

    /// The instance a shape came from, or `None` for top-level or merged
    /// geometry (and for shapes beyond the tagged range).
    pub fn origin_of(&self, shape: ShapeId) -> Option<usize> {
        self.shape_origin.get(shape.index()).copied().flatten()
    }

    /// True when no shape carries an instance tag — the layout is
    /// effectively flat and hierarchical decomposition degenerates to the
    /// ordinary memoized batch path.
    pub fn is_trivial(&self) -> bool {
        self.shape_origin.iter().all(Option::is_none)
    }

    /// Number of shapes tagged with some instance.
    pub fn tagged_shape_count(&self) -> usize {
        self.shape_origin.iter().filter(|o| o.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(cell: &str, dx: i64, dy: i64) -> CellInstance {
        CellInstance {
            cell: cell.to_string(),
            dx,
            dy,
        }
    }

    #[test]
    fn origin_lookup_and_counts() {
        let hier = LayoutHierarchy::new(
            vec![inst("CELL", 0, 0), inst("CELL", 100, 0), inst("CAP", 0, 90)],
            vec![Some(0), Some(1), None, Some(2)],
        );
        assert_eq!(hier.instance_count(), 3);
        assert_eq!(hier.cell_count(), 2);
        assert_eq!(hier.origin_of(ShapeId(0)), Some(0));
        assert_eq!(hier.origin_of(ShapeId(2)), None);
        assert_eq!(hier.origin_of(ShapeId(99)), None);
        assert_eq!(hier.tagged_shape_count(), 3);
        assert!(!hier.is_trivial());
        assert_eq!(hier.nested_inherited(), 0);
    }

    #[test]
    fn nested_inherited_counter_round_trips() {
        let hier =
            LayoutHierarchy::new(vec![inst("CELL", 0, 0)], vec![Some(0)]).with_nested_inherited(7);
        assert_eq!(hier.nested_inherited(), 7);
    }

    #[test]
    fn default_hierarchy_is_trivial() {
        let hier = LayoutHierarchy::default();
        assert!(hier.is_trivial());
        assert_eq!(hier.instance_count(), 0);
        assert_eq!(hier.cell_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tags_are_rejected() {
        LayoutHierarchy::new(vec![inst("CELL", 0, 0)], vec![Some(1)]);
    }
}
