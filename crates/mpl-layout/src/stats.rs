//! Layout summary statistics.

use crate::Layout;
use mpl_geometry::Rect;
use std::fmt;

/// Summary statistics for a layout, used in benchmark reporting and for
/// calibrating the synthetic generators against the paper's benchmark sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutStats {
    /// Number of polygonal shapes (decomposition-graph vertices before
    /// stitch insertion).
    pub shape_count: usize,
    /// Total number of component rectangles over all shapes.
    pub rect_count: usize,
    /// Sum of shape areas (upper bound), in nm².
    pub total_area: i64,
    /// Bounding box of the layout, if non-empty.
    pub bounding_box: Option<Rect>,
    /// Fraction of the bounding-box area covered by features (upper bound),
    /// in `[0, 1]`; zero for an empty layout.
    pub density: f64,
}

impl LayoutStats {
    /// Computes statistics for `layout`.
    pub fn compute(layout: &Layout) -> Self {
        let shape_count = layout.shape_count();
        let rect_count = layout.iter().map(|s| s.polygon().rect_count()).sum();
        let total_area: i64 = layout.iter().map(|s| s.polygon().area_upper_bound()).sum();
        let bounding_box = layout.bounding_box();
        let density = match bounding_box {
            Some(bb) if bb.area() > 0 => total_area as f64 / bb.area() as f64,
            _ => 0.0,
        };
        LayoutStats {
            shape_count,
            rect_count,
            total_area,
            bounding_box,
            density,
        }
    }
}

impl fmt::Display for LayoutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shapes, {} rects, density {:.3}",
            self.shape_count, self.rect_count, self.density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_geometry::Nm;

    #[test]
    fn stats_of_empty_layout_are_zero() {
        let stats = Layout::builder("e").build().stats();
        assert_eq!(stats.shape_count, 0);
        assert_eq!(stats.rect_count, 0);
        assert_eq!(stats.total_area, 0);
        assert_eq!(stats.bounding_box, None);
        assert_eq!(stats.density, 0.0);
    }

    #[test]
    fn stats_count_rects_and_area() {
        let mut b = Layout::builder("s");
        b.add_rect(Rect::new(Nm(0), Nm(0), Nm(10), Nm(10)));
        b.add_rect(Rect::new(Nm(10), Nm(0), Nm(20), Nm(10)));
        let stats = b.build().stats();
        assert_eq!(stats.shape_count, 2);
        assert_eq!(stats.rect_count, 2);
        assert_eq!(stats.total_area, 200);
        assert_eq!(stats.density, 1.0);
        assert_eq!(stats.to_string(), "2 shapes, 2 rects, density 1.000");
    }
}
