//! Process technology parameters.

use mpl_geometry::Nm;

/// Process parameters governing conflict and stitch rules.
///
/// The paper's experiments scale the Metal1 layer to a 20 nm half pitch with
/// minimum feature width `w_m = 20 nm` and minimum spacing `s_m = 20 nm`, and
/// derive the minimum coloring distance `min_s` from the patterning order:
///
/// * quadruple patterning: `min_s = 2·s_m + 2·w_m = 80 nm`,
/// * pentuple patterning: `min_s = 3·s_m + 2.5·w_m = 110 nm`.
///
/// The *color-friendly* band of Definition 2 extends from `min_s` to
/// `min_s + half_pitch`.
///
/// # Example
///
/// ```
/// use mpl_geometry::Nm;
/// use mpl_layout::Technology;
///
/// let tech = Technology::nm20();
/// assert_eq!(tech.coloring_distance(4), Nm(80));
/// assert_eq!(tech.coloring_distance(5), Nm(110));
/// assert_eq!(tech.color_friendly_distance(4), Nm(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Technology {
    half_pitch: Nm,
    min_width: Nm,
    min_spacing: Nm,
}

impl Technology {
    /// The paper's experimental setup: 20 nm half pitch, 20 nm minimum
    /// width, 20 nm minimum spacing.
    pub fn nm20() -> Self {
        Technology {
            half_pitch: Nm(20),
            min_width: Nm(20),
            min_spacing: Nm(20),
        }
    }

    /// Creates a technology from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not strictly positive.
    pub fn new(half_pitch: Nm, min_width: Nm, min_spacing: Nm) -> Self {
        assert!(
            half_pitch > Nm::ZERO && min_width > Nm::ZERO && min_spacing > Nm::ZERO,
            "technology parameters must be positive"
        );
        Technology {
            half_pitch,
            min_width,
            min_spacing,
        }
    }

    /// The half pitch `hp`.
    pub fn half_pitch(&self) -> Nm {
        self.half_pitch
    }

    /// The minimum feature width `w_m`.
    pub fn min_width(&self) -> Nm {
        self.min_width
    }

    /// The minimum spacing `s_m`.
    pub fn min_spacing(&self) -> Nm {
        self.min_spacing
    }

    /// The wire/contact pitch `w_m + s_m`.
    pub fn pitch(&self) -> Nm {
        self.min_width + self.min_spacing
    }

    /// The minimum coloring distance `min_s` for `k`-patterning, following
    /// the paper's experimental choices:
    ///
    /// * `k ≤ 3`: `2·s_m + w_m` (the classical double/triple patterning rule,
    ///   shown in Fig. 7 to already create K5 structures),
    /// * `k = 4`: `2·s_m + 2·w_m`,
    /// * `k ≥ 5`: `3·s_m + 2.5·w_m` (expressed in integer nanometres).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn coloring_distance(&self, k: usize) -> Nm {
        assert!(k >= 2, "patterning requires at least two masks, got {k}");
        let s = self.min_spacing;
        let w = self.min_width;
        match k {
            2 | 3 => s * 2 + w,
            4 => s * 2 + w * 2,
            _ => s * 3 + Nm(w.value() * 5 / 2),
        }
    }

    /// The outer radius of the color-friendly band for `k`-patterning:
    /// `min_s + half_pitch` (Definition 2).
    pub fn color_friendly_distance(&self, k: usize) -> Nm {
        self.coloring_distance(k) + self.half_pitch
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::nm20()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_distances() {
        let tech = Technology::nm20();
        assert_eq!(tech.coloring_distance(3), Nm(60));
        assert_eq!(tech.coloring_distance(4), Nm(80));
        assert_eq!(tech.coloring_distance(5), Nm(110));
        assert_eq!(tech.coloring_distance(6), Nm(110));
        assert_eq!(tech.color_friendly_distance(4), Nm(100));
        assert_eq!(tech.color_friendly_distance(5), Nm(130));
    }

    #[test]
    fn accessors_and_pitch() {
        let tech = Technology::nm20();
        assert_eq!(tech.half_pitch(), Nm(20));
        assert_eq!(tech.min_width(), Nm(20));
        assert_eq!(tech.min_spacing(), Nm(20));
        assert_eq!(tech.pitch(), Nm(40));
        assert_eq!(Technology::default(), tech);
    }

    #[test]
    fn custom_technology() {
        let tech = Technology::new(Nm(16), Nm(16), Nm(18));
        assert_eq!(tech.coloring_distance(4), Nm(68));
        assert_eq!(tech.color_friendly_distance(4), Nm(84));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parameters_are_rejected() {
        let _ = Technology::new(Nm(0), Nm(20), Nm(20));
    }

    #[test]
    #[should_panic(expected = "at least two masks")]
    fn k_below_two_panics() {
        let _ = Technology::nm20().coloring_distance(1);
    }
}
