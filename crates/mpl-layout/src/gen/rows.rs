//! Standard-cell-row style synthetic layout generator.

use crate::gen::{dense_strip, k5_cluster};
use crate::{Layout, Technology};
use mpl_geometry::{Nm, Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the row-based synthetic layout generator.
///
/// The generator emits a standard-cell-like Metal1/contact layer:
///
/// * `rows` horizontal cell rows, vertically separated so that different
///   rows never conflict under the quadruple- or pentuple-patterning
///   coloring distances;
/// * each row has a lower and an upper contact track plus a routing track in
///   between; wires on the routing track run close enough to both contact
///   tracks to conflict with them and to receive stitch candidates;
/// * a configurable number of cells are replaced by a dense five-contact K5
///   cluster (an isolated native conflict for quadruple patterning);
/// * a configurable number of cells are replaced by a *dense strip* — a
///   two-row staggered contact block whose every vertex keeps conflict
///   degree ≥ 4, which therefore survives graph division and exercises the
///   exact engines.
///
/// The same configuration always generates the same layout (the RNG is
/// seeded from `seed`).
#[derive(Debug, Clone, PartialEq)]
pub struct RowLayoutConfig {
    /// Layout/benchmark name.
    pub name: String,
    /// Number of cell rows.
    pub rows: usize,
    /// Number of cells per row (each cell spans four contact pitches).
    pub cells_per_row: usize,
    /// Probability that a contact slot is occupied, in `[0, 1]`.
    pub contact_density: f64,
    /// Probability that a wire starts at a free routing-track slot, in
    /// `[0, 1]`.
    pub wire_density: f64,
    /// Number of K5 clusters (isolated native quadruple-patterning
    /// conflicts) to embed.
    pub k5_clusters: usize,
    /// Number of dense strips to embed.
    pub dense_strips: usize,
    /// Number of bottom-row contacts per dense strip.
    pub strip_length: usize,
    /// RNG seed; fixed seed ⇒ reproducible layout.
    pub seed: u64,
}

impl RowLayoutConfig {
    /// A small, quick-to-decompose configuration useful in examples and
    /// tests.
    pub fn small(name: impl Into<String>, seed: u64) -> Self {
        RowLayoutConfig {
            name: name.into(),
            rows: 4,
            cells_per_row: 12,
            contact_density: 0.65,
            wire_density: 0.55,
            k5_clusters: 1,
            dense_strips: 0,
            strip_length: 7,
            seed,
        }
    }
}

/// Geometry constants derived from the technology for the row generator.
struct RowGeometry {
    contact: Nm,
    pitch: Nm,
    cell_width: Nm,
    row_height: Nm,
    lower_track_y: Nm,
    wire_track_y: Nm,
    upper_track_y: Nm,
}

impl RowGeometry {
    fn new(tech: &Technology) -> Self {
        let contact = tech.min_width();
        let pitch = tech.pitch();
        // Tracks: lower contacts at y = 0, wires three pitches up (60 nm gap
        // at the 20 nm node — close enough to conflict under both the 80 nm
        // and 110 nm coloring distances, far enough that a contact rarely
        // reaches two different wires), upper contacts mirrored above.
        let lower_track_y = Nm::ZERO;
        let wire_track_y = lower_track_y + contact + pitch + pitch / 2;
        let upper_track_y = wire_track_y + contact + pitch + pitch / 2;
        let row_height = upper_track_y + contact + pitch * 4;
        RowGeometry {
            contact,
            pitch,
            cell_width: pitch * 4,
            row_height,
            lower_track_y,
            wire_track_y,
            upper_track_y,
        }
    }
}

/// Which special structure (if any) occupies a cell.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CellRole {
    Normal,
    Cluster,
    Strip,
    /// Deliberately left empty to isolate an adjacent cluster or strip.
    Spacer,
}

/// Generates a row-based synthetic layout.
///
/// # Example
///
/// ```
/// use mpl_layout::{gen, Technology};
///
/// let cfg = gen::RowLayoutConfig::small("demo", 7);
/// let layout = gen::generate_row_layout(&cfg, &Technology::nm20());
/// assert_eq!(layout.name(), "demo");
/// assert!(layout.shape_count() > 50);
/// ```
///
/// # Panics
///
/// Panics if a density is outside `[0, 1]` or `strip_length < 3`.
pub fn generate_row_layout(config: &RowLayoutConfig, tech: &Technology) -> Layout {
    assert!(
        (0.0..=1.0).contains(&config.contact_density) && (0.0..=1.0).contains(&config.wire_density),
        "densities must lie in [0, 1]"
    );
    assert!(config.strip_length >= 3, "strip_length must be at least 3");
    let geom = RowGeometry::new(tech);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut builder = Layout::builder(config.name.clone());

    // Reserve cells for clusters and strips, spreading them evenly and
    // padding each with spacer cells so the embedded structure stays an
    // isolated, controlled source of native conflicts.
    let total_cells = config.rows * config.cells_per_row;
    let strip_cells = 1
        + (config.strip_length * tech.pitch().value() as usize)
            .div_ceil(geom.cell_width.value() as usize);
    let mut roles = vec![CellRole::Normal; total_cells];
    let special_count = config.k5_clusters + config.dense_strips;
    if special_count > 0 && total_cells > special_count * (strip_cells + 2) {
        let stride = total_cells / special_count;
        for index in 0..special_count {
            let anchor = index * stride + stride / 2;
            let is_strip = index >= config.k5_clusters;
            let span = if is_strip { strip_cells } else { 1 };
            // Spacer, structure cells, spacer.
            if anchor == 0 || anchor + span + 1 > total_cells {
                continue;
            }
            // Keep the whole structure inside one row.
            let row = anchor / config.cells_per_row;
            if (anchor + span) / config.cells_per_row != row {
                continue;
            }
            roles[anchor - 1] = CellRole::Spacer;
            roles[anchor] = if is_strip {
                CellRole::Strip
            } else {
                CellRole::Cluster
            };
            for slot in 1..span {
                roles[anchor + slot] = CellRole::Spacer;
            }
            if anchor + span < total_cells {
                roles[anchor + span] = CellRole::Spacer;
            }
        }
    }

    for row in 0..config.rows {
        let row_y = geom.row_height * row as i64;
        // Contact tracks, cell by cell.
        for cell in 0..config.cells_per_row {
            let cell_index = row * config.cells_per_row + cell;
            let cell_x = geom.cell_width * cell as i64;
            match roles[cell_index] {
                CellRole::Spacer => continue,
                CellRole::Cluster => {
                    k5_cluster(
                        &mut builder,
                        tech,
                        Point::new(cell_x + geom.pitch / 2, row_y + geom.lower_track_y),
                    );
                    continue;
                }
                CellRole::Strip => {
                    dense_strip(
                        &mut builder,
                        tech,
                        Point::new(cell_x + geom.pitch / 2, row_y + geom.lower_track_y),
                        config.strip_length,
                    );
                    continue;
                }
                CellRole::Normal => {}
            }
            for slot in 0..4 {
                let x = cell_x + geom.pitch * slot;
                if rng.gen_bool(config.contact_density) {
                    builder.add_contact(x, row_y + geom.lower_track_y, geom.contact);
                }
                if rng.gen_bool(config.contact_density * 0.8) {
                    builder.add_contact(x, row_y + geom.upper_track_y, geom.contact);
                }
            }
        }

        // Routing track: wires run along the whole row, spanning one to two
        // cells, with at least one free slot between consecutive wires.
        // Wires are suppressed above special cells so clusters and strips
        // stay isolated.
        let total_slots = config.cells_per_row * 4;
        let mut slot = 0usize;
        while slot + 2 < total_slots {
            let cell_here = row * config.cells_per_row + slot / 4;
            if roles[cell_here] != CellRole::Normal {
                slot += 4 - slot % 4;
                continue;
            }
            if rng.gen_bool(config.wire_density) {
                let max_len = (total_slots - slot - 1).min(8);
                if max_len >= 2 {
                    let len = rng.gen_range(2..=max_len);
                    // Clip the wire if it would run over a special cell.
                    let mut clipped_len = len;
                    for l in 0..len {
                        let cell_there = row * config.cells_per_row + (slot + l) / 4;
                        if roles[cell_there] != CellRole::Normal {
                            clipped_len = l;
                            break;
                        }
                    }
                    if clipped_len >= 2 {
                        let x0 = geom.pitch * slot as i64;
                        let x1 = geom.pitch * (slot + clipped_len) as i64 - tech.min_spacing();
                        builder.add_rect(Rect::new(
                            x0,
                            row_y + geom.wire_track_y,
                            x1,
                            row_y + geom.wire_track_y + geom.contact,
                        ));
                        slot += clipped_len + 2;
                        continue;
                    }
                }
            }
            slot += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let tech = Technology::nm20();
        let cfg = RowLayoutConfig::small("det", 42);
        let a = generate_row_layout(&cfg, &tech);
        let b = generate_row_layout(&cfg, &tech);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let tech = Technology::nm20();
        let a = generate_row_layout(&RowLayoutConfig::small("a", 1), &tech);
        let b = generate_row_layout(&RowLayoutConfig::small("a", 2), &tech);
        assert_ne!(a, b);
    }

    #[test]
    fn shape_count_scales_with_size() {
        let tech = Technology::nm20();
        let small = generate_row_layout(&RowLayoutConfig::small("s", 3), &tech);
        let mut big_cfg = RowLayoutConfig::small("b", 3);
        big_cfg.rows *= 4;
        big_cfg.cells_per_row *= 4;
        let big = generate_row_layout(&big_cfg, &tech);
        assert!(big.shape_count() > small.shape_count() * 8);
    }

    #[test]
    fn rows_are_vertically_isolated() {
        // Shapes in different rows must never conflict even under the
        // pentuple-patterning distance, otherwise the per-row structure
        // assumption breaks.
        let tech = Technology::nm20();
        let mut cfg = RowLayoutConfig::small("iso", 5);
        cfg.rows = 2;
        cfg.cells_per_row = 6;
        cfg.k5_clusters = 0;
        let layout = generate_row_layout(&cfg, &tech);
        let row_height = RowGeometry::new(&tech).row_height;
        let min_s = tech.coloring_distance(5);
        for a in layout.iter() {
            for b in layout.iter() {
                if a.id() < b.id() {
                    let row_a = a.polygon().bounding_box().ylo().value() / row_height.value();
                    let row_b = b.polygon().bounding_box().ylo().value() / row_height.value();
                    if row_a != row_b {
                        assert!(!a.polygon().within_distance(b.polygon(), min_s));
                    }
                }
            }
        }
    }

    #[test]
    fn requested_special_structures_are_embedded() {
        let tech = Technology::nm20();
        let mut cfg = RowLayoutConfig::small("clusters", 9);
        cfg.rows = 3;
        cfg.cells_per_row = 20;
        cfg.k5_clusters = 4;
        cfg.dense_strips = 2;
        cfg.strip_length = 6;
        cfg.contact_density = 0.0;
        cfg.wire_density = 0.0;
        let layout = generate_row_layout(&cfg, &tech);
        // With all other content disabled, only the special structures
        // remain: 4 clusters x 5 contacts + 2 strips x (6 + 5) contacts.
        assert_eq!(layout.shape_count(), 4 * 5 + 2 * 11);
    }

    #[test]
    fn zero_density_layout_with_no_structures_is_empty() {
        let tech = Technology::nm20();
        let cfg = RowLayoutConfig {
            name: "empty".into(),
            rows: 2,
            cells_per_row: 4,
            contact_density: 0.0,
            wire_density: 0.0,
            k5_clusters: 0,
            dense_strips: 0,
            strip_length: 7,
            seed: 0,
        };
        assert!(generate_row_layout(&cfg, &tech).is_empty());
    }

    #[test]
    fn wires_are_present_and_respect_minimum_spacing_on_the_track() {
        let tech = Technology::nm20();
        let mut cfg = RowLayoutConfig::small("wires", 13);
        cfg.contact_density = 0.5;
        cfg.wire_density = 0.9;
        let layout = generate_row_layout(&cfg, &tech);
        let wires: Vec<_> = layout
            .iter()
            .filter(|s| s.polygon().bounding_box().width() > tech.min_width())
            .collect();
        assert!(!wires.is_empty());
        for a in &wires {
            for b in &wires {
                if a.id() < b.id() {
                    let d2 = a.polygon().distance_squared(b.polygon());
                    assert!(d2 >= tech.min_spacing().squared());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "densities")]
    fn invalid_density_panics() {
        let tech = Technology::nm20();
        let mut cfg = RowLayoutConfig::small("bad", 0);
        cfg.contact_density = 1.5;
        let _ = generate_row_layout(&cfg, &tech);
    }
}
