//! Small constructive layout patterns from the paper's figures.

use crate::{Layout, LayoutBuilder, Technology};
use mpl_geometry::{Nm, Point, Rect};

/// Adds a square contact of the technology's minimum width at `(x, y)`.
fn add_contact_at(builder: &mut LayoutBuilder, tech: &Technology, x: Nm, y: Nm) {
    builder.add_contact(x, y, tech.min_width());
}

/// The four-contact clique of Fig. 1: a 2×2 contact array at minimum pitch.
///
/// Under the triple-patterning coloring distance this pattern is a K4 and
/// therefore indecomposable with three masks; with four masks (quadruple
/// patterning) it decomposes without conflicts — exactly the motivating
/// example of the paper.
///
/// # Example
///
/// ```
/// use mpl_layout::{gen, Technology};
///
/// let layout = gen::fig1_contact_clique(&Technology::nm20());
/// assert_eq!(layout.shape_count(), 4);
/// ```
pub fn fig1_contact_clique(tech: &Technology) -> Layout {
    let mut b = Layout::builder("fig1-contact-clique");
    let pitch = tech.pitch();
    for j in 0..2 {
        for i in 0..2 {
            add_contact_at(&mut b, tech, pitch * i, pitch * j);
        }
    }
    b.build()
}

/// Adds a five-contact "pyramid" cluster (three contacts in a bottom row at
/// minimum pitch plus two contacts centred above the gaps) anchored at
/// `origin`.
///
/// All five contacts respect the minimum spacing `s_m` yet are pairwise
/// closer than the quadruple-patterning coloring distance `2·s_m + 2·w_m`,
/// so the cluster is a K5: a *native conflict* that quadruple patterning
/// cannot resolve and only a fifth mask (pentuple patterning) removes.  This
/// is the kind of dense contact pattern the paper points to when motivating
/// patterning beyond K = 4.
pub fn k5_cluster(builder: &mut LayoutBuilder, tech: &Technology, origin: Point) {
    let p = tech.pitch();
    let half = p / 2;
    let offsets = [
        (Nm::ZERO, Nm::ZERO),
        (p, Nm::ZERO),
        (p * 2, Nm::ZERO),
        (half, p),
        (half + p, p),
    ];
    for (dx, dy) in offsets {
        add_contact_at(builder, tech, origin.x + dx, origin.y + dy);
    }
}

/// Adds a *dense strip*: a bottom row of `length` contacts at minimum pitch
/// plus a staggered top row of `length − 1` contacts, anchored at `origin`.
///
/// Every vertex of the strip keeps conflict degree ≥ 4 under the
/// quadruple-patterning coloring distance and the strip contains a chain of
/// overlapping K5 structures, so it survives every graph-division technique
/// and forces the exact engines into a genuine branch-and-bound search —
/// the kind of dense, natively conflicting region that makes the ILP
/// baseline slow on the paper's large benchmarks.
///
/// # Panics
///
/// Panics if `length < 3`.
pub fn dense_strip(builder: &mut LayoutBuilder, tech: &Technology, origin: Point, length: usize) {
    assert!(length >= 3, "a dense strip needs at least three columns");
    let p = tech.pitch();
    let half = p / 2;
    for i in 0..length {
        add_contact_at(builder, tech, origin.x + p * i as i64, origin.y);
    }
    for i in 0..length - 1 {
        add_contact_at(builder, tech, origin.x + half + p * i as i64, origin.y + p);
    }
}

/// A standalone layout containing a single dense strip of the given length.
pub fn dense_strip_layout(tech: &Technology, length: usize) -> Layout {
    let mut b = Layout::builder(format!("dense-strip-{length}"));
    dense_strip(&mut b, tech, Point::ORIGIN, length);
    b.build()
}

/// A standalone layout containing a single K5 contact cluster.
///
/// Used by the tests and benches that reproduce the paper's observation that
/// realistic contact patterns contain K5 structures, defeating any
/// four-color-theorem style argument (the decomposition graph is not
/// planar).
pub fn k5_cluster_layout(tech: &Technology) -> Layout {
    let mut b = Layout::builder("k5-cluster");
    k5_cluster(&mut b, tech, Point::ORIGIN);
    b.build()
}

/// A `rows × cols` contact array at the given pitch.
///
/// With `pitch = 2·half_pitch` this is the dense contact fabric found in
/// SRAM-like regions; with larger pitches the array becomes multiple
/// patterning friendly.
///
/// # Panics
///
/// Panics if `pitch` is not strictly positive.
pub fn contact_array(tech: &Technology, rows: usize, cols: usize, pitch: Nm) -> Layout {
    assert!(pitch > Nm::ZERO, "pitch must be positive");
    let mut b = Layout::builder(format!("contact-array-{rows}x{cols}"));
    for j in 0..rows {
        for i in 0..cols {
            add_contact_at(&mut b, tech, pitch * i as i64, pitch * j as i64);
        }
    }
    b.build()
}

/// An AREF-style repeated pattern: a `arrays_x × arrays_y` grid of
/// identical dense-strip clusters, stepped `gap` apart in both axes.
///
/// This is the shape of array references (AREF) in real GDSII layouts: one
/// dense cell stamped out hundreds of times at a regular step.  With `gap`
/// larger than the technology's friendly distance every cluster becomes
/// its own independent component, and all the components are exact
/// translates of each other — the best case for translation-canonical
/// memoization (one engine solve, `arrays_x · arrays_y − 1` stamps) and
/// the worst case for a decomposer that re-colors every copy.
///
/// # Panics
///
/// Panics if either array dimension is zero, `strip_length < 3`, or `gap`
/// is not strictly positive.
pub fn repeated_strip_array(
    tech: &Technology,
    arrays_x: usize,
    arrays_y: usize,
    strip_length: usize,
    gap: Nm,
) -> Layout {
    assert!(
        arrays_x > 0 && arrays_y > 0,
        "the array needs at least one cluster"
    );
    assert!(gap > Nm::ZERO, "the cluster gap must be positive");
    let mut b = Layout::builder(format!("aref-strip-{arrays_x}x{arrays_y}"));
    let p = tech.pitch();
    // One cluster's bounding box; the step adds `gap` of clear space
    // between neighbouring boxes.
    let width = p * (strip_length as i64 - 1) + tech.min_width();
    let height = p + tech.min_width();
    for j in 0..arrays_y {
        for i in 0..arrays_x {
            let origin = Point::new((width + gap) * i as i64, (height + gap) * j as i64);
            dense_strip(&mut b, tech, origin, strip_length);
        }
    }
    b.build()
}

/// `count` dense parallel vertical lines at minimum width and spacing — the
/// one-dimensional regular pattern of Fig. 7.
///
/// Under the classical double/triple patterning coloring distance
/// `2·s_m + w_m` every line already conflicts with its second neighbour,
/// which is why the paper adopts `2·s_m + 2·w_m` for quadruple patterning
/// (and why planarity-based four-coloring arguments do not apply).
///
/// # Panics
///
/// Panics if `length` is not strictly positive.
pub fn dense_parallel_lines(tech: &Technology, count: usize, length: Nm) -> Layout {
    assert!(length > Nm::ZERO, "line length must be positive");
    let mut b = Layout::builder(format!("parallel-lines-{count}"));
    let pitch = tech.pitch();
    for i in 0..count {
        let x = pitch * i as i64;
        b.add_rect(Rect::new(x, Nm::ZERO, x + tech.min_width(), length));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_clique_is_pairwise_conflicting_under_tpl_distance() {
        let tech = Technology::nm20();
        let layout = fig1_contact_clique(&tech);
        let min_s3 = tech.coloring_distance(3);
        for a in layout.iter() {
            for b in layout.iter() {
                if a.id() != b.id() {
                    assert!(a.polygon().within_distance(b.polygon(), min_s3));
                }
            }
        }
    }

    #[test]
    fn k5_cluster_is_a_k5_under_qpl_distance() {
        let tech = Technology::nm20();
        let layout = k5_cluster_layout(&tech);
        assert_eq!(layout.shape_count(), 5);
        let min_s4 = tech.coloring_distance(4);
        for a in layout.iter() {
            for b in layout.iter() {
                if a.id() != b.id() {
                    assert!(
                        a.polygon().within_distance(b.polygon(), min_s4),
                        "{} and {} should conflict",
                        a.id(),
                        b.id()
                    );
                }
            }
        }
    }

    #[test]
    fn k5_cluster_spacing_is_drc_legal() {
        // Every pair of contacts must still respect the minimum spacing s_m.
        let tech = Technology::nm20();
        let layout = k5_cluster_layout(&tech);
        for a in layout.iter() {
            for b in layout.iter() {
                if a.id() < b.id() {
                    let d2 = a.polygon().distance_squared(b.polygon());
                    assert!(
                        d2 >= tech.min_spacing().squared(),
                        "{} and {} are closer than the minimum spacing",
                        a.id(),
                        b.id()
                    );
                }
            }
        }
    }

    #[test]
    fn k5_cluster_is_not_a_k5_under_pentuple_friendly_view() {
        // Sanity: under the larger pentuple-patterning distance the cluster
        // is still a clique (distances only grow the edge set), so the
        // interesting claim is about K = 4 vs. the fifth mask, not geometry.
        let tech = Technology::nm20();
        let layout = k5_cluster_layout(&tech);
        let min_s5 = tech.coloring_distance(5);
        let count = layout
            .iter()
            .flat_map(|a| layout.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.id() < b.id())
            .filter(|(a, b)| a.polygon().within_distance(b.polygon(), min_s5))
            .count();
        assert_eq!(count, 10);
    }

    #[test]
    fn contact_array_has_expected_count_and_extent() {
        let tech = Technology::nm20();
        let layout = contact_array(&tech, 3, 4, Nm(40));
        assert_eq!(layout.shape_count(), 12);
        let bb = layout.bounding_box().expect("non-empty");
        assert_eq!(bb.width(), Nm(3 * 40 + 20));
        assert_eq!(bb.height(), Nm(2 * 40 + 20));
    }

    #[test]
    fn parallel_lines_conflict_with_second_neighbours_under_qpl() {
        let tech = Technology::nm20();
        let layout = dense_parallel_lines(&tech, 5, Nm(200));
        let min_s4 = tech.coloring_distance(4);
        let shapes = layout.shapes();
        // Adjacent lines: 20 nm apart; second neighbours: 60 nm apart — both
        // conflict under the 80 nm quadruple-patterning distance; third
        // neighbours (100 nm) do not.
        assert!(shapes[0]
            .polygon()
            .within_distance(shapes[1].polygon(), min_s4));
        assert!(shapes[0]
            .polygon()
            .within_distance(shapes[2].polygon(), min_s4));
        assert!(!shapes[0]
            .polygon()
            .within_distance(shapes[3].polygon(), min_s4));
    }

    #[test]
    fn parallel_lines_second_neighbours_do_not_conflict_under_tpl_strict() {
        let tech = Technology::nm20();
        let layout = dense_parallel_lines(&tech, 4, Nm(200));
        let min_s3 = tech.coloring_distance(3);
        let shapes = layout.shapes();
        assert!(shapes[0]
            .polygon()
            .within_distance(shapes[1].polygon(), min_s3));
        // Exactly at 60 nm: the conflict predicate is strict, so no edge.
        assert!(!shapes[0]
            .polygon()
            .within_distance(shapes[2].polygon(), min_s3));
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn contact_array_rejects_zero_pitch() {
        let _ = contact_array(&Technology::nm20(), 1, 1, Nm(0));
    }

    #[test]
    fn repeated_strip_array_is_a_grid_of_exact_translates() {
        let tech = Technology::nm20();
        let layout = repeated_strip_array(&tech, 3, 2, 4, Nm(200));
        let per_cluster = 4 + 3; // bottom row + staggered top row
        assert_eq!(layout.shape_count(), 3 * 2 * per_cluster);
        // Every later cluster is a pure translation of the first.
        let shapes = layout.shapes();
        let first: Vec<_> = shapes[..per_cluster]
            .iter()
            .map(|s| s.polygon().bounding_box())
            .collect();
        for cluster in 1..6 {
            let offset = shapes[cluster * per_cluster].polygon().bounding_box();
            let dx = offset.xlo() - first[0].xlo();
            let dy = offset.ylo() - first[0].ylo();
            for (shape, base) in shapes[cluster * per_cluster..][..per_cluster]
                .iter()
                .zip(&first)
            {
                let bb = shape.polygon().bounding_box();
                assert_eq!(bb.xlo() - base.xlo(), dx);
                assert_eq!(bb.ylo() - base.ylo(), dy);
            }
        }
        // Neighbouring clusters keep at least the requested clear gap, so
        // under nm20's 100 nm friendly distance every cluster is isolated.
        let cluster_width = tech.pitch() * 3 + tech.min_width();
        let second_min_x = shapes[per_cluster].polygon().bounding_box().xlo();
        assert_eq!(second_min_x, cluster_width + Nm(200));
    }
}
