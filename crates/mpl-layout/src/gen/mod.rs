//! Deterministic synthetic layout generators.
//!
//! The paper evaluates on ISCAS-85/89 benchmark layouts scaled to a 20 nm
//! half pitch.  Those layouts are not redistributable, so this module
//! provides generators that produce layouts with the same *structural*
//! characteristics the decomposition algorithms care about:
//!
//! * long standard-cell-style contact rows whose conflict chains are broken
//!   up by the graph-division techniques,
//! * wire tracks running close to contact rows (stitch candidates),
//! * occasional dense clusters (quincunx contact patterns) that are K5
//!   structures under the quadruple-patterning coloring distance and
//!   therefore native conflicts, and
//! * the constructive patterns of Fig. 1 (four-contact clique) and Fig. 7
//!   (K5 under `2·s_m + w_m`).
//!
//! All generators are deterministic: the same configuration and seed always
//! produce the same layout.

mod iscas;
mod patterns;
mod rows;

pub use iscas::IscasCircuit;
pub use patterns::{
    contact_array, dense_parallel_lines, dense_strip, dense_strip_layout, fig1_contact_clique,
    k5_cluster, k5_cluster_layout, repeated_strip_array,
};
pub use rows::{generate_row_layout, RowLayoutConfig};
