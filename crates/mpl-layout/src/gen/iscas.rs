//! Named synthetic stand-ins for the ISCAS-85/89 benchmark layouts.

use crate::gen::{generate_row_layout, RowLayoutConfig};
use crate::{Layout, Technology};
use std::fmt;

/// The benchmark circuits evaluated in the paper (Tables 1 and 2).
///
/// The original Metal1 layouts derived from the ISCAS-85/89 netlists are not
/// redistributable, so each variant here maps to a deterministic
/// [`RowLayoutConfig`] whose size and native-conflict density are calibrated
/// to the corresponding circuit: the `C*` combinational circuits are small,
/// the `S*` sequential circuits are one to two orders of magnitude larger and
/// carry many more embedded K5 clusters, mirroring the conflict counts the
/// paper reports.
///
/// # Example
///
/// ```
/// use mpl_layout::{gen::IscasCircuit, Technology};
///
/// let layout = IscasCircuit::S38417.generate(&Technology::nm20());
/// assert!(layout.shape_count() > IscasCircuit::C432.generate(&Technology::nm20()).shape_count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum IscasCircuit {
    C432,
    C499,
    C880,
    C1355,
    C1908,
    C2670,
    C3540,
    C5315,
    C6288,
    C7552,
    S1488,
    S38417,
    S35932,
    S38584,
    S15850,
}

impl IscasCircuit {
    /// All circuits in the order of the paper's Table 1.
    pub const ALL: [IscasCircuit; 15] = [
        IscasCircuit::C432,
        IscasCircuit::C499,
        IscasCircuit::C880,
        IscasCircuit::C1355,
        IscasCircuit::C1908,
        IscasCircuit::C2670,
        IscasCircuit::C3540,
        IscasCircuit::C5315,
        IscasCircuit::C6288,
        IscasCircuit::C7552,
        IscasCircuit::S1488,
        IscasCircuit::S38417,
        IscasCircuit::S35932,
        IscasCircuit::S38584,
        IscasCircuit::S15850,
    ];

    /// The six densest circuits, used by the paper's Table 2 (pentuple
    /// patterning).
    pub const DENSEST: [IscasCircuit; 6] = [
        IscasCircuit::C6288,
        IscasCircuit::C7552,
        IscasCircuit::S38417,
        IscasCircuit::S35932,
        IscasCircuit::S38584,
        IscasCircuit::S15850,
    ];

    /// The circuit's display name, matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            IscasCircuit::C432 => "C432",
            IscasCircuit::C499 => "C499",
            IscasCircuit::C880 => "C880",
            IscasCircuit::C1355 => "C1355",
            IscasCircuit::C1908 => "C1908",
            IscasCircuit::C2670 => "C2670",
            IscasCircuit::C3540 => "C3540",
            IscasCircuit::C5315 => "C5315",
            IscasCircuit::C6288 => "C6288",
            IscasCircuit::C7552 => "C7552",
            IscasCircuit::S1488 => "S1488",
            IscasCircuit::S38417 => "S38417",
            IscasCircuit::S35932 => "S35932",
            IscasCircuit::S38584 => "S38584",
            IscasCircuit::S15850 => "S15850",
        }
    }

    /// The generator configuration standing in for this circuit.
    ///
    /// Sizes grow with the original circuit size; the number of embedded K5
    /// clusters and dense strips tracks the conflict counts the paper
    /// reports for the corresponding benchmark (small handfuls for the
    /// combinational circuits, tens for the large sequential ones), and the
    /// strips give the exact engines the same kind of hard dense regions
    /// that make the ILP baseline struggle on the real benchmarks.
    pub fn config(&self) -> RowLayoutConfig {
        let (rows, cells_per_row, k5_clusters, dense_strips, strip_length, seed) = match self {
            IscasCircuit::C432 => (6, 20, 2, 0, 8, 0x0432),
            IscasCircuit::C499 => (6, 22, 1, 0, 8, 0x0499),
            IscasCircuit::C880 => (7, 24, 1, 0, 8, 0x0880),
            IscasCircuit::C1355 => (7, 26, 0, 0, 8, 0x1355),
            IscasCircuit::C1908 => (8, 28, 2, 0, 8, 0x1908),
            IscasCircuit::C2670 => (9, 30, 0, 0, 8, 0x2670),
            IscasCircuit::C3540 => (10, 32, 1, 0, 8, 0x3540),
            IscasCircuit::C5315 => (11, 36, 1, 0, 8, 0x5315),
            IscasCircuit::C6288 => (12, 40, 7, 1, 8, 0x6288),
            IscasCircuit::C7552 => (13, 44, 2, 0, 8, 0x7552),
            IscasCircuit::S1488 => (8, 24, 0, 0, 8, 0x1488),
            // The large sequential circuits embed long dense strips: these
            // are the regions that push the exact (ILP) engine into hour-long
            // searches in the paper, while the SDP and linear engines stay
            // fast.
            IscasCircuit::S38417 => (26, 80, 6, 2, 16, 0x38417),
            IscasCircuit::S35932 => (34, 96, 22, 4, 16, 0x35932),
            IscasCircuit::S38584 => (32, 92, 20, 3, 16, 0x38584),
            IscasCircuit::S15850 => (30, 88, 21, 3, 16, 0x15850),
        };
        RowLayoutConfig {
            name: self.name().to_string(),
            rows,
            cells_per_row,
            contact_density: 0.68,
            wire_density: 0.6,
            k5_clusters,
            dense_strips,
            strip_length,
            seed,
        }
    }

    /// Generates the synthetic layout for this circuit.
    pub fn generate(&self, tech: &Technology) -> Layout {
        generate_row_layout(&self.config(), tech)
    }
}

impl fmt::Display for IscasCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_circuits_generate_nonempty_layouts() {
        let tech = Technology::nm20();
        for circuit in IscasCircuit::ALL {
            let layout = circuit.generate(&tech);
            assert!(!layout.is_empty(), "{circuit} generated an empty layout");
            assert_eq!(layout.name(), circuit.name());
        }
    }

    #[test]
    fn densest_circuits_are_a_subset_of_all() {
        for circuit in IscasCircuit::DENSEST {
            assert!(IscasCircuit::ALL.contains(&circuit));
        }
    }

    #[test]
    fn sequential_circuits_are_larger_than_combinational_ones() {
        let tech = Technology::nm20();
        let c432 = IscasCircuit::C432.generate(&tech).shape_count();
        let s38417 = IscasCircuit::S38417.generate(&tech).shape_count();
        let s35932 = IscasCircuit::S35932.generate(&tech).shape_count();
        assert!(s38417 > c432 * 10);
        assert!(s35932 > s38417);
    }

    #[test]
    fn generation_is_reproducible() {
        let tech = Technology::nm20();
        let a = IscasCircuit::C1908.generate(&tech);
        let b = IscasCircuit::C1908.generate(&tech);
        assert_eq!(a, b);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(IscasCircuit::S15850.to_string(), "S15850");
        assert_eq!(IscasCircuit::C432.name(), "C432");
    }

    #[test]
    fn cluster_counts_follow_paper_ordering() {
        // The large sequential circuits must embed many more native
        // conflicts than the combinational ones, mirroring Table 1.
        assert!(
            IscasCircuit::S35932.config().k5_clusters > IscasCircuit::C6288.config().k5_clusters
        );
        assert!(IscasCircuit::C6288.config().k5_clusters > IscasCircuit::C432.config().k5_clusters);
        assert_eq!(IscasCircuit::C1355.config().k5_clusters, 0);
    }
}
