//! Nanometre coordinate newtype.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A length or coordinate expressed in integer nanometres.
///
/// All layout geometry in this workspace uses integer nanometre units, which
/// matches how manufacturing grids are expressed in real design kits and
/// avoids floating-point comparisons in geometric predicates.
///
/// # Example
///
/// ```
/// use mpl_geometry::Nm;
///
/// let half_pitch = Nm(20);
/// let min_spacing = Nm(20);
/// let coloring_distance = (half_pitch + min_spacing) * 2;
/// assert_eq!(coloring_distance, Nm(80));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nm(pub i64);

impl Nm {
    /// The zero length.
    pub const ZERO: Nm = Nm(0);

    /// Returns the raw nanometre value.
    #[inline]
    pub fn value(self) -> i64 {
        self.0
    }

    /// Returns the absolute value of this length.
    #[inline]
    pub fn abs(self) -> Nm {
        Nm(self.0.abs())
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Nm) -> Nm {
        Nm(self.0.min(other.0))
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Nm) -> Nm {
        Nm(self.0.max(other.0))
    }

    /// Converts to `f64` nanometres, for distance computations that require
    /// Euclidean (non-integer) arithmetic.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64
    }

    /// Squares the length, returning a plain `i64` (nm²).
    #[inline]
    pub fn squared(self) -> i64 {
        self.0 * self.0
    }
}

impl fmt::Display for Nm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.0)
    }
}

impl From<i64> for Nm {
    fn from(v: i64) -> Self {
        Nm(v)
    }
}

impl From<Nm> for i64 {
    fn from(v: Nm) -> Self {
        v.0
    }
}

impl Add for Nm {
    type Output = Nm;
    fn add(self, rhs: Nm) -> Nm {
        Nm(self.0 + rhs.0)
    }
}

impl AddAssign for Nm {
    fn add_assign(&mut self, rhs: Nm) {
        self.0 += rhs.0;
    }
}

impl Sub for Nm {
    type Output = Nm;
    fn sub(self, rhs: Nm) -> Nm {
        Nm(self.0 - rhs.0)
    }
}

impl SubAssign for Nm {
    fn sub_assign(&mut self, rhs: Nm) {
        self.0 -= rhs.0;
    }
}

impl Neg for Nm {
    type Output = Nm;
    fn neg(self) -> Nm {
        Nm(-self.0)
    }
}

impl Mul<i64> for Nm {
    type Output = Nm;
    fn mul(self, rhs: i64) -> Nm {
        Nm(self.0 * rhs)
    }
}

impl Mul<Nm> for i64 {
    type Output = Nm;
    fn mul(self, rhs: Nm) -> Nm {
        Nm(self * rhs.0)
    }
}

impl Div<i64> for Nm {
    type Output = Nm;
    fn div(self, rhs: i64) -> Nm {
        Nm(self.0 / rhs)
    }
}

impl Sum for Nm {
    fn sum<I: Iterator<Item = Nm>>(iter: I) -> Nm {
        iter.fold(Nm::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_integers() {
        assert_eq!(Nm(20) + Nm(22), Nm(42));
        assert_eq!(Nm(20) - Nm(22), Nm(-2));
        assert_eq!(Nm(20) * 3, Nm(60));
        assert_eq!(3 * Nm(20), Nm(60));
        assert_eq!(Nm(60) / 3, Nm(20));
        assert_eq!(-Nm(5), Nm(-5));
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Nm(-3).abs(), Nm(3));
        assert_eq!(Nm(2).min(Nm(7)), Nm(2));
        assert_eq!(Nm(2).max(Nm(7)), Nm(7));
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(Nm(15).to_string(), "15nm");
        assert_eq!(Nm::from(9).value(), 9);
        assert_eq!(i64::from(Nm(9)), 9);
        assert_eq!(Nm(4).squared(), 16);
        assert_eq!(Nm(4).to_f64(), 4.0);
    }

    #[test]
    fn sum_of_lengths() {
        let total: Nm = [Nm(1), Nm(2), Nm(3)].into_iter().sum();
        assert_eq!(total, Nm(6));
    }

    #[test]
    fn assign_ops() {
        let mut x = Nm(10);
        x += Nm(5);
        assert_eq!(x, Nm(15));
        x -= Nm(20);
        assert_eq!(x, Nm(-5));
    }
}
