//! Rectilinear polygons represented as unions of rectangles.

use crate::{Nm, Rect};
use std::fmt;

/// A rectilinear layout feature, stored as a union of axis-aligned
/// rectangles.
///
/// Metal and contact features in the layouts this workspace targets are
/// rectilinear; representing them as rectangle unions keeps every geometric
/// predicate (distance, overlap, projection) a simple fold over rectangle
/// pairs while still allowing L/T/U-shaped wires.
///
/// The rectangle list is never empty and rectangles may touch or overlap;
/// the polygon is their set union.
///
/// # Example
///
/// ```
/// use mpl_geometry::{Nm, Polygon, Rect};
///
/// // An L-shaped wire built from two rectangles.
/// let ell = Polygon::from_rects(vec![
///     Rect::new(Nm(0), Nm(0), Nm(100), Nm(20)),
///     Rect::new(Nm(0), Nm(0), Nm(20), Nm(100)),
/// ])?;
/// assert_eq!(ell.bounding_box(), Rect::new(Nm(0), Nm(0), Nm(100), Nm(100)));
/// # Ok::<(), mpl_geometry::EmptyPolygonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    rects: Vec<Rect>,
}

/// Error returned when constructing a [`Polygon`] from an empty rectangle
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyPolygonError;

impl fmt::Display for EmptyPolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "polygon requires at least one rectangle")
    }
}

impl std::error::Error for EmptyPolygonError {}

impl Polygon {
    /// Creates a polygon from a single rectangle.
    pub fn rect(r: Rect) -> Self {
        Polygon { rects: vec![r] }
    }

    /// Creates a polygon from a non-empty union of rectangles.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyPolygonError`] if `rects` is empty.
    pub fn from_rects(rects: Vec<Rect>) -> Result<Self, EmptyPolygonError> {
        if rects.is_empty() {
            Err(EmptyPolygonError)
        } else {
            Ok(Polygon { rects })
        }
    }

    /// The component rectangles of this polygon.
    #[inline]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of component rectangles.
    #[inline]
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }

    /// The bounding box of the polygon.
    pub fn bounding_box(&self) -> Rect {
        self.rects
            .iter()
            .skip(1)
            .fold(self.rects[0], |acc, r| acc.union_bbox(r))
    }

    /// An upper bound on the polygon area (sum of rectangle areas; exact when
    /// the component rectangles are disjoint, as produced by the layout
    /// generators in this workspace).
    pub fn area_upper_bound(&self) -> i64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Squared Euclidean distance between the closest points of two polygons
    /// (zero when they touch or overlap).
    pub fn distance_squared(&self, other: &Polygon) -> i64 {
        let mut best = i64::MAX;
        for a in &self.rects {
            for b in &other.rects {
                best = best.min(a.distance_squared(b));
                if best == 0 {
                    return 0;
                }
            }
        }
        best
    }

    /// Euclidean distance between the closest points of two polygons.
    pub fn distance(&self, other: &Polygon) -> f64 {
        (self.distance_squared(other) as f64).sqrt()
    }

    /// Returns `true` if the Euclidean distance between the polygons is
    /// strictly less than `limit` — the conflict predicate.
    pub fn within_distance(&self, other: &Polygon, limit: Nm) -> bool {
        // Cheap bounding-box rejection before the pairwise rectangle scan.
        if !self
            .bounding_box()
            .within_distance(&other.bounding_box(), limit)
        {
            return false;
        }
        self.distance_squared(other) < limit.squared()
    }

    /// Returns `true` if the Euclidean distance lies in `[lo, hi)` — the
    /// color-friendly predicate (Definition 2 of the paper).
    pub fn within_distance_band(&self, other: &Polygon, lo: Nm, hi: Nm) -> bool {
        let d2 = self.distance_squared(other);
        d2 >= lo.squared() && d2 < hi.squared()
    }

    /// Returns `true` if the polygons touch or overlap.
    pub fn touches(&self, other: &Polygon) -> bool {
        self.distance_squared(other) == 0
    }

    /// The canonical disjoint decomposition of this polygon's region (see
    /// [`crate::union_rects`]): identical for any fragmentation of the same
    /// covered point set, which makes polygons comparable across I/O round
    /// trips that re-slice geometry.
    pub fn canonical_rects(&self) -> Vec<Rect> {
        crate::union_rects(&self.rects)
    }

    /// Translates the whole polygon by `(dx, dy)`.
    pub fn translated(&self, dx: Nm, dy: Nm) -> Polygon {
        Polygon {
            rects: self.rects.iter().map(|r| r.translated(dx, dy)).collect(),
        }
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        Polygon::rect(r)
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon{{")?;
        for (i, r) in self.rects.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64, c: i64, d: i64) -> Rect {
        Rect::new(Nm(a), Nm(b), Nm(c), Nm(d))
    }

    #[test]
    fn empty_polygon_is_rejected() {
        assert_eq!(Polygon::from_rects(vec![]), Err(EmptyPolygonError));
        assert_eq!(
            EmptyPolygonError.to_string(),
            "polygon requires at least one rectangle"
        );
    }

    #[test]
    fn bounding_box_covers_all_rects() {
        let p = Polygon::from_rects(vec![r(0, 0, 10, 10), r(50, -5, 60, 3)]).unwrap();
        assert_eq!(p.bounding_box(), r(0, -5, 60, 10));
        assert_eq!(p.rect_count(), 2);
    }

    #[test]
    fn single_rect_conversion() {
        let p: Polygon = r(0, 0, 5, 5).into();
        assert_eq!(p.rects(), &[r(0, 0, 5, 5)]);
        assert_eq!(p.area_upper_bound(), 25);
    }

    #[test]
    fn distance_between_l_shapes_uses_closest_rects() {
        // L-shape whose vertical arm reaches close to the other polygon even
        // though the horizontal arms are far apart.
        let a = Polygon::from_rects(vec![r(0, 0, 100, 20), r(80, 0, 100, 100)]).unwrap();
        let b = Polygon::rect(r(130, 80, 150, 100));
        assert_eq!(a.distance(&b), 30.0);
        assert!(a.within_distance(&b, Nm(31)));
        assert!(!a.within_distance(&b, Nm(30)));
    }

    #[test]
    fn touching_polygons_have_zero_distance() {
        let a = Polygon::rect(r(0, 0, 10, 10));
        let b = Polygon::rect(r(10, 10, 20, 20));
        assert!(a.touches(&b));
        assert_eq!(a.distance_squared(&b), 0);
    }

    #[test]
    fn distance_band() {
        let a = Polygon::rect(r(0, 0, 20, 20));
        let b = Polygon::rect(r(110, 0, 130, 20));
        assert!(a.within_distance_band(&b, Nm(80), Nm(100)));
        assert!(!a.within_distance_band(&b, Nm(95), Nm(100)));
    }

    #[test]
    fn translation_moves_every_rect() {
        let p = Polygon::from_rects(vec![r(0, 0, 10, 10), r(20, 0, 30, 10)]).unwrap();
        let q = p.translated(Nm(5), Nm(-5));
        assert_eq!(q.rects(), &[r(5, -5, 15, 5), r(25, -5, 35, 5)]);
    }

    #[test]
    fn display_formats_rects() {
        let p = Polygon::rect(r(0, 0, 1, 1));
        assert_eq!(p.to_string(), "Polygon{[0 0 1 1]}");
    }
}
