//! Geometry substrate for multiple-patterning layout decomposition.
//!
//! Layout decomposition for quadruple patterning (and general K-patterning)
//! operates on polygonal layout features measured in nanometres.  This crate
//! provides the small, self-contained geometric toolkit the rest of the
//! workspace builds on:
//!
//! * [`Nm`] — an integer nanometre coordinate newtype, so that distances and
//!   widths can never be confused with unit-less numbers.
//! * [`Point`] and [`Rect`] — axis-aligned primitives with the distance and
//!   overlap predicates needed for conflict-edge construction.
//! * [`Polygon`] — a rectilinear shape represented as a union of rectangles,
//!   which is how Metal1/contact features are modelled throughout the
//!   workspace.
//! * [`Interval`] — 1-D interval arithmetic used for projection/overlap tests
//!   when generating stitch candidates.
//! * [`GridIndex`] — a uniform-grid spatial index answering "which shapes are
//!   within distance `d` of this shape" queries in roughly constant time per
//!   neighbour, which keeps decomposition-graph construction linear in the
//!   number of features.
//!
//! # Example
//!
//! ```
//! use mpl_geometry::{Nm, Rect};
//!
//! let a = Rect::new(Nm(0), Nm(0), Nm(40), Nm(100));
//! let b = Rect::new(Nm(100), Nm(0), Nm(140), Nm(100));
//! // Features 60 nm apart conflict under a 80 nm coloring distance.
//! assert_eq!(a.distance(&b), 60.0);
//! assert!(a.within_distance(&b, Nm(80)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod interval;
mod point;
mod polygon;
mod rect;
mod spatial;
mod union;

pub use coord::Nm;
pub use interval::Interval;
pub use point::Point;
pub use polygon::{EmptyPolygonError, Polygon};
pub use rect::Rect;
pub use spatial::GridIndex;
pub use union::union_rects;
