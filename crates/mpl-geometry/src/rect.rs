//! Axis-aligned rectangles.

use crate::{Interval, Nm, Point};
use std::fmt;

/// An axis-aligned rectangle with integer nanometre corners.
///
/// Rectangles are half-open in neither direction: they are treated as closed
/// regions `[xlo, xhi] × [ylo, yhi]`.  Zero-width or zero-height rectangles
/// are permitted (they behave as segments) but construction panics on
/// negative extents.
///
/// # Example
///
/// ```
/// use mpl_geometry::{Nm, Rect};
///
/// let wire = Rect::new(Nm(0), Nm(0), Nm(200), Nm(20));
/// assert_eq!(wire.width(), Nm(200));
/// assert_eq!(wire.height(), Nm(20));
/// assert_eq!(wire.area(), 4000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rect {
    xlo: Nm,
    ylo: Nm,
    xhi: Nm,
    yhi: Nm,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `xhi < xlo` or `yhi < ylo`.
    pub fn new(xlo: Nm, ylo: Nm, xhi: Nm, yhi: Nm) -> Self {
        assert!(
            xhi >= xlo && yhi >= ylo,
            "rectangle extents must be non-negative: ({xlo}, {ylo}) .. ({xhi}, {yhi})"
        );
        Rect { xlo, ylo, xhi, yhi }
    }

    /// Creates a rectangle from two opposite corner points (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Creates a rectangle from its lower-left corner plus a width and height.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn with_size(origin: Point, width: Nm, height: Nm) -> Self {
        Rect::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// Left edge coordinate.
    #[inline]
    pub fn xlo(&self) -> Nm {
        self.xlo
    }

    /// Bottom edge coordinate.
    #[inline]
    pub fn ylo(&self) -> Nm {
        self.ylo
    }

    /// Right edge coordinate.
    #[inline]
    pub fn xhi(&self) -> Nm {
        self.xhi
    }

    /// Top edge coordinate.
    #[inline]
    pub fn yhi(&self) -> Nm {
        self.yhi
    }

    /// Horizontal extent.
    #[inline]
    pub fn width(&self) -> Nm {
        self.xhi - self.xlo
    }

    /// Vertical extent.
    #[inline]
    pub fn height(&self) -> Nm {
        self.yhi - self.ylo
    }

    /// Area in nm².
    #[inline]
    pub fn area(&self) -> i64 {
        self.width().value() * self.height().value()
    }

    /// The centre point (rounded down to the nanometre grid).
    pub fn center(&self) -> Point {
        Point::new(
            Nm((self.xlo.value() + self.xhi.value()) / 2),
            Nm((self.ylo.value() + self.yhi.value()) / 2),
        )
    }

    /// The lower-left corner.
    pub fn lower_left(&self) -> Point {
        Point::new(self.xlo, self.ylo)
    }

    /// The upper-right corner.
    pub fn upper_right(&self) -> Point {
        Point::new(self.xhi, self.yhi)
    }

    /// The projection of the rectangle onto the x axis.
    pub fn x_interval(&self) -> Interval {
        Interval::new(self.xlo, self.xhi)
    }

    /// The projection of the rectangle onto the y axis.
    pub fn y_interval(&self) -> Interval {
        Interval::new(self.ylo, self.yhi)
    }

    /// Returns `true` if the closed rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xlo <= other.xhi
            && other.xlo <= self.xhi
            && self.ylo <= other.yhi
            && other.ylo <= self.yhi
    }

    /// Returns the intersection rectangle, if the two rectangles overlap.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if self.intersects(other) {
            Some(Rect::new(
                self.xlo.max(other.xlo),
                self.ylo.max(other.ylo),
                self.xhi.min(other.xhi),
                self.yhi.min(other.yhi),
            ))
        } else {
            None
        }
    }

    /// Returns `true` if `p` lies inside the closed rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        self.xlo <= p.x && p.x <= self.xhi && self.ylo <= p.y && p.y <= self.yhi
    }

    /// Returns `true` if `other` lies entirely within `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.xlo <= other.xlo
            && self.ylo <= other.ylo
            && other.xhi <= self.xhi
            && other.yhi <= self.yhi
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect::new(
            self.xlo.min(other.xlo),
            self.ylo.min(other.ylo),
            self.xhi.max(other.xhi),
            self.yhi.max(other.yhi),
        )
    }

    /// Expands the rectangle by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would produce negative extents.
    pub fn expanded(&self, margin: Nm) -> Rect {
        Rect::new(
            self.xlo - margin,
            self.ylo - margin,
            self.xhi + margin,
            self.yhi + margin,
        )
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub fn translated(&self, dx: Nm, dy: Nm) -> Rect {
        Rect::new(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)
    }

    /// The horizontal gap between the x-projections (zero if they overlap).
    pub fn x_gap(&self, other: &Rect) -> Nm {
        self.x_interval().gap(&other.x_interval())
    }

    /// The vertical gap between the y-projections (zero if they overlap).
    pub fn y_gap(&self, other: &Rect) -> Nm {
        self.y_interval().gap(&other.y_interval())
    }

    /// Squared Euclidean distance between the two closed rectangles (0 if they
    /// touch or overlap), using exact integer arithmetic.
    pub fn distance_squared(&self, other: &Rect) -> i64 {
        let dx = self.x_gap(other);
        let dy = self.y_gap(other);
        dx.squared() + dy.squared()
    }

    /// Euclidean distance between the two closed rectangles, in nanometres.
    pub fn distance(&self, other: &Rect) -> f64 {
        (self.distance_squared(other) as f64).sqrt()
    }

    /// Returns `true` if the Euclidean distance between the rectangles is
    /// *strictly less than* `limit`.
    ///
    /// This is the conflict predicate of the decomposition graph: two features
    /// closer than the minimum coloring distance `min_s` must receive
    /// different masks.
    pub fn within_distance(&self, other: &Rect, limit: Nm) -> bool {
        self.distance_squared(other) < limit.squared()
    }

    /// Returns `true` if the Euclidean distance is within `[lo, hi)`.
    ///
    /// Used for *color-friendly* neighbour detection, where the paper
    /// considers shapes whose distance is larger than `min_s` but smaller than
    /// `min_s + half_pitch`.
    pub fn within_distance_band(&self, other: &Rect, lo: Nm, hi: Nm) -> bool {
        let d2 = self.distance_squared(other);
        d2 >= lo.squared() && d2 < hi.squared()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {} {}]",
            self.xlo.value(),
            self.ylo.value(),
            self.xhi.value(),
            self.yhi.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64, c: i64, d: i64) -> Rect {
        Rect::new(Nm(a), Nm(b), Nm(c), Nm(d))
    }

    #[test]
    fn basic_accessors() {
        let rect = r(0, 10, 40, 30);
        assert_eq!(rect.width(), Nm(40));
        assert_eq!(rect.height(), Nm(20));
        assert_eq!(rect.area(), 800);
        assert_eq!(rect.center(), Point::from((20, 20)));
        assert_eq!(rect.lower_left(), Point::from((0, 10)));
        assert_eq!(rect.upper_right(), Point::from((40, 30)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_extent_panics() {
        let _ = r(10, 0, 0, 10);
    }

    #[test]
    fn from_corners_normalises() {
        let rect = Rect::from_corners(Point::from((10, 20)), Point::from((0, 5)));
        assert_eq!(rect, r(0, 5, 10, 20));
    }

    #[test]
    fn with_size() {
        let rect = Rect::with_size(Point::from((5, 5)), Nm(10), Nm(20));
        assert_eq!(rect, r(5, 5, 15, 25));
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0, 0, 10, 10);
        let b = r(5, 5, 20, 20);
        let c = r(11, 11, 12, 12);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(5, 5, 10, 10)));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.union_bbox(&c), r(0, 0, 12, 12));
    }

    #[test]
    fn touching_rectangles_intersect() {
        let a = r(0, 0, 10, 10);
        let b = r(10, 0, 20, 10);
        assert!(a.intersects(&b));
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn containment() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains_point(Point::from((10, 10))));
        assert!(!a.contains_point(Point::from((11, 10))));
        assert!(a.contains_rect(&r(1, 1, 9, 9)));
        assert!(!a.contains_rect(&r(1, 1, 11, 9)));
    }

    #[test]
    fn distances_horizontal_vertical_diagonal() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.distance(&r(30, 0, 40, 10)), 20.0);
        assert_eq!(a.distance(&r(0, 25, 10, 30)), 15.0);
        // Diagonal: gap (30, 40) => 50
        assert_eq!(a.distance(&r(40, 50, 60, 70)), 50.0);
        assert_eq!(a.distance_squared(&r(40, 50, 60, 70)), 2500);
    }

    #[test]
    fn within_distance_is_strict() {
        let a = r(0, 0, 20, 20);
        let b = r(100, 0, 120, 20); // 80 apart
        assert!(!a.within_distance(&b, Nm(80)));
        assert!(a.within_distance(&b, Nm(81)));
    }

    #[test]
    fn distance_band_for_color_friendly() {
        let a = r(0, 0, 20, 20);
        let b = r(110, 0, 130, 20); // 90 apart
        assert!(a.within_distance_band(&b, Nm(80), Nm(100)));
        assert!(!a.within_distance_band(&b, Nm(80), Nm(90)));
        assert!(!a.within_distance_band(&b, Nm(91), Nm(120)));
    }

    #[test]
    fn expand_and_translate() {
        let a = r(10, 10, 20, 20);
        assert_eq!(a.expanded(Nm(5)), r(5, 5, 25, 25));
        assert_eq!(a.translated(Nm(-10), Nm(100)), r(0, 110, 10, 120));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = r(0, 0, 10, 10);
        let b = r(37, 91, 40, 95);
        assert_eq!(a.distance_squared(&b), b.distance_squared(&a));
    }
}
