//! Uniform-grid spatial index for neighbour queries.

use crate::{Nm, Rect};
use std::collections::HashMap;

/// A uniform-grid spatial index mapping rectangles to user-supplied ids.
///
/// Decomposition-graph construction needs, for every feature, the set of
/// features within the minimum coloring distance `min_s` (conflict
/// neighbours) and within `min_s + half_pitch` (color-friendly neighbours).
/// A uniform grid with a cell size on the order of the query distance answers
/// those queries in time proportional to the number of true neighbours, which
/// keeps graph construction linear in practice for realistic layouts.
///
/// # Example
///
/// ```
/// use mpl_geometry::{GridIndex, Nm, Rect};
///
/// let mut index = GridIndex::new(Nm(100));
/// index.insert(0, Rect::new(Nm(0), Nm(0), Nm(20), Nm(20)));
/// index.insert(1, Rect::new(Nm(60), Nm(0), Nm(80), Nm(20)));
/// index.insert(2, Rect::new(Nm(500), Nm(500), Nm(520), Nm(520)));
///
/// let query = Rect::new(Nm(0), Nm(0), Nm(20), Nm(20));
/// let mut near = index.query_within(&query, Nm(80));
/// near.sort();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: i64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    entries: Vec<(usize, Rect)>,
}

impl GridIndex {
    /// Creates an empty index with the given grid cell size.
    ///
    /// A good cell size is the largest distance that will be queried (e.g.
    /// `min_s + half_pitch`); smaller cells work but waste memory, larger
    /// cells work but scan more candidates.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive.
    pub fn new(cell_size: Nm) -> Self {
        assert!(
            cell_size > Nm::ZERO,
            "grid cell size must be positive, got {cell_size}"
        );
        GridIndex {
            cell: cell_size.value(),
            cells: HashMap::new(),
            entries: Vec::new(),
        }
    }

    /// Number of rectangles stored in the index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the index holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn cell_range(&self, rect: &Rect, margin: Nm) -> (i64, i64, i64, i64) {
        let r = rect.expanded(margin);
        (
            r.xlo().value().div_euclid(self.cell),
            r.ylo().value().div_euclid(self.cell),
            r.xhi().value().div_euclid(self.cell),
            r.yhi().value().div_euclid(self.cell),
        )
    }

    /// Inserts a rectangle with an associated id.
    ///
    /// Ids are arbitrary; the same id may be inserted several times (e.g. one
    /// entry per component rectangle of a polygon) and will then be reported
    /// at most once per query.
    pub fn insert(&mut self, id: usize, rect: Rect) {
        let slot = self.entries.len();
        self.entries.push((id, rect));
        let (cx0, cy0, cx1, cy1) = self.cell_range(&rect, Nm::ZERO);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                self.cells.entry((cx, cy)).or_default().push(slot);
            }
        }
    }

    /// Returns the ids of all rectangles whose Euclidean distance to `rect`
    /// is strictly less than `limit`, deduplicated, in unspecified order.
    pub fn query_within(&self, rect: &Rect, limit: Nm) -> Vec<usize> {
        let mut result: Vec<usize> = Vec::new();
        self.query_within_into(rect, limit, &mut result);
        result
    }

    /// Buffer-reusing variant of [`GridIndex::query_within`]: clears
    /// `result` and fills it with the matching ids.
    ///
    /// Graph construction issues one query per feature and per stitch
    /// segment; reusing one buffer per pass removes an allocation from each
    /// of those queries.
    pub fn query_within_into(&self, rect: &Rect, limit: Nm, result: &mut Vec<usize>) {
        result.clear();
        let (cx0, cy0, cx1, cy1) = self.cell_range(rect, limit);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                let Some(slots) = self.cells.get(&(cx, cy)) else {
                    continue;
                };
                for &slot in slots {
                    let (id, candidate) = self.entries[slot];
                    // `result` doubles as the dedup set: ids enter it as
                    // soon as they match, so membership means "seen".
                    if result.contains(&id) {
                        continue;
                    }
                    if rect.within_distance(&candidate, limit) {
                        result.push(id);
                    }
                }
            }
        }
    }

    /// Returns `(id, distance_squared)` pairs for all rectangles whose
    /// distance to `rect` is strictly less than `limit`.
    ///
    /// When the same id was inserted with several rectangles, the minimum
    /// distance over its rectangles is reported.
    pub fn query_within_with_distance(&self, rect: &Rect, limit: Nm) -> Vec<(usize, i64)> {
        let mut best: HashMap<usize, i64> = HashMap::new();
        let (cx0, cy0, cx1, cy1) = self.cell_range(rect, limit);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                let Some(slots) = self.cells.get(&(cx, cy)) else {
                    continue;
                };
                for &slot in slots {
                    let (id, candidate) = self.entries[slot];
                    let d2 = rect.distance_squared(&candidate);
                    if d2 < limit.squared() {
                        best.entry(id)
                            .and_modify(|cur| *cur = (*cur).min(d2))
                            .or_insert(d2);
                    }
                }
            }
        }
        best.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64, c: i64, d: i64) -> Rect {
        Rect::new(Nm(a), Nm(b), Nm(c), Nm(d))
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::new(Nm(0));
    }

    #[test]
    fn empty_index_reports_nothing() {
        let index = GridIndex::new(Nm(50));
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert!(index.query_within(&r(0, 0, 10, 10), Nm(100)).is_empty());
    }

    #[test]
    fn finds_only_close_neighbours() {
        let mut index = GridIndex::new(Nm(100));
        index.insert(0, r(0, 0, 20, 20));
        index.insert(1, r(60, 0, 80, 20)); // 40 away from id 0
        index.insert(2, r(300, 300, 320, 320)); // far away
        let mut near = index.query_within(&r(0, 0, 20, 20), Nm(80));
        near.sort();
        assert_eq!(near, vec![0, 1]);
    }

    #[test]
    fn query_across_cell_boundaries() {
        let mut index = GridIndex::new(Nm(10));
        // Spread rects across many cells; the query margin must reach them.
        index.insert(7, r(95, 0, 105, 10));
        let near = index.query_within(&r(0, 0, 10, 10), Nm(90));
        assert_eq!(near, vec![7]);
        let none = index.query_within(&r(0, 0, 10, 10), Nm(85));
        assert!(none.is_empty());
    }

    #[test]
    fn duplicate_ids_are_reported_once() {
        let mut index = GridIndex::new(Nm(50));
        index.insert(3, r(0, 0, 10, 10));
        index.insert(3, r(5, 5, 15, 15));
        let near = index.query_within(&r(0, 0, 1, 1), Nm(100));
        assert_eq!(near, vec![3]);
    }

    #[test]
    fn distances_report_minimum_over_duplicate_ids() {
        let mut index = GridIndex::new(Nm(50));
        index.insert(3, r(100, 0, 110, 10)); // 90 away from query
        index.insert(3, r(40, 0, 50, 10)); // 30 away from query
        let query = r(0, 0, 10, 10);
        let result = index.query_within_with_distance(&query, Nm(200));
        assert_eq!(result, vec![(3, 900)]);
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let mut index = GridIndex::new(Nm(64));
        index.insert(0, r(-200, -200, -180, -180));
        index.insert(1, r(-100, -100, -80, -80));
        let near = index.query_within(&r(-210, -210, -190, -190), Nm(40));
        assert_eq!(near, vec![0]);
    }

    #[test]
    fn query_window_on_cell_boundaries_sees_both_sides() {
        // A query window whose every edge lies exactly on a grid-cell
        // boundary must still reach entries in the cells on either side —
        // the windowed tiling driver issues exactly these queries when tile
        // windows align with the index grid.
        let mut index = GridIndex::new(Nm(100));
        index.insert(0, r(0, 0, 100, 100)); // touches the window's left edge
        index.insert(1, r(100, 0, 200, 100)); // coincides with the window
        index.insert(2, r(200, 0, 300, 100)); // touches the right edge
        index.insert(3, r(301, 0, 320, 100)); // 101 past the window
        let window = r(100, 0, 200, 100);
        let mut near = index.query_within(&window, Nm(1));
        near.sort();
        assert_eq!(near, vec![0, 1, 2]);
        let mut wide = index.query_within(&window, Nm(102));
        wide.sort();
        assert_eq!(wide, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_area_windows_behave_as_points() {
        let mut index = GridIndex::new(Nm(100));
        index.insert(0, r(50, 50, 50, 50)); // zero-area entry
        index.insert(1, r(80, 50, 90, 60));
        // A zero-area query finds the coincident point entry and respects
        // the strict distance bound towards the real rectangle (gap 30).
        let point = r(50, 50, 50, 50);
        assert_eq!(index.query_within(&point, Nm(1)), vec![0]);
        let mut near = index.query_within(&point, Nm(31));
        near.sort();
        assert_eq!(near, vec![0, 1]);
        assert_eq!(index.query_within(&r(20, 50, 20, 50), Nm(30)), vec![]);
        // A zero-area window sitting exactly on a cell corner still works.
        let corner = r(100, 100, 100, 100);
        let mut from_corner = index.query_within(&corner, Nm(80));
        from_corner.sort();
        assert_eq!(from_corner, vec![0, 1]);
    }

    #[test]
    fn shapes_exactly_at_the_query_radius_are_excluded() {
        // `query_within` is strictly-less-than, matching the conflict
        // predicate `distance < min_s`: a shape at exactly the coloring
        // distance is legal and must not be reported.
        let mut index = GridIndex::new(Nm(100));
        index.insert(0, r(100, 0, 120, 20)); // axis gap exactly 80
        index.insert(1, r(80, 80, 100, 100)); // corner gap √(60²+60²) ≈ 84.85
        let query = r(0, 0, 20, 20);
        assert_eq!(index.query_within(&query, Nm(80)), vec![]);
        assert_eq!(index.query_within(&query, Nm(81)), vec![0]);
        // The diagonal neighbour needs the Euclidean corner distance, not
        // the per-axis gap (60): 84² < 7200 ≤ 85².
        assert_eq!(index.query_within(&query, Nm(84)), vec![0]);
        let mut near = index.query_within(&query, Nm(85));
        near.sort();
        assert_eq!(near, vec![0, 1]);
        let mut with_distance = index.query_within_with_distance(&query, Nm(85));
        with_distance.sort();
        assert_eq!(with_distance, vec![(0, 6400), (1, 7200)]);
    }

    #[test]
    fn brute_force_agreement_on_a_grid_of_rects() {
        // Cross-check the index against a brute-force scan.
        let mut index = GridIndex::new(Nm(70));
        let mut rects = Vec::new();
        let mut id = 0usize;
        for i in 0..12 {
            for j in 0..9 {
                let rect = r(i * 55, j * 85, i * 55 + 20, j * 85 + 30);
                rects.push((id, rect));
                index.insert(id, rect);
                id += 1;
            }
        }
        let query = r(160, 250, 180, 280);
        for limit in [Nm(1), Nm(40), Nm(90), Nm(200)] {
            let mut expected: Vec<usize> = rects
                .iter()
                .filter(|(_, rc)| query.within_distance(rc, limit))
                .map(|(i, _)| *i)
                .collect();
            expected.sort();
            let mut got = index.query_within(&query, limit);
            got.sort();
            assert_eq!(got, expected, "limit {limit}");
        }
    }
}
