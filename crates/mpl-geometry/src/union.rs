//! Canonical rectangle unions.
//!
//! Polygons in this workspace are stored as rectangle lists that may touch
//! or overlap, and different pipelines fragment the same region differently
//! (e.g. a GDSII round trip re-slices polygons into horizontal slabs). This
//! module computes a *canonical* disjoint decomposition of a rectangle
//! union, so two representations of the same region can be compared — and
//! redundant overlap can be squeezed out — independently of how they were
//! fragmented.

use crate::{Nm, Rect};

/// Computes the canonical disjoint decomposition of a rectangle union.
///
/// The result covers exactly the union of `rects`, contains no overlapping
/// or zero-area rectangles, and depends only on the covered point set (not
/// on the input fragmentation). Rectangles are produced in slab order
/// (bottom to top, left to right) with vertically adjacent same-span
/// rectangles merged.
pub fn union_rects(rects: &[Rect]) -> Vec<Rect> {
    let mut nonempty: Vec<&Rect> = rects
        .iter()
        .filter(|r| r.xlo() < r.xhi() && r.ylo() < r.yhi())
        .collect();
    let mut ys: Vec<i64> = Vec::with_capacity(nonempty.len() * 2);
    for rect in &nonempty {
        ys.push(rect.ylo().value());
        ys.push(rect.yhi().value());
    }
    ys.sort_unstable();
    ys.dedup();
    // Sweep from the bottom: rectangles enter the active set when their
    // bottom edge is reached and are retired once their top edge passes,
    // so each slab only inspects rectangles that actually span it.
    nonempty.sort_unstable_by_key(|r| r.ylo().value());
    let mut next_entering = 0usize;
    let mut active: Vec<&Rect> = Vec::new();

    let mut result: Vec<Rect> = Vec::new();
    // Indices into `result` of rectangles whose top edge is the previous
    // slab boundary: the only candidates for vertical extension. Searching
    // just these keeps the merge linear in the slab width instead of
    // quadratic in the total output.
    let mut previous_slab: Vec<usize> = Vec::new();
    for slab in ys.windows(2) {
        let (ylo, yhi) = (slab[0], slab[1]);
        while next_entering < nonempty.len() && nonempty[next_entering].ylo().value() <= ylo {
            active.push(nonempty[next_entering]);
            next_entering += 1;
        }
        active.retain(|r| r.yhi().value() >= yhi);
        // X intervals of every input rectangle spanning this slab.
        let mut intervals: Vec<(i64, i64)> = active
            .iter()
            .map(|r| (r.xlo().value(), r.xhi().value()))
            .collect();
        intervals.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::with_capacity(intervals.len());
        for (lo, hi) in intervals {
            match merged.last_mut() {
                Some((_, last_hi)) if lo <= *last_hi => *last_hi = (*last_hi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        let mut current_slab: Vec<usize> = Vec::with_capacity(merged.len());
        for (xlo, xhi) in merged {
            // Extend the rectangle from the previous slab when the x span
            // matches exactly and the slabs are contiguous.
            let extendable = previous_slab.iter().copied().find(|&i| {
                result[i].xlo().value() == xlo
                    && result[i].xhi().value() == xhi
                    && result[i].yhi().value() == ylo
            });
            match extendable {
                Some(i) => {
                    result[i] = Rect::new(result[i].xlo(), result[i].ylo(), Nm(xhi), Nm(yhi));
                    current_slab.push(i);
                }
                None => {
                    current_slab.push(result.len());
                    result.push(Rect::new(Nm(xlo), Nm(ylo), Nm(xhi), Nm(yhi)));
                }
            }
        }
        previous_slab = current_slab;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64, c: i64, d: i64) -> Rect {
        Rect::new(Nm(a), Nm(b), Nm(c), Nm(d))
    }

    #[test]
    fn single_rect_is_its_own_canonical_form() {
        assert_eq!(union_rects(&[r(0, 0, 10, 20)]), vec![r(0, 0, 10, 20)]);
    }

    #[test]
    fn overlapping_rects_are_deduplicated() {
        let canonical = union_rects(&[r(0, 0, 10, 10), r(0, 0, 10, 10), r(5, 0, 15, 10)]);
        assert_eq!(canonical, vec![r(0, 0, 15, 10)]);
    }

    #[test]
    fn fragmentation_does_not_change_the_canonical_form() {
        // The same L-shape, fragmented two different ways.
        let a = union_rects(&[r(0, 0, 100, 20), r(0, 0, 20, 100)]);
        let b = union_rects(&[r(0, 0, 100, 20), r(0, 20, 20, 100)]);
        assert_eq!(a, b);
        let area: i64 = a.iter().map(Rect::area).sum();
        assert_eq!(area, 100 * 20 + 20 * 80);
    }

    #[test]
    fn disjoint_rects_stay_disjoint() {
        let canonical = union_rects(&[r(0, 0, 10, 10), r(50, 0, 60, 10)]);
        assert_eq!(canonical, vec![r(0, 0, 10, 10), r(50, 0, 60, 10)]);
    }

    #[test]
    fn zero_area_rects_are_dropped() {
        assert!(union_rects(&[r(5, 5, 5, 50)]).is_empty());
        assert!(union_rects(&[]).is_empty());
    }

    #[test]
    fn vertical_merge_restores_tall_rects() {
        let canonical = union_rects(&[r(0, 0, 10, 10), r(0, 10, 10, 30), r(0, 30, 10, 35)]);
        assert_eq!(canonical, vec![r(0, 0, 10, 35)]);
    }
}
