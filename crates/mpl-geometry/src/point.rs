//! Two-dimensional points in nanometre units.

use crate::Nm;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the layout plane, in nanometres.
///
/// # Example
///
/// ```
/// use mpl_geometry::{Nm, Point};
///
/// let origin = Point::new(Nm(0), Nm(0));
/// let p = Point::new(Nm(30), Nm(40));
/// assert_eq!(origin.distance(p), 50.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Nm,
    /// Vertical coordinate.
    pub y: Nm,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub fn new(x: Nm, y: Nm) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: Nm(0), y: Nm(0) };

    /// Euclidean distance to `other`, in nanometres.
    pub fn distance(self, other: Point) -> f64 {
        let dx = (self.x - other.x).to_f64();
        let dy = (self.y - other.y).to_f64();
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance to `other`, in nm², using exact integer
    /// arithmetic.  Prefer this over [`Point::distance`] for comparisons.
    pub fn distance_squared(self, other: Point) -> i64 {
        (self.x - other.x).squared() + (self.y - other.y).squared()
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan_distance(self, other: Point) -> Nm {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(Nm(x), Nm(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::from((0, 0));
        let b = Point::from((3, 4));
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25);
        assert_eq!(a.manhattan_distance(b), Nm(7));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::from((-5, 12));
        let b = Point::from((7, -1));
        assert_eq!(a.distance_squared(b), b.distance_squared(a));
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
    }

    #[test]
    fn add_sub() {
        let a = Point::from((1, 2));
        let b = Point::from((10, 20));
        assert_eq!(a + b, Point::from((11, 22)));
        assert_eq!(b - a, Point::from((9, 18)));
    }

    #[test]
    fn display() {
        assert_eq!(Point::from((1, 2)).to_string(), "(1nm, 2nm)");
    }
}
