//! 1-D closed intervals used for projection/overlap reasoning.

use crate::Nm;
use std::fmt;

/// A closed 1-D interval `[lo, hi]` in nanometres.
///
/// Intervals are used when generating stitch candidates: the projection of a
/// shape's conflict neighbours onto the shape's long axis is a set of
/// intervals, and legal stitch positions are the gaps between those
/// projections.
///
/// # Example
///
/// ```
/// use mpl_geometry::{Interval, Nm};
///
/// let a = Interval::new(Nm(0), Nm(50));
/// let b = Interval::new(Nm(30), Nm(80));
/// assert_eq!(a.overlap(&b), Nm(20));
/// assert!(a.intersects(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    lo: Nm,
    hi: Nm,
}

impl Interval {
    /// Creates an interval from its two endpoints (in either order).
    pub fn new(a: Nm, b: Nm) -> Self {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(&self) -> Nm {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(&self) -> Nm {
        self.hi
    }

    /// Length of the interval.
    #[inline]
    pub fn length(&self) -> Nm {
        self.hi - self.lo
    }

    /// Returns `true` if the two intervals share at least one point.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns the length of the overlap, or zero if they are disjoint.
    pub fn overlap(&self, other: &Interval) -> Nm {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (hi - lo).max(Nm::ZERO)
    }

    /// Returns `true` if `x` lies inside the closed interval.
    pub fn contains(&self, x: Nm) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Returns `true` if `other` lies entirely within `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The gap between two disjoint intervals, or zero if they intersect.
    pub fn gap(&self, other: &Interval) -> Nm {
        if self.intersects(other) {
            Nm::ZERO
        } else if self.hi < other.lo {
            other.lo - self.hi
        } else {
            self.lo - other.hi
        }
    }

    /// Merges a set of intervals into a minimal sorted set of disjoint
    /// intervals covering the same points.
    ///
    /// The result is sorted by lower endpoint and pairwise disjoint (touching
    /// intervals are merged).
    pub fn merge_all(mut intervals: Vec<Interval>) -> Vec<Interval> {
        intervals.sort();
        let mut merged: Vec<Interval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.last_mut() {
                Some(last) if last.hi >= iv.lo => {
                    last.hi = last.hi.max(iv.hi);
                }
                _ => merged.push(iv),
            }
        }
        merged
    }

    /// Computes the maximal sub-intervals of `span` not covered by any
    /// interval in `covered` (which need not be disjoint or sorted).
    ///
    /// This is the primitive behind stitch-candidate generation: the free gaps
    /// along a wire are where a stitch may legally be inserted.
    pub fn complement_within(span: Interval, covered: &[Interval]) -> Vec<Interval> {
        let clipped: Vec<Interval> = covered
            .iter()
            .filter(|iv| iv.intersects(&span))
            .map(|iv| Interval::new(iv.lo.max(span.lo), iv.hi.min(span.hi)))
            .collect();
        let merged = Interval::merge_all(clipped);
        let mut gaps = Vec::new();
        let mut cursor = span.lo;
        for iv in &merged {
            if iv.lo > cursor {
                gaps.push(Interval::new(cursor, iv.lo));
            }
            cursor = cursor.max(iv.hi);
        }
        if cursor < span.hi {
            gaps.push(Interval::new(cursor, span.hi));
        }
        gaps
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(Nm(a), Nm(b))
    }

    #[test]
    fn construction_normalises_order() {
        let i = iv(10, 3);
        assert_eq!(i.lo(), Nm(3));
        assert_eq!(i.hi(), Nm(10));
        assert_eq!(i.length(), Nm(7));
    }

    #[test]
    fn overlap_and_intersection() {
        assert!(iv(0, 5).intersects(&iv(5, 8)));
        assert!(!iv(0, 5).intersects(&iv(6, 8)));
        assert_eq!(iv(0, 5).overlap(&iv(3, 9)), Nm(2));
        assert_eq!(iv(0, 5).overlap(&iv(7, 9)), Nm(0));
    }

    #[test]
    fn gap_between_disjoint_intervals() {
        assert_eq!(iv(0, 5).gap(&iv(9, 12)), Nm(4));
        assert_eq!(iv(9, 12).gap(&iv(0, 5)), Nm(4));
        assert_eq!(iv(0, 5).gap(&iv(3, 12)), Nm(0));
    }

    #[test]
    fn containment() {
        assert!(iv(0, 10).contains(Nm(10)));
        assert!(!iv(0, 10).contains(Nm(11)));
        assert!(iv(0, 10).contains_interval(&iv(2, 8)));
        assert!(!iv(0, 10).contains_interval(&iv(2, 11)));
    }

    #[test]
    fn merge_all_merges_touching_and_overlapping() {
        let merged = Interval::merge_all(vec![iv(5, 8), iv(0, 2), iv(2, 4), iv(7, 12)]);
        assert_eq!(merged, vec![iv(0, 4), iv(5, 12)]);
    }

    #[test]
    fn complement_finds_gaps() {
        let gaps = Interval::complement_within(iv(0, 100), &[iv(10, 30), iv(50, 60)]);
        assert_eq!(gaps, vec![iv(0, 10), iv(30, 50), iv(60, 100)]);
    }

    #[test]
    fn complement_with_full_cover_is_empty() {
        let gaps = Interval::complement_within(iv(0, 10), &[iv(-5, 20)]);
        assert!(gaps.is_empty());
    }

    #[test]
    fn complement_ignores_outside_cover() {
        let gaps = Interval::complement_within(iv(0, 10), &[iv(50, 60)]);
        assert_eq!(gaps, vec![iv(0, 10)]);
    }
}
