//! Property-based tests for the geometry substrate.

use mpl_geometry::{GridIndex, Interval, Nm, Point, Polygon, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-500i64..500, -500i64..500, 1i64..200, 1i64..200)
        .prop_map(|(x, y, w, h)| Rect::new(Nm(x), Nm(y), Nm(x + w), Nm(y + h)))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000i64..1000, -1000i64..1000).prop_map(Point::from)
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-500i64..500, -500i64..500).prop_map(|(a, b)| Interval::new(Nm(a), Nm(b)))
}

proptest! {
    #[test]
    fn point_distance_symmetric_and_nonnegative(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.distance_squared(b), b.distance_squared(a));
        prop_assert!(a.distance_squared(b) >= 0);
        prop_assert_eq!(a.distance_squared(a), 0);
    }

    #[test]
    fn rect_distance_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.distance_squared(&b), b.distance_squared(&a));
    }

    #[test]
    fn rect_distance_zero_iff_intersecting(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.distance_squared(&b) == 0, a.intersects(&b));
    }

    #[test]
    fn rect_intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(inter) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&inter));
            prop_assert!(b.contains_rect(&inter));
        }
    }

    #[test]
    fn rect_union_bbox_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union_bbox(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn expanding_reduces_distance(a in arb_rect(), b in arb_rect(), m in 0i64..50) {
        let margin = Nm(m);
        prop_assert!(a.expanded(margin).distance_squared(&b) <= a.distance_squared(&b));
    }

    #[test]
    fn translation_preserves_distance(a in arb_rect(), b in arb_rect(),
                                      dx in -300i64..300, dy in -300i64..300) {
        let (dx, dy) = (Nm(dx), Nm(dy));
        prop_assert_eq!(
            a.translated(dx, dy).distance_squared(&b.translated(dx, dy)),
            a.distance_squared(&b)
        );
    }

    #[test]
    fn interval_overlap_is_symmetric_and_bounded(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.overlap(&b), b.overlap(&a));
        prop_assert!(a.overlap(&b) <= a.length());
        prop_assert!(a.overlap(&b) <= b.length());
    }

    #[test]
    fn interval_merge_preserves_membership(ivs in prop::collection::vec(arb_interval(), 0..12),
                                           x in -500i64..500) {
        let x = Nm(x);
        let covered_before = ivs.iter().any(|iv| iv.contains(x));
        let merged = Interval::merge_all(ivs);
        let covered_after = merged.iter().any(|iv| iv.contains(x));
        prop_assert_eq!(covered_before, covered_after);
        // Merged output is sorted and disjoint.
        for pair in merged.windows(2) {
            prop_assert!(pair[0].hi() < pair[1].lo());
        }
    }

    #[test]
    fn complement_is_disjoint_from_cover_interiors(
        covered in prop::collection::vec(arb_interval(), 0..8),
        span in arb_interval(),
    ) {
        let gaps = Interval::complement_within(span, &covered);
        for gap in &gaps {
            prop_assert!(span.contains_interval(gap));
            // The midpoint of a gap of positive length is not covered.
            if gap.length() > Nm(1) {
                let mid = Nm((gap.lo().value() + gap.hi().value()) / 2);
                prop_assert!(!covered.iter().any(|iv| iv.lo() < mid && mid < iv.hi()));
            }
        }
    }

    #[test]
    fn polygon_distance_never_exceeds_component_rect_distance(
        a in prop::collection::vec(arb_rect(), 1..4),
        b in prop::collection::vec(arb_rect(), 1..4),
    ) {
        let pa = Polygon::from_rects(a.clone()).expect("non-empty");
        let pb = Polygon::from_rects(b.clone()).expect("non-empty");
        let min_pair = a.iter()
            .flat_map(|ra| b.iter().map(move |rb| ra.distance_squared(rb)))
            .min()
            .expect("non-empty");
        prop_assert_eq!(pa.distance_squared(&pb), min_pair);
    }

    #[test]
    fn grid_index_matches_brute_force(
        rects in prop::collection::vec(arb_rect(), 1..40),
        query in arb_rect(),
        limit in 1i64..300,
        cell in 10i64..200,
    ) {
        let limit = Nm(limit);
        let mut index = GridIndex::new(Nm(cell));
        for (id, r) in rects.iter().enumerate() {
            index.insert(id, *r);
        }
        let mut got = index.query_within(&query, limit);
        got.sort_unstable();
        let mut expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| query.within_distance(r, limit))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
