//! Translation-canonical component memoization.
//!
//! Real layouts are overwhelmingly repeated instances: once an SREF/AREF
//! hierarchy is flattened, a 32×32 contact array becomes 1024 copies of the
//! *same* independent component at different offsets, and a naive
//! decomposer recolors every copy from scratch.  This crate caches colored
//! components under a **canonical signature** that is invariant under
//! translation, so every copy after the first is served by a table lookup.
//!
//! # The signature
//!
//! A component is canonicalized in three steps ([`canonicalize`]):
//!
//! 1. **Normalize** — every vertex's rectangles are shifted so the
//!    component's bounding-box origin lands at `(0, 0)`.  Two components
//!    that differ only by a translation now carry identical geometry.
//! 2. **Order** — vertices are sorted by their normalized geometry (ties
//!    keep the live order), yielding a deterministic canonical permutation
//!    that does not depend on where the component sat in the layout.
//! 3. **Relabel** — conflict/stitch/color-friendly edges are rewritten
//!    through the permutation, oriented `(min, max)` and sorted.
//!
//! The resulting [`Signature`] — canonical geometry, canonical edge lists,
//! the mask count K, the stitch weight α and a free-form configuration
//! fingerprint — is the cache key.  Keys are compared by **full equality**
//! (not just a hash), so a hash collision can never serve a wrong coloring.
//!
//! # The determinism guarantee
//!
//! The cache stores colorings of the **canonical** problem.  A cache miss
//! is expected to color the canonical problem (not the live one) and
//! [`stamp`] the canonical colors back through the permutation; a cache hit
//! stamps the stored colors the same way.  Because the canonical problem is
//! a pure function of the signature, the colors a component receives are
//! identical whether the cache was cold, warm, or evicted in between — and
//! identical across every translated copy of the component.
//!
//! # Capacity and eviction
//!
//! [`MemoCache`] is thread-safe (one internal mutex; lookups are a hash
//! probe plus a recency bump) and bounded: when an insert would exceed the
//! configured entry capacity, the least-recently-used entry is evicted.
//! [`MemoCache::stats`] reports entries, capacity, hits, misses, evictions
//! and an approximate byte footprint, so services can observe warm-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An axis-aligned rectangle in absolute layout coordinates, as
/// `(xlo, ylo, xhi, yhi)` nanometres.
pub type RectNm = (i64, i64, i64, i64);

/// A borrowed view of one live component, in the component's local vertex
/// ids, as handed to [`canonicalize`].
///
/// The geometry is passed as plain coordinate tuples so this crate stays
/// dependency-free; callers translate their polygon types once per vertex.
#[derive(Debug, Clone, Copy)]
pub struct ComponentView<'a> {
    /// A free-form fingerprint of everything that influences coloring
    /// besides the component itself (engine, division flags, thresholds,
    /// time limits).  Two configurations with different fingerprints never
    /// share cache entries.
    pub fingerprint: &'a str,
    /// Number of colors K.
    pub k: usize,
    /// Stitch weight α.
    pub alpha: f64,
    /// Per-vertex geometry in absolute coordinates, indexed by live local
    /// vertex id.  Rectangle order within a vertex must be construction
    /// order (translation-stable), which layout flattening guarantees.
    pub geometry: &'a [Vec<RectNm>],
    /// Conflict edges over live local ids.
    pub conflict_edges: &'a [(usize, usize)],
    /// Stitch edges over live local ids.
    pub stitch_edges: &'a [(usize, usize)],
    /// Color-friendly pairs over live local ids.
    pub friendly_pairs: &'a [(usize, usize)],
}

/// The translation-invariant cache key of a component.
///
/// Built by [`canonicalize`]; compared and hashed over its full contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    fingerprint: String,
    k: usize,
    /// α take part in the coloring objective; keyed by exact bit pattern.
    alpha_bits: u64,
    /// Canonical-order, origin-normalized per-vertex geometry.
    geometry: Vec<Vec<RectNm>>,
    conflict_edges: Vec<(u32, u32)>,
    stitch_edges: Vec<(u32, u32)>,
    friendly_pairs: Vec<(u32, u32)>,
}

impl Signature {
    /// Number of vertices of the component.
    pub fn vertex_count(&self) -> usize {
        self.geometry.len()
    }

    /// Number of colors K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stitch weight α.
    pub fn alpha(&self) -> f64 {
        f64::from_bits(self.alpha_bits)
    }

    /// Canonical conflict edges (sorted, `(min, max)`-oriented).
    pub fn conflict_edges(&self) -> &[(u32, u32)] {
        &self.conflict_edges
    }

    /// Canonical stitch edges (sorted, `(min, max)`-oriented).
    pub fn stitch_edges(&self) -> &[(u32, u32)] {
        &self.stitch_edges
    }

    /// Canonical color-friendly pairs (sorted, `(min, max)`-oriented).
    pub fn friendly_pairs(&self) -> &[(u32, u32)] {
        &self.friendly_pairs
    }

    /// Approximate heap footprint of the signature plus a stored coloring,
    /// for the cache's byte accounting.
    fn approximate_bytes(&self) -> usize {
        let rects: usize = self.geometry.iter().map(Vec::len).sum();
        self.fingerprint.len()
            + rects * std::mem::size_of::<RectNm>()
            + self.geometry.len() * std::mem::size_of::<Vec<RectNm>>()
            + (self.conflict_edges.len() + self.stitch_edges.len() + self.friendly_pairs.len())
                * std::mem::size_of::<(u32, u32)>()
            + self.vertex_count() // the stored coloring, one byte per vertex
    }
}

/// The result of canonicalizing one live component: the cache key plus the
/// permutation that maps canonical colors back onto live vertices.
#[derive(Debug, Clone)]
pub struct CanonicalComponent {
    /// The translation-invariant cache key.
    pub signature: Signature,
    /// `perm[canonical] = live`: the live local vertex id at each canonical
    /// position.
    pub perm: Vec<usize>,
}

/// Canonicalizes one live component (see the crate docs for the three
/// normalization steps).
///
/// # Panics
///
/// Panics if an edge endpoint is out of range of `view.geometry`.
pub fn canonicalize(view: &ComponentView<'_>) -> CanonicalComponent {
    let n = view.geometry.len();
    // Step 1: normalize to the component's bounding-box origin.
    let mut origin_x = i64::MAX;
    let mut origin_y = i64::MAX;
    for rects in view.geometry {
        for &(xlo, ylo, _, _) in rects {
            origin_x = origin_x.min(xlo);
            origin_y = origin_y.min(ylo);
        }
    }
    if n == 0 || origin_x == i64::MAX {
        (origin_x, origin_y) = (0, 0);
    }
    let normalized: Vec<Vec<RectNm>> = view
        .geometry
        .iter()
        .map(|rects| {
            rects
                .iter()
                .map(|&(xlo, ylo, xhi, yhi)| {
                    (
                        xlo - origin_x,
                        ylo - origin_y,
                        xhi - origin_x,
                        yhi - origin_y,
                    )
                })
                .collect()
        })
        .collect();

    // Step 2: sort vertices by normalized geometry.  Distinct vertices have
    // distinct normalized positions (coincident shapes aside), so the order
    // — and therefore the whole signature — is translation-invariant; the
    // live-id tie-break only makes exact-overlap degeneracies deterministic.
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by(|&a, &b| normalized[a].cmp(&normalized[b]).then(a.cmp(&b)));
    let mut canonical_of = vec![0u32; n];
    for (position, &live) in perm.iter().enumerate() {
        canonical_of[live] = position as u32;
    }

    // Step 3: relabel the edge lists through the permutation.
    let relabel = |edges: &[(usize, usize)]| -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v)| {
                let (cu, cv) = (canonical_of[u], canonical_of[v]);
                (cu.min(cv), cu.max(cv))
            })
            .collect();
        out.sort_unstable();
        out
    };

    let geometry = perm.iter().map(|&live| normalized[live].clone()).collect();
    CanonicalComponent {
        signature: Signature {
            fingerprint: view.fingerprint.to_string(),
            k: view.k,
            alpha_bits: view.alpha.to_bits(),
            geometry,
            conflict_edges: relabel(view.conflict_edges),
            stitch_edges: relabel(view.stitch_edges),
            friendly_pairs: relabel(view.friendly_pairs),
        },
        perm,
    }
}

/// Maps a canonical coloring onto live local vertex ids:
/// `live[perm[c]] = canonical[c]`.
///
/// # Panics
///
/// Panics if `canonical_colors` and `perm` have different lengths.
pub fn stamp(canonical_colors: &[u8], perm: &[usize]) -> Vec<u8> {
    assert_eq!(
        canonical_colors.len(),
        perm.len(),
        "permutation length mismatch"
    );
    let mut live = vec![0u8; perm.len()];
    for (canonical, &live_id) in perm.iter().enumerate() {
        live[live_id] = canonical_colors[canonical];
    }
    live
}

/// The inverse of [`stamp`]: recovers the canonical coloring from live
/// colors, `canonical[c] = live[perm[c]]`.
///
/// # Panics
///
/// Panics if `live_colors` and `perm` have different lengths.
pub fn unstamp(live_colors: &[u8], perm: &[usize]) -> Vec<u8> {
    assert_eq!(live_colors.len(), perm.len(), "permutation length mismatch");
    perm.iter().map(|&live_id| live_colors[live_id]).collect()
}

/// A point-in-time snapshot of a [`MemoCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Entries currently stored.
    pub entries: usize,
    /// The entry capacity the cache was created with.
    pub capacity: usize,
    /// Lookups that found a stored coloring.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Approximate bytes held by stored signatures and colorings.
    pub bytes: usize,
}

struct Entry {
    colors: Arc<Vec<u8>>,
    bytes: usize,
    /// Monotonic recency stamp; smallest = least recently used.
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Signature, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    bytes: usize,
}

/// A thread-safe, capacity-bounded signature → coloring cache.
///
/// Shared by reference-counting: a service holds one `Arc<MemoCache>` and
/// attaches it to every session, so repeated submissions of the same cell
/// library get faster over time.  See the crate docs for the determinism
/// guarantee.
pub struct MemoCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("MemoCache")
            .field("entries", &stats.entries)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl MemoCache {
    /// The default entry capacity (components, not bytes): generous enough
    /// for a large cell library, small enough that worst-case signatures
    /// stay in the tens of megabytes.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (front ends reject that earlier with a
    /// typed configuration error).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "memo cache capacity must be at least 1");
        MemoCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a stored canonical coloring, counting a hit or a miss and
    /// refreshing the entry's recency on a hit.
    pub fn lookup(&self, signature: &Signature) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().expect("memo cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(signature) {
            Some(entry) => {
                entry.last_used = tick;
                let colors = entry.colors.clone();
                inner.hits += 1;
                Some(colors)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a canonical coloring, evicting least-recently-used entries if
    /// the capacity would be exceeded.  Re-inserting an existing signature
    /// refreshes its recency and replaces its colors.
    ///
    /// # Panics
    ///
    /// Panics if `colors` does not have one color per signature vertex.
    pub fn insert(&self, signature: Signature, colors: Vec<u8>) {
        assert_eq!(
            colors.len(),
            signature.vertex_count(),
            "stored coloring length must match the signature's vertex count"
        );
        let bytes = signature.approximate_bytes();
        let mut inner = self.inner.lock().expect("memo cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(previous) = inner.map.insert(
            signature,
            Entry {
                colors: Arc::new(colors),
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= previous.bytes;
        }
        inner.bytes += bytes;
        while inner.map.len() > self.capacity {
            // O(entries) scan: eviction only runs once the cache is full,
            // and the capacity bounds the scan.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(signature, _)| signature.clone())
                .expect("a cache over capacity is non-empty");
            if let Some(evicted) = inner.map.remove(&victim) {
                inner.bytes -= evicted.bytes;
                inner.evictions += 1;
            }
        }
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> MemoStats {
        let inner = self.inner.lock().expect("memo cache lock poisoned");
        MemoStats {
            entries: inner.map.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A three-vertex path with one stitch and one friendly pair; `offset`
    /// translates the whole component.
    fn sample_view(geometry: &[Vec<RectNm>]) -> ComponentView<'_> {
        ComponentView {
            fingerprint: "test-config",
            k: 4,
            alpha: 0.1,
            geometry,
            conflict_edges: &[(0, 1), (1, 2)],
            stitch_edges: &[(2, 0)],
            friendly_pairs: &[(1, 0)],
        }
    }

    fn sample_geometry(dx: i64, dy: i64) -> Vec<Vec<RectNm>> {
        vec![
            vec![(dx, dy, dx + 20, dy + 20)],
            vec![(dx + 50, dy, dx + 70, dy + 20)],
            vec![
                (dx, dy + 50, dx + 20, dy + 70),
                (dx, dy + 70, dx + 40, dy + 90),
            ],
        ]
    }

    #[test]
    fn translated_copies_share_one_signature() {
        let at_origin = sample_geometry(0, 0);
        let far_away = sample_geometry(123_456, -789_012);
        let a = canonicalize(&sample_view(&at_origin));
        let b = canonicalize(&sample_view(&far_away));
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.perm, b.perm);
    }

    #[test]
    fn different_geometry_config_or_edges_change_the_signature() {
        let base = sample_geometry(0, 0);
        let reference = canonicalize(&sample_view(&base)).signature;

        let mut stretched = sample_geometry(0, 0);
        stretched[0][0].2 += 1;
        assert_ne!(canonicalize(&sample_view(&stretched)).signature, reference);

        let mut other_config = sample_view(&base);
        other_config.fingerprint = "another-config";
        assert_ne!(canonicalize(&other_config).signature, reference);

        let mut other_alpha = sample_view(&base);
        other_alpha.alpha = 0.2;
        assert_ne!(canonicalize(&other_alpha).signature, reference);

        let mut fewer_edges = sample_view(&base);
        fewer_edges.conflict_edges = &[(0, 1)];
        assert_ne!(canonicalize(&fewer_edges).signature, reference);
    }

    #[test]
    fn vertex_relabeling_produces_the_same_canonical_form() {
        // The same component with live ids permuted (0↔2): geometry and
        // edges are rewritten consistently, so the canonical form agrees.
        let geometry = sample_geometry(0, 0);
        let swapped_geometry = vec![
            geometry[2].clone(),
            geometry[1].clone(),
            geometry[0].clone(),
        ];
        let swapped = ComponentView {
            conflict_edges: &[(2, 1), (1, 0)],
            stitch_edges: &[(0, 2)],
            friendly_pairs: &[(1, 2)],
            ..sample_view(&swapped_geometry)
        };
        let a = canonicalize(&sample_view(&geometry));
        let b = canonicalize(&swapped);
        assert_eq!(a.signature, b.signature);
        // The permutations differ (they map to different live ids) but
        // stamping any canonical coloring colors matching vertices alike.
        let canonical_colors = vec![0, 1, 2];
        let live_a = stamp(&canonical_colors, &a.perm);
        let live_b = stamp(&canonical_colors, &b.perm);
        assert_eq!(live_a[0], live_b[2]);
        assert_eq!(live_a[1], live_b[1]);
        assert_eq!(live_a[2], live_b[0]);
    }

    #[test]
    fn stamp_and_unstamp_are_inverses() {
        let geometry = sample_geometry(7, -3);
        let canonical = canonicalize(&sample_view(&geometry));
        let canonical_colors = vec![3, 0, 2];
        let live = stamp(&canonical_colors, &canonical.perm);
        assert_eq!(unstamp(&live, &canonical.perm), canonical_colors);
    }

    #[test]
    fn cache_counts_hits_misses_and_bytes() {
        let cache = MemoCache::new(8);
        let canonical = canonicalize(&sample_view(&sample_geometry(0, 0)));
        assert!(cache.lookup(&canonical.signature).is_none());
        cache.insert(canonical.signature.clone(), vec![0, 1, 2]);
        let stored = cache.lookup(&canonical.signature).expect("hit");
        assert_eq!(*stored, vec![0, 1, 2]);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 8);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn eviction_removes_the_least_recently_used_entry() {
        let cache = MemoCache::new(2);
        let signatures: Vec<Signature> = (0..3)
            .map(|index| {
                let mut geometry = sample_geometry(0, 0);
                geometry[0][0].2 += index; // three distinct components
                canonicalize(&sample_view(&geometry)).signature
            })
            .collect();
        cache.insert(signatures[0].clone(), vec![0, 0, 0]);
        cache.insert(signatures[1].clone(), vec![1, 1, 1]);
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.lookup(&signatures[0]).is_some());
        cache.insert(signatures[2].clone(), vec![2, 2, 2]);
        assert!(cache.lookup(&signatures[1]).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&signatures[0]).is_some());
        assert!(cache.lookup(&signatures[2]).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn reinserting_a_signature_replaces_without_growing() {
        let cache = MemoCache::new(4);
        let signature = canonicalize(&sample_view(&sample_geometry(0, 0))).signature;
        cache.insert(signature.clone(), vec![0, 0, 0]);
        let before = cache.stats().bytes;
        cache.insert(signature.clone(), vec![1, 2, 3]);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, before);
        assert_eq!(*cache.lookup(&signature).expect("hit"), vec![1, 2, 3]);
    }

    #[test]
    fn lookups_are_usable_across_threads() {
        let cache = std::sync::Arc::new(MemoCache::new(64));
        let signature = canonicalize(&sample_view(&sample_geometry(0, 0))).signature;
        cache.insert(signature.clone(), vec![0, 1, 2]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = cache.clone();
                let signature = signature.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        assert!(cache.lookup(&signature).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 400);
    }
}
