//! A small 0-1 linear program with a branch-and-bound solver.

use std::fmt;

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `Σ aᵢ·xᵢ ≤ b`
    LessEq,
    /// `Σ aᵢ·xᵢ ≥ b`
    GreaterEq,
    /// `Σ aᵢ·xᵢ = b`
    Equal,
}

#[derive(Debug, Clone)]
struct Constraint {
    terms: Vec<(usize, f64)>,
    comparison: Comparison,
    rhs: f64,
}

/// Outcome category of a [`BinaryProgram`] solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal solution was found and proven optimal.
    Optimal,
    /// The search space was exhausted without finding a feasible point.
    Infeasible,
    /// The node budget ran out; the incumbent (if any) may be suboptimal.
    Truncated,
}

/// The result of solving a [`BinaryProgram`].
#[derive(Debug, Clone)]
pub struct ProgramSolution {
    /// Solve outcome.
    pub status: SolveStatus,
    /// Best assignment found (empty when infeasible).
    pub assignment: Vec<bool>,
    /// Objective value of `assignment` (meaningless when infeasible).
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
}

/// A minimisation 0-1 integer linear program.
///
/// # Example
///
/// ```
/// use mpl_ilp::{BinaryProgram, Comparison};
///
/// // Minimise x0 + x1 subject to x0 + x1 >= 1 (a vertex cover of one edge).
/// let mut program = BinaryProgram::new(2);
/// program.set_objective_coefficient(0, 1.0);
/// program.set_objective_coefficient(1, 1.0);
/// program.add_constraint(vec![(0, 1.0), (1, 1.0)], Comparison::GreaterEq, 1.0);
/// let solution = program.solve(100_000);
/// assert_eq!(solution.objective, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl BinaryProgram {
    /// Creates a program with `variables` binary variables and an all-zero
    /// objective.
    pub fn new(variables: usize) -> Self {
        BinaryProgram {
            objective: vec![0.0; variables],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coefficient(&mut self, var: usize, coefficient: f64) {
        assert!(var < self.objective.len(), "variable {var} out of range");
        self.objective[var] = coefficient;
    }

    /// Adds a linear constraint `Σ aᵢ·xᵢ (cmp) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, comparison: Comparison, rhs: f64) {
        for &(var, _) in &terms {
            assert!(var < self.objective.len(), "variable {var} out of range");
        }
        self.constraints.push(Constraint {
            terms,
            comparison,
            rhs,
        });
    }

    /// Solves the program by depth-first branch and bound, exploring at most
    /// `node_limit` nodes.
    ///
    /// Pruning uses (a) an objective bound that assumes every unfixed
    /// variable takes the cheaper of its two values, and (b) per-constraint
    /// reachability: a node is cut when some constraint can no longer be
    /// satisfied by any completion.
    pub fn solve(&self, node_limit: u64) -> ProgramSolution {
        let n = self.variable_count();
        let mut best_assignment: Option<Vec<bool>> = None;
        let mut best_objective = f64::INFINITY;
        let mut nodes: u64 = 0;
        let mut truncated = false;

        // Branch order: variables with the largest absolute objective impact
        // first, so the objective bound bites early.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.objective[b]
                .abs()
                .partial_cmp(&self.objective[a].abs())
                .expect("objective coefficients are finite")
        });

        let mut assignment: Vec<Option<bool>> = vec![None; n];
        self.branch(
            &order,
            0,
            &mut assignment,
            0.0,
            &mut best_assignment,
            &mut best_objective,
            &mut nodes,
            node_limit,
            &mut truncated,
        );

        match best_assignment {
            Some(assignment) => ProgramSolution {
                status: if truncated {
                    SolveStatus::Truncated
                } else {
                    SolveStatus::Optimal
                },
                objective: best_objective,
                assignment,
                nodes,
            },
            None => ProgramSolution {
                status: if truncated {
                    SolveStatus::Truncated
                } else {
                    SolveStatus::Infeasible
                },
                assignment: Vec::new(),
                objective: f64::INFINITY,
                nodes,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<Option<bool>>,
        fixed_cost: f64,
        best_assignment: &mut Option<Vec<bool>>,
        best_objective: &mut f64,
        nodes: &mut u64,
        node_limit: u64,
        truncated: &mut bool,
    ) {
        if *nodes >= node_limit {
            *truncated = true;
            return;
        }
        *nodes += 1;

        // Objective bound: unfixed variables contribute at best min(0, c).
        let optimistic: f64 = fixed_cost
            + order[depth..]
                .iter()
                .map(|&v| self.objective[v].min(0.0))
                .sum::<f64>();
        if optimistic >= *best_objective - 1e-9 {
            return;
        }
        // Constraint reachability.
        if !self.constraints_reachable(assignment) {
            return;
        }
        if depth == order.len() {
            let complete: Vec<bool> = assignment.iter().map(|x| x.unwrap_or(false)).collect();
            if self.is_feasible(&complete) && fixed_cost < *best_objective {
                *best_objective = fixed_cost;
                *best_assignment = Some(complete);
            }
            return;
        }
        let var = order[depth];
        // Try the cheaper value first.
        let order_of_values = if self.objective[var] >= 0.0 {
            [false, true]
        } else {
            [true, false]
        };
        for value in order_of_values {
            assignment[var] = Some(value);
            let cost = fixed_cost + if value { self.objective[var] } else { 0.0 };
            self.branch(
                order,
                depth + 1,
                assignment,
                cost,
                best_assignment,
                best_objective,
                nodes,
                node_limit,
                truncated,
            );
            assignment[var] = None;
        }
    }

    /// Checks whether every constraint can still be satisfied by some
    /// completion of the partial assignment.
    fn constraints_reachable(&self, assignment: &[Option<bool>]) -> bool {
        for constraint in &self.constraints {
            let mut min_lhs = 0.0;
            let mut max_lhs = 0.0;
            for &(var, coefficient) in &constraint.terms {
                match assignment[var] {
                    Some(true) => {
                        min_lhs += coefficient;
                        max_lhs += coefficient;
                    }
                    Some(false) => {}
                    None => {
                        min_lhs += coefficient.min(0.0);
                        max_lhs += coefficient.max(0.0);
                    }
                }
            }
            let reachable = match constraint.comparison {
                Comparison::LessEq => min_lhs <= constraint.rhs + 1e-9,
                Comparison::GreaterEq => max_lhs >= constraint.rhs - 1e-9,
                Comparison::Equal => {
                    min_lhs <= constraint.rhs + 1e-9 && max_lhs >= constraint.rhs - 1e-9
                }
            };
            if !reachable {
                return false;
            }
        }
        true
    }

    /// Checks a complete assignment against every constraint.
    pub fn is_feasible(&self, assignment: &[bool]) -> bool {
        self.constraints.iter().all(|constraint| {
            let lhs: f64 = constraint
                .terms
                .iter()
                .map(|&(var, coefficient)| if assignment[var] { coefficient } else { 0.0 })
                .sum();
            match constraint.comparison {
                Comparison::LessEq => lhs <= constraint.rhs + 1e-9,
                Comparison::GreaterEq => lhs >= constraint.rhs - 1e-9,
                Comparison::Equal => (lhs - constraint.rhs).abs() < 1e-9,
            }
        })
    }

    /// Evaluates the objective for a complete assignment.
    pub fn objective_value(&self, assignment: &[bool]) -> f64 {
        self.objective
            .iter()
            .zip(assignment)
            .map(|(c, &x)| if x { *c } else { 0.0 })
            .sum()
    }
}

impl fmt::Display for BinaryProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BinaryProgram({} vars, {} constraints)",
            self.variable_count(),
            self.constraint_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_minimum_picks_negative_coefficients() {
        let mut p = BinaryProgram::new(3);
        p.set_objective_coefficient(0, -2.0);
        p.set_objective_coefficient(1, 3.0);
        p.set_objective_coefficient(2, -0.5);
        let s = p.solve(1000);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.assignment, vec![true, false, true]);
        assert_eq!(s.objective, -2.5);
    }

    #[test]
    fn vertex_cover_of_a_triangle_needs_two_vertices() {
        let mut p = BinaryProgram::new(3);
        for v in 0..3 {
            p.set_objective_coefficient(v, 1.0);
        }
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            p.add_constraint(vec![(u, 1.0), (v, 1.0)], Comparison::GreaterEq, 1.0);
        }
        let s = p.solve(10_000);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, 2.0);
        assert_eq!(s.assignment.iter().filter(|&&x| x).count(), 2);
    }

    #[test]
    fn equality_constraints_are_respected() {
        // Choose exactly two of four items, minimising weight.
        let mut p = BinaryProgram::new(4);
        let weights = [5.0, 1.0, 3.0, 2.0];
        for (v, w) in weights.iter().enumerate() {
            p.set_objective_coefficient(v, *w);
        }
        p.add_constraint((0..4).map(|v| (v, 1.0)).collect(), Comparison::Equal, 2.0);
        let s = p.solve(10_000);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, 3.0);
        assert!(s.assignment[1] && s.assignment[3]);
    }

    #[test]
    fn infeasible_program_is_detected() {
        let mut p = BinaryProgram::new(2);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Comparison::GreaterEq, 3.0);
        let s = p.solve(10_000);
        assert_eq!(s.status, SolveStatus::Infeasible);
        assert!(s.assignment.is_empty());
    }

    #[test]
    fn node_limit_truncates_search() {
        let mut p = BinaryProgram::new(16);
        for v in 0..16 {
            p.set_objective_coefficient(v, 1.0);
        }
        // Force a deep search with a constraint that is tight only at the end.
        p.add_constraint(
            (0..16).map(|v| (v, 1.0)).collect(),
            Comparison::GreaterEq,
            8.0,
        );
        let s = p.solve(3);
        assert_eq!(s.status, SolveStatus::Truncated);
    }

    #[test]
    fn less_equal_knapsack() {
        // Maximise value 〜 minimise negative value subject to weight <= 4.
        let mut p = BinaryProgram::new(3);
        let values = [3.0, 4.0, 5.0];
        let weights = [2.0, 3.0, 4.0];
        for (v, value) in values.iter().enumerate() {
            p.set_objective_coefficient(v, -value);
        }
        p.add_constraint(
            (0..3).map(|v| (v, weights[v])).collect(),
            Comparison::LessEq,
            4.0,
        );
        let s = p.solve(10_000);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, -5.0);
        assert_eq!(s.assignment, vec![false, false, true]);
    }

    #[test]
    fn feasibility_and_objective_helpers() {
        let mut p = BinaryProgram::new(2);
        p.set_objective_coefficient(0, 1.5);
        p.add_constraint(vec![(0, 1.0)], Comparison::LessEq, 0.0);
        assert!(p.is_feasible(&[false, true]));
        assert!(!p.is_feasible(&[true, false]));
        assert_eq!(p.objective_value(&[true, true]), 1.5);
        assert_eq!(p.to_string(), "BinaryProgram(2 vars, 1 constraints)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_variable_panics() {
        let mut p = BinaryProgram::new(1);
        p.add_constraint(vec![(3, 1.0)], Comparison::LessEq, 1.0);
    }
}
