//! Integer-programming substrate for multiple-patterning layout
//! decomposition.
//!
//! The paper's optimal baseline formulates color assignment as an integer
//! linear program and solves it with GUROBI.  This crate replaces that
//! dependency with two from-scratch components:
//!
//! * [`BinaryProgram`] — a small, general 0-1 linear program model with a
//!   depth-first branch-and-bound solver.  It exists so the ILP formulation
//!   of the paper (extended from the triple-patterning ILP of Yu et al.,
//!   ICCAD 2011) can be written down and solved exactly on small instances,
//!   and it powers several cross-checking tests.
//! * [`ColoringInstance`] / [`solve_exact`] — a branch-and-bound solver
//!   specialised for conflict/stitch-minimising K-coloring.  It produces the
//!   same optima as the ILP on every instance (they model the same discrete
//!   problem) but scales to the component sizes that graph division leaves
//!   behind, and honours a time limit the same way the paper's one-hour
//!   GUROBI limit does.
//!
//! # Example
//!
//! ```
//! use mpl_ilp::{solve_exact, ColoringInstance, ExactOptions};
//!
//! // A K5 cannot be 4-colored: the optimum has exactly one conflict.
//! let mut instance = ColoringInstance::new(5, 4);
//! for i in 0..5 {
//!     for j in (i + 1)..5 {
//!         instance.add_conflict(i, j);
//!     }
//! }
//! let solution = solve_exact(&instance, &ExactOptions::default());
//! assert_eq!(solution.conflicts, 1);
//! assert!(solution.proven_optimal);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coloring;
mod program;

pub use coloring::{solve_exact, CancelProbe, ColoringInstance, ExactOptions, ExactSolution};
pub use program::{BinaryProgram, Comparison, ProgramSolution, SolveStatus};
