//! Exact conflict/stitch-minimising K-coloring by branch and bound.

use std::time::{Duration, Instant};

/// A K-coloring instance over `n` vertices with conflict and stitch edges.
///
/// The discrete problem matches the paper's ILP formulation exactly: assign
/// each vertex one of `k` colors so as to minimise
/// `conflicts + α · stitches`, where a conflict edge costs 1 when its
/// endpoints share a color and a stitch edge costs α when its endpoints
/// differ.
#[derive(Debug, Clone, PartialEq)]
pub struct ColoringInstance {
    vertex_count: usize,
    k: usize,
    alpha: f64,
    conflict_edges: Vec<(usize, usize)>,
    stitch_edges: Vec<(usize, usize)>,
}

impl ColoringInstance {
    /// Creates an empty instance with `vertex_count` vertices and `k` colors
    /// and the paper's default stitch weight α = 0.1.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(vertex_count: usize, k: usize) -> Self {
        assert!(k >= 1, "at least one color is required");
        ColoringInstance {
            vertex_count,
            k,
            alpha: 0.1,
            conflict_edges: Vec::new(),
            stitch_edges: Vec::new(),
        }
    }

    /// Overrides the stitch weight α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        self.alpha = alpha;
        self
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of colors K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The stitch weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adds a conflict edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_conflict(&mut self, u: usize, v: usize) {
        self.check(u, v);
        self.conflict_edges.push((u, v));
    }

    /// Adds a stitch edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_stitch(&mut self, u: usize, v: usize) {
        self.check(u, v);
        self.stitch_edges.push((u, v));
    }

    fn check(&self, u: usize, v: usize) {
        assert!(u != v, "self-edge {u}-{v} is not allowed");
        assert!(
            u < self.vertex_count && v < self.vertex_count,
            "edge ({u}, {v}) out of range for {} vertices",
            self.vertex_count
        );
    }

    /// The conflict edges.
    pub fn conflict_edges(&self) -> &[(usize, usize)] {
        &self.conflict_edges
    }

    /// The stitch edges.
    pub fn stitch_edges(&self) -> &[(usize, usize)] {
        &self.stitch_edges
    }

    /// Evaluates a complete coloring, returning `(conflicts, stitches, cost)`.
    ///
    /// # Panics
    ///
    /// Panics if `colors` has the wrong length or contains a color `≥ k`.
    pub fn evaluate(&self, colors: &[u8]) -> (usize, usize, f64) {
        assert_eq!(colors.len(), self.vertex_count, "coloring length mismatch");
        assert!(
            colors.iter().all(|&c| (c as usize) < self.k),
            "coloring uses a color outside 0..{}",
            self.k
        );
        let conflicts = self
            .conflict_edges
            .iter()
            .filter(|&&(u, v)| colors[u] == colors[v])
            .count();
        let stitches = self
            .stitch_edges
            .iter()
            .filter(|&&(u, v)| colors[u] != colors[v])
            .count();
        (
            conflicts,
            stitches,
            conflicts as f64 + self.alpha * stitches as f64,
        )
    }
}

/// Options for the exact branch-and-bound solve.
#[derive(Debug, Clone, Default)]
pub struct ExactOptions {
    /// Abandon the proof of optimality after this much wall-clock time; the
    /// incumbent found so far is returned with `proven_optimal == false`.
    pub time_limit: Option<Duration>,
    /// An externally known feasible solution used to seed the incumbent
    /// (for instance the greedy solution), as `(colors, cost)`.
    pub warm_start: Option<Vec<u8>>,
}

/// The result of an exact solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// The best coloring found.
    pub colors: Vec<u8>,
    /// Number of conflict edges whose endpoints share a color.
    pub conflicts: usize,
    /// Number of stitch edges whose endpoints differ in color.
    pub stitches: usize,
    /// Objective value `conflicts + α · stitches`.
    pub cost: f64,
    /// `true` when the search completed and the result is a proven optimum.
    pub proven_optimal: bool,
    /// Number of search nodes explored.
    pub nodes: u64,
}

struct Searcher<'a> {
    instance: &'a ColoringInstance,
    /// Adjacency lists: (neighbor, is_conflict).
    incident: Vec<Vec<(usize, bool)>>,
    order: Vec<usize>,
    position: Vec<usize>,
    best_cost: f64,
    best_colors: Vec<u8>,
    nodes: u64,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl Searcher<'_> {
    fn search(
        &mut self,
        depth: usize,
        colors: &mut Vec<u8>,
        partial_cost: f64,
        max_color_used: u8,
    ) {
        self.nodes += 1;
        if self.nodes.is_multiple_of(2048) {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.timed_out = true;
                }
            }
        }
        if self.timed_out || partial_cost >= self.best_cost - 1e-9 {
            return;
        }
        if depth == self.order.len() {
            self.best_cost = partial_cost;
            self.best_colors = colors.clone();
            return;
        }
        let vertex = self.order[depth];
        let k = self.instance.k() as u8;
        // Symmetry breaking: only allow one fresh (so-far unused) color.
        let color_limit = (max_color_used + 1).min(k - 1);
        for color in 0..=color_limit {
            colors[vertex] = color;
            // Incremental cost against already-assigned neighbours.
            let mut delta = 0.0;
            for &(neighbor, is_conflict) in &self.incident[vertex] {
                if self.position[neighbor] < depth {
                    if is_conflict && colors[neighbor] == color {
                        delta += 1.0;
                    } else if !is_conflict && colors[neighbor] != color {
                        delta += self.instance.alpha();
                    }
                }
            }
            let next_max = max_color_used.max(color);
            self.search(depth + 1, colors, partial_cost + delta, next_max);
            if self.timed_out {
                return;
            }
        }
    }
}

/// Solves a [`ColoringInstance`] to proven optimality (or to the time
/// limit) by depth-first branch and bound.
///
/// Vertices are branched in descending conflict-degree order; a node is
/// pruned as soon as the cost of the already-colored subgraph reaches the
/// incumbent.  Color symmetry is broken by allowing at most one previously
/// unused color per branch level.  A greedy warm start seeds the incumbent
/// so that conflict-free components are proven optimal almost immediately.
pub fn solve_exact(instance: &ColoringInstance, options: &ExactOptions) -> ExactSolution {
    let n = instance.vertex_count();
    if n == 0 {
        return ExactSolution {
            colors: Vec::new(),
            conflicts: 0,
            stitches: 0,
            cost: 0.0,
            proven_optimal: true,
            nodes: 0,
        };
    }

    let mut incident: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for &(u, v) in instance.conflict_edges() {
        incident[u].push((v, true));
        incident[v].push((u, true));
    }
    for &(u, v) in instance.stitch_edges() {
        incident[u].push((v, false));
        incident[v].push((u, false));
    }

    // Branch order: highest conflict degree first.
    let mut order: Vec<usize> = (0..n).collect();
    let conflict_degree = |v: usize| incident[v].iter().filter(|(_, c)| *c).count();
    order.sort_by_key(|&v| std::cmp::Reverse(conflict_degree(v)));
    let mut position = vec![0usize; n];
    for (depth, &v) in order.iter().enumerate() {
        position[v] = depth;
    }

    // Incumbent: warm start if provided, otherwise a greedy coloring in the
    // branch order.
    let warm = options.warm_start.clone().unwrap_or_else(|| {
        let mut colors = vec![0u8; n];
        for &v in &order {
            let mut penalty = vec![0.0f64; instance.k()];
            for &(neighbor, is_conflict) in &incident[v] {
                if position[neighbor] < position[v] {
                    for (color, slot) in penalty.iter_mut().enumerate() {
                        if is_conflict && colors[neighbor] as usize == color {
                            *slot += 1.0;
                        } else if !is_conflict && colors[neighbor] as usize != color {
                            *slot += instance.alpha();
                        }
                    }
                }
            }
            let best = penalty
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(c, _)| c)
                .unwrap_or(0);
            colors[v] = best as u8;
        }
        colors
    });
    let (_, _, warm_cost) = instance.evaluate(&warm);

    let mut searcher = Searcher {
        instance,
        incident,
        order,
        position,
        best_cost: warm_cost + 1e-9,
        best_colors: warm.clone(),
        nodes: 0,
        deadline: options.time_limit.map(|limit| Instant::now() + limit),
        timed_out: false,
    };
    let mut colors = vec![0u8; n];
    searcher.search(0, &mut colors, 0.0, 0);

    let best = searcher.best_colors;
    let (conflicts, stitches, cost) = instance.evaluate(&best);
    ExactSolution {
        colors: best,
        conflicts,
        stitches,
        cost,
        proven_optimal: !searcher.timed_out,
        nodes: searcher.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize, k: usize) -> ColoringInstance {
        let mut instance = ColoringInstance::new(n, k);
        for i in 0..n {
            for j in (i + 1)..n {
                instance.add_conflict(i, j);
            }
        }
        instance
    }

    #[test]
    fn empty_instance_is_trivially_optimal() {
        let solution = solve_exact(&ColoringInstance::new(0, 4), &ExactOptions::default());
        assert_eq!(solution.cost, 0.0);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn k4_is_four_colorable_without_conflicts() {
        let solution = solve_exact(&clique(4, 4), &ExactOptions::default());
        assert_eq!(solution.conflicts, 0);
        assert!(solution.proven_optimal);
        // All four colors must be distinct.
        let mut seen = solution.colors.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn k5_under_four_colors_has_exactly_one_conflict() {
        let solution = solve_exact(&clique(5, 4), &ExactOptions::default());
        assert_eq!(solution.conflicts, 1);
        assert_eq!(solution.stitches, 0);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn k6_under_four_colors_has_three_conflicts() {
        // K6 with 4 colors: the best partition is 2+2+1+1, giving C(2,2)*2 = 2
        // monochromatic edges... actually 2 pairs of doubled colors -> 2
        // conflicts; verify against brute force below.
        let instance = clique(6, 4);
        let solution = solve_exact(&instance, &ExactOptions::default());
        let brute = brute_force(&instance);
        assert_eq!(solution.cost, brute);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn k5_under_five_colors_is_clean() {
        let solution = solve_exact(&clique(5, 5), &ExactOptions::default());
        assert_eq!(solution.conflicts, 0);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn stitch_edges_prefer_same_color() {
        let mut instance = ColoringInstance::new(3, 4);
        instance.add_stitch(0, 1);
        instance.add_stitch(1, 2);
        let solution = solve_exact(&instance, &ExactOptions::default());
        assert_eq!(solution.stitches, 0);
        assert_eq!(solution.colors[0], solution.colors[1]);
        assert_eq!(solution.colors[1], solution.colors[2]);
    }

    #[test]
    fn stitch_is_used_when_it_avoids_a_conflict() {
        // Vertices 0 and 1 are two halves of a wire (stitch edge); 0
        // conflicts with 2, 3, 4 and 1 conflicts with 5, 6, 7; together with
        // cross conflicts the wire cannot keep a single color for free.
        let mut instance = ColoringInstance::new(5, 2).with_alpha(0.1);
        // Two colors only: 0-1 stitch, 0 conflicts with 2, 1 conflicts with 3,
        // and 2-3 must also differ from each other ... construct an odd cycle
        // that forces the stitch: 0-2 conflict, 2-3 conflict, 3-1 conflict,
        // and 0-3 conflict.
        instance.add_stitch(0, 1);
        instance.add_conflict(0, 2);
        instance.add_conflict(2, 3);
        instance.add_conflict(3, 1);
        instance.add_conflict(0, 3);
        instance.add_conflict(2, 4);
        instance.add_conflict(3, 4);
        let solution = solve_exact(&instance, &ExactOptions::default());
        let brute = brute_force(&instance);
        assert!((solution.cost - brute).abs() < 1e-9);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn evaluate_reports_components() {
        let mut instance = ColoringInstance::new(4, 4);
        instance.add_conflict(0, 1);
        instance.add_stitch(2, 3);
        let (conflicts, stitches, cost) = instance.evaluate(&[1, 1, 0, 2]);
        assert_eq!(conflicts, 1);
        assert_eq!(stitches, 1);
        assert!((cost - 1.1).abs() < 1e-9);
    }

    #[test]
    fn warm_start_bounds_the_search() {
        let mut instance = clique(5, 4);
        instance.add_stitch(0, 1);
        let warm = vec![0, 1, 2, 3, 0];
        let with_warm = solve_exact(
            &instance,
            &ExactOptions {
                warm_start: Some(warm),
                ..ExactOptions::default()
            },
        );
        let without = solve_exact(&instance, &ExactOptions::default());
        assert!((with_warm.cost - without.cost).abs() < 1e-9);
    }

    #[test]
    fn time_limit_zero_returns_the_warm_start_unproven() {
        let instance = clique(9, 4);
        let solution = solve_exact(
            &instance,
            &ExactOptions {
                time_limit: Some(Duration::from_secs(0)),
                ..ExactOptions::default()
            },
        );
        // The greedy incumbent is still a valid coloring.
        assert_eq!(solution.colors.len(), 9);
        // With a zero budget the proof of optimality is abandoned quickly;
        // the solver may still finish tiny instances before the first clock
        // check, so only the solution validity is asserted here.
        let (c, s, cost) = instance.evaluate(&solution.colors);
        assert_eq!((c, s), (solution.conflicts, solution.stitches));
        assert!((cost - solution.cost).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..10 {
            let n = 5 + (case % 3);
            let k = 3 + (case % 3);
            let mut instance = ColoringInstance::new(n, k);
            for i in 0..n {
                for j in (i + 1)..n {
                    match next() % 10 {
                        0..=4 => instance.add_conflict(i, j),
                        5 => instance.add_stitch(i, j),
                        _ => {}
                    }
                }
            }
            let exact = solve_exact(&instance, &ExactOptions::default());
            let brute = brute_force(&instance);
            assert!(
                (exact.cost - brute).abs() < 1e-9,
                "case {case}: exact {} vs brute {}",
                exact.cost,
                brute
            );
            assert!(exact.proven_optimal);
        }
    }

    /// Exhaustive reference: minimum cost over all k^n colorings.
    fn brute_force(instance: &ColoringInstance) -> f64 {
        let n = instance.vertex_count();
        let k = instance.k();
        let mut best = f64::INFINITY;
        let mut colors = vec![0u8; n];
        loop {
            let (_, _, cost) = instance.evaluate(&colors);
            best = best.min(cost);
            // Increment the mixed-radix counter.
            let mut index = 0;
            loop {
                if index == n {
                    return best;
                }
                colors[index] += 1;
                if (colors[index] as usize) < k {
                    break;
                }
                colors[index] = 0;
                index += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn zero_colors_panics() {
        let _ = ColoringInstance::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "coloring length mismatch")]
    fn evaluate_rejects_wrong_length() {
        let instance = ColoringInstance::new(3, 4);
        let _ = instance.evaluate(&[0, 1]);
    }
}
