//! Exact conflict/stitch-minimising K-coloring by branch and bound.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A K-coloring instance over `n` vertices with conflict and stitch edges.
///
/// The discrete problem matches the paper's ILP formulation exactly: assign
/// each vertex one of `k` colors so as to minimise
/// `conflicts + α · stitches`, where a conflict edge costs 1 when its
/// endpoints share a color and a stitch edge costs α when its endpoints
/// differ.
#[derive(Debug, Clone, PartialEq)]
pub struct ColoringInstance {
    vertex_count: usize,
    k: usize,
    alpha: f64,
    conflict_edges: Vec<(usize, usize)>,
    stitch_edges: Vec<(usize, usize)>,
}

impl ColoringInstance {
    /// Creates an empty instance with `vertex_count` vertices and `k` colors
    /// and the paper's default stitch weight α = 0.1.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(vertex_count: usize, k: usize) -> Self {
        assert!(k >= 1, "at least one color is required");
        ColoringInstance {
            vertex_count,
            k,
            alpha: 0.1,
            conflict_edges: Vec::new(),
            stitch_edges: Vec::new(),
        }
    }

    /// Overrides the stitch weight α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        self.alpha = alpha;
        self
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of colors K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The stitch weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adds a conflict edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_conflict(&mut self, u: usize, v: usize) {
        self.check(u, v);
        self.conflict_edges.push((u, v));
    }

    /// Adds a stitch edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_stitch(&mut self, u: usize, v: usize) {
        self.check(u, v);
        self.stitch_edges.push((u, v));
    }

    fn check(&self, u: usize, v: usize) {
        assert!(u != v, "self-edge {u}-{v} is not allowed");
        assert!(
            u < self.vertex_count && v < self.vertex_count,
            "edge ({u}, {v}) out of range for {} vertices",
            self.vertex_count
        );
    }

    /// The conflict edges.
    pub fn conflict_edges(&self) -> &[(usize, usize)] {
        &self.conflict_edges
    }

    /// The stitch edges.
    pub fn stitch_edges(&self) -> &[(usize, usize)] {
        &self.stitch_edges
    }

    /// Evaluates a complete coloring, returning `(conflicts, stitches, cost)`.
    ///
    /// # Panics
    ///
    /// Panics if `colors` has the wrong length or contains a color `≥ k`.
    pub fn evaluate(&self, colors: &[u8]) -> (usize, usize, f64) {
        assert_eq!(colors.len(), self.vertex_count, "coloring length mismatch");
        assert!(
            colors.iter().all(|&c| (c as usize) < self.k),
            "coloring uses a color outside 0..{}",
            self.k
        );
        let conflicts = self
            .conflict_edges
            .iter()
            .filter(|&&(u, v)| colors[u] == colors[v])
            .count();
        let stitches = self
            .stitch_edges
            .iter()
            .filter(|&&(u, v)| colors[u] != colors[v])
            .count();
        (
            conflicts,
            stitches,
            conflicts as f64 + self.alpha * stitches as f64,
        )
    }
}

/// Options for the exact branch-and-bound solve.
#[derive(Debug, Clone, Default)]
pub struct ExactOptions {
    /// Abandon the proof of optimality after this much wall-clock time; the
    /// incumbent found so far is returned with `proven_optimal == false`.
    pub time_limit: Option<Duration>,
    /// An externally known feasible solution used to seed the incumbent
    /// (for instance the greedy solution), as `(colors, cost)`.
    pub warm_start: Option<Vec<u8>>,
    /// An external stop request, polled on the same amortised clock check
    /// as the time limit.  On observation the incumbent is returned with
    /// [`cancelled`](ExactSolution::cancelled) set, at most one
    /// clock-check batch of nodes (1024, `TIME_CHECK_INTERVAL`) after the
    /// request.
    pub cancel: Option<CancelProbe>,
}

/// A request-level stop signal shared between the caller and a running
/// [`solve_exact`].
///
/// The `flag` is an atomic the owner may set at any time (for instance from
/// another thread answering a wire-protocol `cancel` frame); `deadline` is
/// an optional hard wall-clock cut-off that belongs to the *request* rather
/// than to this individual solve.  When the solver observes either — it
/// polls both on its existing amortised clock check, so the cost stays off
/// the per-node path — it sets `flag` itself (making the stop visible to
/// sibling solves sharing the probe) and returns the incumbent.
#[derive(Debug, Clone, Default)]
pub struct CancelProbe {
    /// The shared stop flag; set by the owner, or by a solver that observed
    /// the deadline.
    pub flag: Arc<AtomicBool>,
    /// Hard wall-clock cut-off for the whole request.
    pub deadline: Option<Instant>,
}

impl CancelProbe {
    /// `true` once a stop has been requested or observed.
    pub fn stop_requested(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Polls the probe with a clock reading the caller already has: checks
    /// the flag, promotes an expired deadline into the flag, and returns
    /// whether the solve should stop.
    pub fn should_stop(&self, now: Instant) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if self.deadline.is_some_and(|deadline| now >= deadline) {
            self.flag.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// The result of an exact solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// The best coloring found.
    pub colors: Vec<u8>,
    /// Number of conflict edges whose endpoints share a color.
    pub conflicts: usize,
    /// Number of stitch edges whose endpoints differ in color.
    pub stitches: usize,
    /// Objective value `conflicts + α · stitches`.
    pub cost: f64,
    /// `true` when the search completed and the result is a proven optimum.
    pub proven_optimal: bool,
    /// `true` when the wall-clock budget expired before the proof finished:
    /// the returned coloring is the incumbent (best found so far), not
    /// necessarily an optimum.  Always `!proven_optimal`.
    pub hit_time_limit: bool,
    /// `true` when an external [`CancelProbe`] stopped the search before
    /// the proof finished: the returned coloring is the incumbent.
    pub cancelled: bool,
    /// Number of search nodes explored.
    pub nodes: u64,
    /// Number of clique-expansion steps that strengthened the root lower
    /// bound past the vertex-disjoint clique cover (see
    /// [`solve_exact`]'s bound description).
    pub bound_improvements: u64,
}

/// How often (in explored nodes) the wall clock is consulted.  Amortising
/// the `Instant::now()` syscall keeps per-node cost flat while bounding the
/// overshoot past the deadline to one batch of nodes.
const TIME_CHECK_INTERVAL: u64 = 1024;

/// Flat incidence entry: neighbour id shifted left, conflict flag in bit 0.
#[inline]
fn pack_incident(neighbor: usize, is_conflict: bool) -> usize {
    (neighbor << 1) | usize::from(is_conflict)
}

struct Searcher<'a> {
    instance: &'a ColoringInstance,
    /// CSR incidence: entries `incident[inc_offsets[v]..inc_offsets[v+1]]`
    /// are [`pack_incident`] values (conflict edges first, then stitches,
    /// each in instance edge order).
    inc_offsets: Vec<usize>,
    incident: Vec<usize>,
    order: Vec<usize>,
    position: Vec<usize>,
    /// Expanded clique-cover bookkeeping for the incremental lower bound:
    /// `memberships[member_offsets[v]..member_offsets[v+1]]` are the
    /// tracked cliques containing `v` (at most two — the expansion's usage
    /// cap), `remaining[q]` counts a clique's not-yet-colored members,
    /// `clique_counts[q·k + c]` how many of its members already wear color
    /// `c`, and `clique_lb[q]` the clique's current contribution to the
    /// lower bound (see [`min_fill_conflicts`]).
    member_offsets: Vec<usize>,
    memberships: Vec<usize>,
    remaining: Vec<usize>,
    clique_counts: Vec<usize>,
    clique_lb: Vec<f64>,
    /// Overlap corrections: two tracked cliques sharing `s ≥ 2` vertices
    /// double-count a monochromatic shared pair only when the underlying
    /// conflict edge is *simple* — a pair backed by parallel edges costs at
    /// least as much as both cliques claim.  With `e` simple shared pairs
    /// and `a` of the shared vertices colored, the double count is at most
    /// `min(e, C(s, 2) − C(a, 2))`, which the bound subtracts.
    /// `pair_of[v]` is the correction pair a doubly-tracked vertex belongs
    /// to (`usize::MAX` otherwise); `pair_shared`/`pair_correctable` hold
    /// `s` and `e`; `pair_assigned[p]` is the current `a`.
    pair_of: Vec<usize>,
    pair_shared: Vec<usize>,
    pair_correctable: Vec<usize>,
    pair_assigned: Vec<usize>,
    fill_scratch: Vec<usize>,
    best_cost: f64,
    best_colors: Vec<u8>,
    nodes: u64,
    deadline: Option<Instant>,
    timed_out: bool,
    cancel: Option<&'a CancelProbe>,
    cancelled: bool,
}

impl Searcher<'_> {
    fn search(
        &mut self,
        depth: usize,
        colors: &mut Vec<u8>,
        partial_cost: f64,
        lower_bound: f64,
        max_color_used: u8,
    ) {
        self.nodes += 1;
        if self.nodes.is_multiple_of(TIME_CHECK_INTERVAL)
            && (self.deadline.is_some() || self.cancel.is_some())
        {
            let now = Instant::now();
            if self.deadline.is_some_and(|deadline| now >= deadline) {
                self.timed_out = true;
            }
            if self.cancel.is_some_and(|probe| probe.should_stop(now)) {
                self.cancelled = true;
            }
        }
        if self.timed_out || self.cancelled || partial_cost + lower_bound >= self.best_cost - 1e-9 {
            return;
        }
        if depth == self.order.len() {
            self.best_cost = partial_cost;
            self.best_colors = colors.clone();
            return;
        }
        let vertex = self.order[depth];
        let k = self.instance.k();
        // A vertex belongs to at most two tracked cliques (the expansion's
        // usage cap), so its memberships fit a fixed pair of slots.
        let member_start = self.member_offsets[vertex];
        let member_count = self.member_offsets[vertex + 1] - member_start;
        debug_assert!(member_count <= 2);
        let mut members = [usize::MAX; 2];
        members[..member_count]
            .copy_from_slice(&self.memberships[member_start..member_start + member_count]);
        let pair = self.pair_of[vertex];

        // Symmetry breaking: only allow one fresh (so-far unused) color.
        let color_limit = ((max_color_used as usize) + 1).min(k - 1) as u8;
        for color in 0..=color_limit {
            colors[vertex] = color;
            // Incremental cost against already-assigned neighbours.
            let mut delta = 0.0;
            for &entry in &self.incident[self.inc_offsets[vertex]..self.inc_offsets[vertex + 1]] {
                let neighbor = entry >> 1;
                if self.position[neighbor] < depth {
                    if entry & 1 == 1 {
                        if colors[neighbor] == color {
                            delta += 1.0;
                        }
                    } else if colors[neighbor] != color {
                        delta += self.instance.alpha();
                    }
                }
            }
            // Coloring `vertex` moves it from each tracked clique's
            // uncolored part into color class `color`; the conflicts still
            // forced on the remaining members are re-bounded with the new
            // class occupancies (a color-count-aware refinement of the
            // balanced clique bound).  If the vertex is shared by two
            // cliques of a correction pair, one more shared vertex is now
            // colored and the pair's double-count allowance shrinks by the
            // pre-increment assigned count.
            let next_max = max_color_used.max(color);
            let mut child_bound = lower_bound;
            let mut saved_lb = [0.0f64; 2];
            for (slot, &q) in members[..member_count].iter().enumerate() {
                let old_lb = self.clique_lb[q];
                saved_lb[slot] = old_lb;
                self.remaining[q] -= 1;
                self.clique_counts[q * k + color as usize] += 1;
                let refined = self.refined_clique_bound(q);
                self.clique_lb[q] = refined;
                child_bound += refined - old_lb;
            }
            if pair != usize::MAX {
                let s = self.pair_shared[pair];
                let e = self.pair_correctable[pair];
                let a = self.pair_assigned[pair];
                let allowance = |a: usize| e.min(s * (s - 1) / 2 - a * (a - 1) / 2);
                child_bound += (allowance(a) - allowance(a + 1)) as f64;
                self.pair_assigned[pair] += 1;
            }
            self.search(
                depth + 1,
                colors,
                partial_cost + delta,
                child_bound,
                next_max,
            );
            if pair != usize::MAX {
                self.pair_assigned[pair] -= 1;
            }
            for (slot, &q) in members[..member_count].iter().enumerate().rev() {
                self.clique_lb[q] = saved_lb[slot];
                self.clique_counts[q * k + color as usize] -= 1;
                self.remaining[q] += 1;
            }
            if self.timed_out || self.cancelled {
                break;
            }
        }
    }

    /// Re-computes `clique`'s lower-bound contribution: the minimum number
    /// of *new* conflict pairs created by distributing its `remaining`
    /// uncolored members over the color classes, given how many members
    /// already wear each color ([`min_fill_conflicts`]).
    fn refined_clique_bound(&mut self, clique: usize) -> f64 {
        let k = self.instance.k();
        self.fill_scratch.clear();
        self.fill_scratch
            .extend_from_slice(&self.clique_counts[clique * k..(clique + 1) * k]);
        min_fill_conflicts(&mut self.fill_scratch, self.remaining[clique])
    }
}

/// Minimum number of new same-color pairs created by adding `extra`
/// members to color classes with the given current `sizes` — filling the
/// smallest class first is optimal because the marginal cost of a class is
/// its current size, which only grows.  `sizes` is used as scratch.
fn min_fill_conflicts(sizes: &mut [usize], extra: usize) -> f64 {
    let mut added = 0usize;
    for _ in 0..extra {
        let mut min_index = 0;
        let mut min_size = usize::MAX;
        for (index, &size) in sizes.iter().enumerate() {
            if size < min_size {
                min_size = size;
                min_index = index;
            }
        }
        added += min_size;
        sizes[min_index] += 1;
    }
    added as f64
}

/// Greedily grows vertex-disjoint cliques in the conflict graph, largest
/// seeds first (ties by vertex id).  Returns the cover as clique vertex
/// lists; every vertex appears in at most one clique.
fn greedy_clique_cover(
    n: usize,
    conflict_offsets: &[usize],
    conflict: &[usize],
) -> Vec<Vec<usize>> {
    let degree = |v: usize| conflict_offsets[v + 1] - conflict_offsets[v];
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&v| (std::cmp::Reverse(degree(v)), v));
    let mut used = vec![false; n];
    // Stamp array answering "is u a current candidate?" in O(1).
    let mut candidate_stamp = vec![0u32; n];
    let mut stamp = 0u32;
    let mut cliques = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();
    for &seed in &seeds {
        if used[seed] {
            continue;
        }
        let mut clique = vec![seed];
        candidates.clear();
        candidates.extend(
            conflict[conflict_offsets[seed]..conflict_offsets[seed + 1]]
                .iter()
                .copied()
                .filter(|&u| !used[u]),
        );
        candidates.sort_unstable();
        candidates.dedup();
        while !candidates.is_empty() {
            stamp += 1;
            for &c in &candidates {
                candidate_stamp[c] = stamp;
            }
            // The candidate adjacent to the most other candidates keeps the
            // grown clique dense; ties pick the smallest id.
            let mut best = candidates[0];
            let mut best_score = 0usize;
            let mut first = true;
            for &c in &candidates {
                let score = conflict[conflict_offsets[c]..conflict_offsets[c + 1]]
                    .iter()
                    .filter(|&&u| u != c && candidate_stamp[u] == stamp)
                    .count();
                if first || score > best_score {
                    best = c;
                    best_score = score;
                    first = false;
                }
            }
            clique.push(best);
            stamp += 1;
            for &u in &conflict[conflict_offsets[best]..conflict_offsets[best + 1]] {
                candidate_stamp[u] = stamp;
            }
            candidates.retain(|&c| c != best && candidate_stamp[c] == stamp);
        }
        for &member in &clique {
            used[member] = true;
        }
        cliques.push(clique);
    }
    cliques
}

/// Minimum conflicts of any K-coloring of a clique with `size` vertices:
/// the most balanced partition into K color classes, paying `C(m, 2)`
/// conflicts per class of size `m`.
fn clique_conflict_bound(size: usize, k: usize) -> f64 {
    let q = size / k;
    let r = size % k;
    let pairs = |m: usize| (m * m.saturating_sub(1) / 2) as f64;
    r as f64 * pairs(q + 1) + (k - r) as f64 * pairs(q)
}

/// Expands the vertex-disjoint cover toward a (limited) edge clique cover:
/// each cover clique, largest first, greedily absorbs outside vertices
/// adjacent to *all* of its members, provided the vertex is in fewer than
/// two cliques and the conservative net bound gain is strictly positive —
/// the clique's bound increment minus, for every other clique already
/// containing the vertex, the number of *simple* edges to the overlap
/// (each such edge becomes a newly double-counted shared pair; parallel
/// edges cost at least as much as both cliques claim, so they are free).
/// Returns the number of accepted expansions.
///
/// The usage cap of two cliques per vertex means every conflict edge lies
/// in at most two tracked cliques, so the pairwise corrections of
/// [`solve_exact`] account for *all* double counting and the resulting
/// bound stays admissible.
fn expand_clique_cover(
    cover: &mut [Vec<usize>],
    n: usize,
    conflict_offsets: &[usize],
    conflict: &[usize],
    k: usize,
    multiplicity: &std::collections::HashMap<(usize, usize), usize>,
) -> u64 {
    let mut usage = vec![0u8; n];
    let mut cliques_of: Vec<[usize; 2]> = vec![[usize::MAX; 2]; n];
    for (ci, clique) in cover.iter().enumerate() {
        for &v in clique {
            cliques_of[v][usage[v] as usize] = ci;
            usage[v] += 1;
        }
    }
    let mut order: Vec<usize> = (0..cover.len()).collect();
    order.sort_by_key(|&ci| (std::cmp::Reverse(cover[ci].len()), ci));
    let mut member_stamp = vec![0u32; n];
    let mut count_stamp = vec![0u32; n];
    let mut counts = vec![0usize; n];
    let mut seen_stamp = vec![0u32; n];
    let mut stamp = 0u32;
    let mut seen = 0u32;
    let mut improvements = 0u64;
    for &ci in &order {
        loop {
            let size = cover[ci].len();
            stamp += 1;
            for &m in &cover[ci] {
                member_stamp[m] = stamp;
            }
            // Count, for every outside vertex with remaining clique
            // capacity, how many *distinct* members it is adjacent to
            // (parallel edges must not count twice); candidates are the
            // vertices adjacent to all of them.
            for &m in &cover[ci] {
                seen += 1;
                for &u in &conflict[conflict_offsets[m]..conflict_offsets[m + 1]] {
                    if member_stamp[u] == stamp || usage[u] >= 2 || seen_stamp[u] == seen {
                        continue;
                    }
                    seen_stamp[u] = seen;
                    if count_stamp[u] != stamp {
                        count_stamp[u] = stamp;
                        counts[u] = 0;
                    }
                    counts[u] += 1;
                }
            }
            let bound_gain = clique_conflict_bound(size + 1, k) - clique_conflict_bound(size, k);
            let mut best: Option<(f64, usize)> = None;
            for v in 0..n {
                if count_stamp[v] != stamp || counts[v] != size {
                    continue;
                }
                let mut penalty = 0.0;
                for &other in cliques_of[v].iter().take(usage[v] as usize) {
                    penalty += cover[other]
                        .iter()
                        .filter(|&&m| {
                            member_stamp[m] == stamp
                                && multiplicity
                                    .get(&(v.min(m), v.max(m)))
                                    .is_none_or(|&count| count == 1)
                        })
                        .count() as f64;
                }
                let gain = bound_gain - penalty;
                if gain > 1e-9 && best.is_none_or(|(best_gain, _)| gain > best_gain + 1e-9) {
                    best = Some((gain, v));
                }
            }
            let Some((_, v)) = best else {
                break;
            };
            cover[ci].push(v);
            cliques_of[v][usage[v] as usize] = ci;
            usage[v] += 1;
            improvements += 1;
        }
    }
    improvements
}

/// Solves a [`ColoringInstance`] to proven optimality (or to the time
/// limit) by depth-first branch and bound.
///
/// The search is pruned four ways:
///
/// * **Connectivity-first ordering** — branching starts on the largest
///   clique of a greedy clique cover, then repeatedly picks the vertex with
///   the most already-branched conflict neighbours (a static DSATUR-style
///   order), so the partial subgraph stays dense and costs accumulate as
///   early as possible.
/// * **Color-symmetry breaking** — at most one previously unused color per
///   branch level; with the first clique branched first, the clique's
///   vertices pin the color classes and the `K!` color permutations are
///   never re-explored.
/// * **Incremental expanded-clique-cover lower bound** — the greedy
///   vertex-disjoint cover is first *expanded* toward an edge clique
///   cover: each clique absorbs outside vertices adjacent to all of its
///   members (at most two cliques per vertex) whenever that strictly
///   raises the bound net of overlap double counting.  Every clique with
///   more vertices than colors then forces conflicts among its uncolored
///   members; only the branching vertex's cliques are re-bounded per color
///   branch (O(k · remaining) via the smallest-class-first fill
///   `min_fill_conflicts` — cliques are small after division), pairs of
///   cliques sharing `s ≥ 2` vertices subtract their double-count
///   allowance `min(e, C(s, 2) − C(a, 2))` (with `e` the *simple*-edge
///   shared pairs — parallel edges pay per copy and are never
///   double-counted), and the result is added to the accumulated cost
///   before comparing against the incumbent.  The number of accepted
///   expansions is reported as
///   [`bound_improvements`](ExactSolution::bound_improvements).
/// * **Greedy warm start** — the incumbent starts at a greedy coloring (or
///   the caller's [`ExactOptions::warm_start`]), so conflict-free
///   components are proven optimal almost immediately.
///
/// The wall clock is consulted every 1024 nodes (`TIME_CHECK_INTERVAL`);
/// on expiry the incumbent is returned with
/// [`hit_time_limit`](ExactSolution::hit_time_limit) set.
pub fn solve_exact(instance: &ColoringInstance, options: &ExactOptions) -> ExactSolution {
    let n = instance.vertex_count();
    if n == 0 {
        return ExactSolution {
            colors: Vec::new(),
            conflicts: 0,
            stitches: 0,
            cost: 0.0,
            proven_optimal: true,
            hit_time_limit: false,
            cancelled: false,
            nodes: 0,
            bound_improvements: 0,
        };
    }
    let k = instance.k();

    // Flat CSR incidence: conflict edges first, then stitch edges, so the
    // per-vertex entry order matches the old push-list construction.
    let mut inc_offsets = vec![0usize; n + 1];
    let mut conflict_offsets = vec![0usize; n + 1];
    for &(u, v) in instance.conflict_edges() {
        inc_offsets[u + 1] += 1;
        inc_offsets[v + 1] += 1;
        conflict_offsets[u + 1] += 1;
        conflict_offsets[v + 1] += 1;
    }
    for &(u, v) in instance.stitch_edges() {
        inc_offsets[u + 1] += 1;
        inc_offsets[v + 1] += 1;
    }
    for v in 0..n {
        let base = inc_offsets[v];
        inc_offsets[v + 1] += base;
        let cbase = conflict_offsets[v];
        conflict_offsets[v + 1] += cbase;
    }
    let mut incident = vec![0usize; inc_offsets[n]];
    let mut conflict = vec![0usize; conflict_offsets[n]];
    {
        let mut inc_cursor = inc_offsets.clone();
        let mut con_cursor = conflict_offsets.clone();
        for &(u, v) in instance.conflict_edges() {
            incident[inc_cursor[u]] = pack_incident(v, true);
            inc_cursor[u] += 1;
            incident[inc_cursor[v]] = pack_incident(u, true);
            inc_cursor[v] += 1;
            conflict[con_cursor[u]] = v;
            con_cursor[u] += 1;
            conflict[con_cursor[v]] = u;
            con_cursor[v] += 1;
        }
        for &(u, v) in instance.stitch_edges() {
            incident[inc_cursor[u]] = pack_incident(v, false);
            inc_cursor[u] += 1;
            incident[inc_cursor[v]] = pack_incident(u, false);
            inc_cursor[v] += 1;
        }
    }
    let conflict_degree = |v: usize| conflict_offsets[v + 1] - conflict_offsets[v];

    // Greedy clique cover, then clique expansion toward an edge clique
    // cover: the largest clique seeds the branch order, and every clique
    // bigger than K contributes to the lower bound.
    let mut cover = greedy_clique_cover(n, &conflict_offsets, &conflict);
    // Conflict-edge multiplicities: a pair connected by parallel edges pays
    // once per edge when monochromatic, so two cliques both claiming it do
    // not double-count — the expansion and the pair corrections below both
    // need to know which shared pairs are simple.
    let mut multiplicity: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for &(u, v) in instance.conflict_edges() {
        *multiplicity.entry((u.min(v), u.max(v))).or_insert(0) += 1;
    }
    let bound_improvements = expand_clique_cover(
        &mut cover,
        n,
        &conflict_offsets,
        &conflict,
        k,
        &multiplicity,
    );
    let largest = cover
        .iter()
        .enumerate()
        .max_by_key(|(index, clique)| (clique.len(), std::cmp::Reverse(*index)))
        .map(|(index, _)| index);

    // Branch order: the largest cover clique first, then the vertex with
    // the most already-ordered conflict neighbours (ties: conflict degree,
    // then id) via a lazy max-heap.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut ordered = vec![false; n];
    let mut placed_neighbors = vec![0usize; n];
    let mut heap: std::collections::BinaryHeap<(usize, usize, std::cmp::Reverse<usize>)> =
        std::collections::BinaryHeap::with_capacity(n);
    let append = |v: usize,
                  order: &mut Vec<usize>,
                  ordered: &mut Vec<bool>,
                  placed: &mut Vec<usize>,
                  heap: &mut std::collections::BinaryHeap<(
        usize,
        usize,
        std::cmp::Reverse<usize>,
    )>| {
        ordered[v] = true;
        order.push(v);
        for &u in &conflict[conflict_offsets[v]..conflict_offsets[v + 1]] {
            if !ordered[u] {
                placed[u] += 1;
                heap.push((placed[u], conflict_degree(u), std::cmp::Reverse(u)));
            }
        }
    };
    if let Some(clique_index) = largest {
        for &v in &cover[clique_index] {
            append(
                v,
                &mut order,
                &mut ordered,
                &mut placed_neighbors,
                &mut heap,
            );
        }
    }
    for (v, &placed) in placed_neighbors.iter().enumerate() {
        heap.push((placed, conflict_degree(v), std::cmp::Reverse(v)));
    }
    while let Some((placed, _, std::cmp::Reverse(v))) = heap.pop() {
        // Lazy deletion: skip stale entries (already ordered, or the
        // placed-neighbour count moved on since this entry was pushed).
        if ordered[v] || placed != placed_neighbors[v] {
            continue;
        }
        append(
            v,
            &mut order,
            &mut ordered,
            &mut placed_neighbors,
            &mut heap,
        );
    }
    debug_assert_eq!(order.len(), n);
    let mut position = vec![0usize; n];
    for (depth, &v) in order.iter().enumerate() {
        position[v] = depth;
    }

    // Lower-bound bookkeeping: only cliques that can force conflicts (more
    // vertices than colors) are tracked.  Memberships are a flat CSR — the
    // expansion caps every vertex at two cliques.
    let mut member_counts = vec![0usize; n];
    let mut remaining = Vec::new();
    let mut clique_lb = Vec::new();
    let mut tracked: Vec<&[usize]> = Vec::new();
    for clique in &cover {
        if clique.len() > k {
            tracked.push(clique);
            for &v in clique {
                member_counts[v] += 1;
            }
            remaining.push(clique.len());
            clique_lb.push(clique_conflict_bound(clique.len(), k));
        }
    }
    let mut member_offsets = vec![0usize; n + 1];
    for v in 0..n {
        member_offsets[v + 1] = member_offsets[v] + member_counts[v];
    }
    let mut memberships = vec![0usize; member_offsets[n]];
    {
        let mut cursor = member_offsets.clone();
        for (id, clique) in tracked.iter().enumerate() {
            for &v in *clique {
                memberships[cursor[v]] = id;
                cursor[v] += 1;
            }
        }
    }
    // Overlap-correction pairs: tracked cliques sharing `s ≥ 2` vertices
    // may double-count uncolored shared pairs, but only the pairs whose
    // conflict edge is *simple* — a parallel pair costs one unit per edge
    // copy when monochromatic, covering both cliques' claims.  The root
    // bound subtracts `min(e, C(s, 2))` per pair, where `e` counts the
    // simple shared pairs (single-vertex overlaps share no edge and need
    // no correction).  Each vertex is in at most two tracked cliques, so
    // it belongs to at most one pair.
    let mut shared: std::collections::HashMap<(usize, usize), Vec<usize>> =
        std::collections::HashMap::new();
    for v in 0..n {
        if member_counts[v] == 2 {
            let a = memberships[member_offsets[v]];
            let b = memberships[member_offsets[v] + 1];
            shared.entry((a.min(b), a.max(b))).or_default().push(v);
        }
    }
    let correctable_of = |members: &[usize]| -> usize {
        let mut count = 0usize;
        for (index, &u) in members.iter().enumerate() {
            for &v in &members[index + 1..] {
                if multiplicity
                    .get(&(u.min(v), u.max(v)))
                    .is_none_or(|&edges| edges == 1)
                {
                    count += 1;
                }
            }
        }
        count
    };
    let mut pair_keys: Vec<(usize, usize)> = shared
        .iter()
        .filter(|&(_, members)| members.len() >= 2 && correctable_of(members) > 0)
        .map(|(&key, _)| key)
        .collect();
    pair_keys.sort_unstable();
    let pair_ids: std::collections::HashMap<(usize, usize), usize> = pair_keys
        .iter()
        .enumerate()
        .map(|(id, &key)| (key, id))
        .collect();
    let pair_shared: Vec<usize> = pair_keys.iter().map(|key| shared[key].len()).collect();
    let pair_correctable: Vec<usize> = pair_keys
        .iter()
        .map(|key| correctable_of(&shared[key]))
        .collect();
    let pair_correction: f64 = pair_shared
        .iter()
        .zip(&pair_correctable)
        .map(|(&s, &e)| e.min(s * (s - 1) / 2) as f64)
        .sum();
    let mut pair_of = vec![usize::MAX; n];
    for v in 0..n {
        if member_counts[v] == 2 {
            let a = memberships[member_offsets[v]];
            let b = memberships[member_offsets[v] + 1];
            if let Some(&pair) = pair_ids.get(&(a.min(b), a.max(b))) {
                pair_of[v] = pair;
            }
        }
    }
    let pair_assigned = vec![0usize; pair_keys.len()];
    let clique_counts = vec![0usize; remaining.len() * k];
    let initial_bound: f64 = clique_lb.iter().sum::<f64>() - pair_correction;

    // Incumbent: warm start if provided, otherwise a greedy coloring in the
    // branch order.
    let warm = options.warm_start.clone().unwrap_or_else(|| {
        let mut colors = vec![0u8; n];
        let mut penalty = vec![0.0f64; k];
        for &v in &order {
            penalty.iter_mut().for_each(|slot| *slot = 0.0);
            for &entry in &incident[inc_offsets[v]..inc_offsets[v + 1]] {
                let neighbor = entry >> 1;
                if position[neighbor] < position[v] {
                    if entry & 1 == 1 {
                        penalty[colors[neighbor] as usize] += 1.0;
                    } else {
                        let keep = colors[neighbor] as usize;
                        for (color, slot) in penalty.iter_mut().enumerate() {
                            if color != keep {
                                *slot += instance.alpha();
                            }
                        }
                    }
                }
            }
            let best = penalty
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(c, _)| c)
                .unwrap_or(0);
            colors[v] = best as u8;
        }
        colors
    });
    let (_, _, warm_cost) = instance.evaluate(&warm);

    let mut searcher = Searcher {
        instance,
        inc_offsets,
        incident,
        order,
        position,
        member_offsets,
        memberships,
        remaining,
        clique_counts,
        clique_lb,
        pair_of,
        pair_shared,
        pair_correctable,
        pair_assigned,
        fill_scratch: Vec::with_capacity(k),
        best_cost: warm_cost + 1e-9,
        best_colors: warm.clone(),
        nodes: 0,
        deadline: options.time_limit.map(|limit| Instant::now() + limit),
        timed_out: false,
        cancel: options.cancel.as_ref(),
        cancelled: options
            .cancel
            .as_ref()
            .is_some_and(|probe| probe.should_stop(Instant::now())),
    };
    let mut colors = vec![0u8; n];
    searcher.search(0, &mut colors, 0.0, initial_bound, 0);

    let best = searcher.best_colors;
    let (conflicts, stitches, cost) = instance.evaluate(&best);
    ExactSolution {
        colors: best,
        conflicts,
        stitches,
        cost,
        proven_optimal: !searcher.timed_out && !searcher.cancelled,
        hit_time_limit: searcher.timed_out,
        cancelled: searcher.cancelled,
        nodes: searcher.nodes,
        bound_improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize, k: usize) -> ColoringInstance {
        let mut instance = ColoringInstance::new(n, k);
        for i in 0..n {
            for j in (i + 1)..n {
                instance.add_conflict(i, j);
            }
        }
        instance
    }

    #[test]
    fn empty_instance_is_trivially_optimal() {
        let solution = solve_exact(&ColoringInstance::new(0, 4), &ExactOptions::default());
        assert_eq!(solution.cost, 0.0);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn k4_is_four_colorable_without_conflicts() {
        let solution = solve_exact(&clique(4, 4), &ExactOptions::default());
        assert_eq!(solution.conflicts, 0);
        assert!(solution.proven_optimal);
        // All four colors must be distinct.
        let mut seen = solution.colors.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn k5_under_four_colors_has_exactly_one_conflict() {
        let solution = solve_exact(&clique(5, 4), &ExactOptions::default());
        assert_eq!(solution.conflicts, 1);
        assert_eq!(solution.stitches, 0);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn k6_under_four_colors_has_three_conflicts() {
        // K6 with 4 colors: the best partition is 2+2+1+1, giving C(2,2)*2 = 2
        // monochromatic edges... actually 2 pairs of doubled colors -> 2
        // conflicts; verify against brute force below.
        let instance = clique(6, 4);
        let solution = solve_exact(&instance, &ExactOptions::default());
        let brute = brute_force(&instance);
        assert_eq!(solution.cost, brute);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn k5_under_five_colors_is_clean() {
        let solution = solve_exact(&clique(5, 5), &ExactOptions::default());
        assert_eq!(solution.conflicts, 0);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn stitch_edges_prefer_same_color() {
        let mut instance = ColoringInstance::new(3, 4);
        instance.add_stitch(0, 1);
        instance.add_stitch(1, 2);
        let solution = solve_exact(&instance, &ExactOptions::default());
        assert_eq!(solution.stitches, 0);
        assert_eq!(solution.colors[0], solution.colors[1]);
        assert_eq!(solution.colors[1], solution.colors[2]);
    }

    #[test]
    fn stitch_is_used_when_it_avoids_a_conflict() {
        // Vertices 0 and 1 are two halves of a wire (stitch edge); 0
        // conflicts with 2, 3, 4 and 1 conflicts with 5, 6, 7; together with
        // cross conflicts the wire cannot keep a single color for free.
        let mut instance = ColoringInstance::new(5, 2).with_alpha(0.1);
        // Two colors only: 0-1 stitch, 0 conflicts with 2, 1 conflicts with 3,
        // and 2-3 must also differ from each other ... construct an odd cycle
        // that forces the stitch: 0-2 conflict, 2-3 conflict, 3-1 conflict,
        // and 0-3 conflict.
        instance.add_stitch(0, 1);
        instance.add_conflict(0, 2);
        instance.add_conflict(2, 3);
        instance.add_conflict(3, 1);
        instance.add_conflict(0, 3);
        instance.add_conflict(2, 4);
        instance.add_conflict(3, 4);
        let solution = solve_exact(&instance, &ExactOptions::default());
        let brute = brute_force(&instance);
        assert!((solution.cost - brute).abs() < 1e-9);
        assert!(solution.proven_optimal);
    }

    #[test]
    fn evaluate_reports_components() {
        let mut instance = ColoringInstance::new(4, 4);
        instance.add_conflict(0, 1);
        instance.add_stitch(2, 3);
        let (conflicts, stitches, cost) = instance.evaluate(&[1, 1, 0, 2]);
        assert_eq!(conflicts, 1);
        assert_eq!(stitches, 1);
        assert!((cost - 1.1).abs() < 1e-9);
    }

    #[test]
    fn warm_start_bounds_the_search() {
        let mut instance = clique(5, 4);
        instance.add_stitch(0, 1);
        let warm = vec![0, 1, 2, 3, 0];
        let with_warm = solve_exact(
            &instance,
            &ExactOptions {
                warm_start: Some(warm),
                ..ExactOptions::default()
            },
        );
        let without = solve_exact(&instance, &ExactOptions::default());
        assert!((with_warm.cost - without.cost).abs() < 1e-9);
    }

    #[test]
    fn time_limit_zero_returns_the_warm_start_unproven() {
        let instance = clique(9, 4);
        let solution = solve_exact(
            &instance,
            &ExactOptions {
                time_limit: Some(Duration::from_secs(0)),
                ..ExactOptions::default()
            },
        );
        // The greedy incumbent is still a valid coloring.
        assert_eq!(solution.colors.len(), 9);
        // With a zero budget the proof of optimality is abandoned quickly;
        // the solver may still finish tiny instances before the first clock
        // check, so only the solution validity is asserted here.
        let (c, s, cost) = instance.evaluate(&solution.colors);
        assert_eq!((c, s), (solution.conflicts, solution.stitches));
        assert!((cost - solution.cost).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..10 {
            let n = 5 + (case % 3);
            let k = 3 + (case % 3);
            let mut instance = ColoringInstance::new(n, k);
            for i in 0..n {
                for j in (i + 1)..n {
                    match next() % 10 {
                        0..=4 => instance.add_conflict(i, j),
                        5 => instance.add_stitch(i, j),
                        _ => {}
                    }
                }
            }
            let exact = solve_exact(&instance, &ExactOptions::default());
            let brute = brute_force(&instance);
            assert!(
                (exact.cost - brute).abs() < 1e-9,
                "case {case}: exact {} vs brute {}",
                exact.cost,
                brute
            );
            assert!(exact.proven_optimal);
        }
    }

    /// Exhaustive reference: minimum cost over all k^n colorings.
    fn brute_force(instance: &ColoringInstance) -> f64 {
        let n = instance.vertex_count();
        let k = instance.k();
        let mut best = f64::INFINITY;
        let mut colors = vec![0u8; n];
        loop {
            let (_, _, cost) = instance.evaluate(&colors);
            best = best.min(cost);
            // Increment the mixed-radix counter.
            let mut index = 0;
            loop {
                if index == n {
                    return best;
                }
                colors[index] += 1;
                if (colors[index] as usize) < k {
                    break;
                }
                colors[index] = 0;
                index += 1;
            }
        }
    }

    #[test]
    fn cost_parity_with_brute_force_on_random_stitched_instances() {
        // The cost-parity property behind the PR-5 pruning overhaul: on a
        // seed-equivalent stream of random instances (mixed conflicts and
        // stitches, varying K and α), the pruned branch and bound must find
        // exactly the brute-force optimum and prove it.
        let mut seed: u64 = 0xC0FFEE5EED5EED01;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..25 {
            let n = 4 + (case % 5);
            let k = 2 + (case % 4);
            let alpha = [0.1, 0.3, 1.0][case % 3];
            let mut instance = ColoringInstance::new(n, k).with_alpha(alpha);
            for i in 0..n {
                for j in (i + 1)..n {
                    match next() % 10 {
                        0..=4 => instance.add_conflict(i, j),
                        5 | 6 => instance.add_stitch(i, j),
                        _ => {}
                    }
                }
            }
            let exact = solve_exact(&instance, &ExactOptions::default());
            let brute = brute_force(&instance);
            assert!(
                (exact.cost - brute).abs() < 1e-9,
                "case {case}: pruned search {} vs brute force {}",
                exact.cost,
                brute
            );
            assert!(exact.proven_optimal, "case {case}");
            assert!(!exact.hit_time_limit, "case {case}");
        }
    }

    #[test]
    fn dense_cliques_close_at_the_root() {
        // The greedy warm start is optimal on a clique and the clique-cover
        // lower bound matches it, so the search proves optimality without
        // branching — the pruning win the perf suite pins (the seed solver
        // expanded 10^5-10^6 nodes on these).
        for n in [8usize, 10, 12] {
            let solution = solve_exact(&clique(n, 4), &ExactOptions::default());
            assert_eq!(solution.nodes, 1, "K{n}");
            assert!(solution.proven_optimal);
            let brute_optimum = clique_conflict_bound(n, 4);
            assert!((solution.cost - brute_optimum).abs() < 1e-9);
        }
    }

    #[test]
    fn overlapping_k7s_close_at_the_root() {
        // Two K7s sharing vertices {5, 6}: a vertex-disjoint cover sees at
        // best one K7 plus a disjoint K5 (bound 3 + 1 = 4, or 5 after one
        // expansion), while the optimum is 6 — the shared pair's edge is
        // added once per clique, so a monochromatic (5, 6) pays twice.
        // The expansion absorbs both shared vertices into the second
        // clique (the parallel edge is never double-counted, so the
        // overlap penalty is zero) and the root bound reaches the optimum:
        // the search closes immediately.  Before the expanded-cover bound
        // this instance expanded roughly 2·10^5 nodes.
        let mut instance = ColoringInstance::new(12, 4);
        for clique in [(0..7).collect::<Vec<_>>(), (5..12).collect::<Vec<_>>()] {
            for (position, &u) in clique.iter().enumerate() {
                for &v in &clique[position + 1..] {
                    instance.add_conflict(u.min(v), u.max(v));
                }
            }
        }
        let solution = solve_exact(&instance, &ExactOptions::default());
        assert!(solution.proven_optimal);
        assert_eq!(solution.conflicts, 6);
        assert_eq!(solution.nodes, 1);
        assert!(solution.bound_improvements >= 2);
    }

    #[test]
    fn hit_time_limit_is_the_negation_of_proven_optimal() {
        // A dense pseudo-random graph is hard enough to outlive a zero
        // budget past the first 1024-node clock check (two overlapping K7s
        // no longer qualify — the expanded clique cover closes them at the
        // root).
        let mut instance = ColoringInstance::new(18, 4);
        let mut state = 0x243F6A8885A308D3u64;
        for u in 0..18 {
            for v in (u + 1)..18 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 33) % 1000 < 550 {
                    instance.add_conflict(u, v);
                }
            }
        }
        let truncated = solve_exact(
            &instance,
            &ExactOptions {
                time_limit: Some(Duration::from_secs(0)),
                ..ExactOptions::default()
            },
        );
        assert!(truncated.hit_time_limit);
        assert!(!truncated.proven_optimal);
        // The incumbent is still a valid full coloring.
        let (c, s, cost) = instance.evaluate(&truncated.colors);
        assert_eq!((c, s), (truncated.conflicts, truncated.stitches));
        assert!((cost - truncated.cost).abs() < 1e-9);

        let full = solve_exact(&instance, &ExactOptions::default());
        assert!(full.proven_optimal);
        assert!(!full.hit_time_limit);
    }

    /// The dense pseudo-random instance of the time-limit test: hard enough
    /// that an unrestricted solve explores well past one clock-check batch.
    fn dense_random_instance() -> ColoringInstance {
        let mut instance = ColoringInstance::new(18, 4);
        let mut state = 0x243F6A8885A308D3u64;
        for u in 0..18 {
            for v in (u + 1)..18 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 33) % 1000 < 550 {
                    instance.add_conflict(u, v);
                }
            }
        }
        instance
    }

    #[test]
    fn pre_set_cancel_probe_stops_within_one_poll_batch() {
        let instance = dense_random_instance();
        let full = solve_exact(&instance, &ExactOptions::default());
        assert!(
            full.nodes > 2 * TIME_CHECK_INTERVAL,
            "instance must outlive several poll batches, took {} nodes",
            full.nodes
        );

        let probe = CancelProbe::default();
        probe.flag.store(true, Ordering::Relaxed);
        let cancelled = solve_exact(
            &instance,
            &ExactOptions {
                cancel: Some(probe),
                ..ExactOptions::default()
            },
        );
        assert!(cancelled.cancelled);
        assert!(!cancelled.proven_optimal);
        assert!(!cancelled.hit_time_limit, "cancel is not a time limit");
        // Work-counter bound: a pre-set flag is observed before the first
        // poll batch completes, so the overshoot is at most one batch.
        assert!(
            cancelled.nodes <= TIME_CHECK_INTERVAL,
            "cancelled after {} nodes",
            cancelled.nodes
        );
        // The incumbent (greedy warm start) is still a valid full coloring.
        let (c, s, cost) = instance.evaluate(&cancelled.colors);
        assert_eq!((c, s), (cancelled.conflicts, cancelled.stitches));
        assert!((cost - cancelled.cost).abs() < 1e-9);
    }

    #[test]
    fn probe_deadline_is_promoted_into_the_shared_flag() {
        let instance = dense_random_instance();
        let probe = CancelProbe {
            deadline: Some(Instant::now()),
            ..CancelProbe::default()
        };
        let solution = solve_exact(
            &instance,
            &ExactOptions {
                cancel: Some(probe.clone()),
                ..ExactOptions::default()
            },
        );
        assert!(solution.cancelled);
        // The solver promotes an observed deadline into the shared flag so
        // sibling solves (and the owning request) see the stop immediately.
        assert!(probe.stop_requested());
    }

    #[test]
    fn unfired_cancel_probe_changes_nothing() {
        let instance = dense_random_instance();
        let plain = solve_exact(&instance, &ExactOptions::default());
        let probed = solve_exact(
            &instance,
            &ExactOptions {
                cancel: Some(CancelProbe::default()),
                ..ExactOptions::default()
            },
        );
        assert!(!probed.cancelled);
        assert!(probed.proven_optimal);
        assert_eq!(plain.colors, probed.colors);
        assert_eq!(plain.nodes, probed.nodes);
    }

    #[test]
    fn clique_bound_table_is_exact() {
        // c = qK + r ⇒ r classes of q+1 and K−r classes of q.
        assert_eq!(clique_conflict_bound(4, 4), 0.0);
        assert_eq!(clique_conflict_bound(5, 4), 1.0);
        assert_eq!(clique_conflict_bound(6, 4), 2.0);
        assert_eq!(clique_conflict_bound(7, 4), 3.0);
        assert_eq!(clique_conflict_bound(8, 4), 4.0);
        assert_eq!(clique_conflict_bound(9, 4), 6.0);
        assert_eq!(clique_conflict_bound(3, 5), 0.0);
        // 11 = 2·5 + 1 ⇒ one class of 3 and four of 2: C(3,2) + 4·C(2,2).
        assert_eq!(clique_conflict_bound(11, 5), 7.0);
    }

    #[test]
    fn min_fill_prefers_empty_then_smallest_classes() {
        // Three classes sized 2, 0, 1: four extra members go 0→1→1→2
        // (costs 0, 1, 1, 2 would be wrong — greedy: 0, 1, 1, then the two
        // filled classes tie at 2 ... enumerate: sizes [2,0,1], add 4:
        // min=0 (cost 0 → [2,1,1]), min=1 (cost 1 → [2,2,1]), min=1
        // (cost 1 → [2,2,2]), min=2 (cost 2) = 4 total.
        assert_eq!(min_fill_conflicts(&mut [2, 0, 1], 4), 4.0);
        assert_eq!(min_fill_conflicts(&mut [0, 0, 0, 0], 4), 0.0);
        assert_eq!(min_fill_conflicts(&mut [1, 1, 1, 1], 4), 4.0);
        assert_eq!(min_fill_conflicts(&mut [3, 3], 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn zero_colors_panics() {
        let _ = ColoringInstance::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "coloring length mismatch")]
    fn evaluate_rejects_wrong_length() {
        let instance = ColoringInstance::new(3, 4);
        let _ = instance.evaluate(&[0, 1]);
    }
}
