//! Full-flow walkthrough on one benchmark circuit: generate the synthetic
//! layout, build the decomposition graph, report the graph-division
//! statistics, run all four color-assignment engines and compare them —
//! a single-circuit slice of the paper's Table 1.
//!
//! Run with: `cargo run --release --example full_flow_benchmark [CIRCUIT]`

use mpl_core::{
    ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionGraph, ResultRow, StitchConfig,
    TableReport,
};
use mpl_layout::{gen::IscasCircuit, io, Technology};
use std::time::Duration;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "C5315".to_string());
    let circuit = IscasCircuit::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(&name))
        .unwrap_or(IscasCircuit::C5315);
    let tech = Technology::nm20();
    let layout = circuit.generate(&tech);
    let stats = layout.stats();
    println!("circuit {}: {}", circuit.name(), stats);

    // The layout can be serialised for inspection with external tools.
    let text = io::to_text(&layout);
    println!("layout text serialisation: {} bytes", text.len());

    // Decomposition-graph statistics.
    let graph = DecompositionGraph::build(&layout, &tech, 4, &StitchConfig::default());
    let components = graph.independent_components();
    let largest = components.iter().map(Vec::len).max().unwrap_or(0);
    println!(
        "decomposition graph: {} vertices, {} conflict edges, {} stitch edges, {} components (largest {})",
        graph.vertex_count(),
        graph.conflict_edges().len(),
        graph.stitch_edges().len(),
        components.len(),
        largest
    );

    // One Table-1 row per engine.
    let mut report = TableReport::new();
    for algorithm in ColorAlgorithm::ALL {
        let config = DecomposerConfig::quadruple(tech)
            .with_algorithm(algorithm)
            .with_ilp_time_limit(Duration::from_secs(10));
        let result = Decomposer::new(config).decompose(&layout);
        report.push(ResultRow::from_result(&result));
    }
    println!("\n{report}");
}
