//! Full-flow walkthrough on one benchmark circuit: generate the synthetic
//! layout, plan the decomposition (graph construction + component tasks),
//! execute the plan with both the serial and the thread-pool executor, and
//! compare all four color-assignment engines — a single-circuit slice of
//! the paper's Table 1, staged through the plan → execute API.
//!
//! Run with: `cargo run --release --example full_flow_benchmark [CIRCUIT]`

use mpl_core::{
    ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionSession, ResultRow, SerialExecutor,
    TableReport, ThreadPoolExecutor,
};
use mpl_layout::{gen::IscasCircuit, io, Technology};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "C5315".to_string());
    let circuit = IscasCircuit::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(&name))
        .unwrap_or(IscasCircuit::C5315);
    let tech = Technology::nm20();
    let layout = circuit.generate(&tech);
    let stats = layout.stats();
    println!("circuit {}: {}", circuit.name(), stats);

    // The layout can be serialised for inspection with external tools.
    let text = io::to_text(&layout);
    println!("layout text serialisation: {} bytes", text.len());

    // Stage 1: plan — decomposition-graph statistics come from the plan.
    let planner =
        Decomposer::new(DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::Linear));
    let plan = planner.plan(&layout)?;
    let graph = plan.graph();
    let largest = plan
        .tasks()
        .iter()
        .map(|task| task.vertex_count())
        .max()
        .unwrap_or(0);
    println!(
        "decomposition graph: {} vertices, {} conflict edges, {} stitch edges, {} components (largest {})",
        graph.vertex_count(),
        graph.conflict_edges().len(),
        graph.stitch_edges().len(),
        plan.tasks().len(),
        largest
    );

    // Stage 2: serial and thread-pool executors agree bit for bit.
    let serial = plan.execute(&SerialExecutor);
    let pool = ThreadPoolExecutor::new(4)?;
    let parallel = plan.execute(&pool);
    assert_eq!(serial.colors(), parallel.colors());
    println!(
        "executors agree: {} conflicts each (serial {:.3}s vs {} {:.3}s)",
        serial.conflicts(),
        serial.color_time().as_secs_f64(),
        parallel.executor(),
        parallel.color_time().as_secs_f64()
    );

    // One Table-1 row per engine, each plan executed by itself so the
    // CPU(s) column stays a per-engine measurement.
    let mut plans = Vec::new();
    for algorithm in ColorAlgorithm::ALL {
        let config = DecomposerConfig::quadruple(tech)
            .with_algorithm(algorithm)
            .with_ilp_time_limit(Duration::from_secs(10));
        plans.push(Decomposer::new(config).plan(&layout)?);
    }
    let mut report = TableReport::new();
    for plan in &plans {
        report.push(ResultRow::from_result(&plan.execute(&pool)));
    }
    println!("\n{report}");

    // The same four plans can also drain as ONE batch: a session
    // interleaves every plan's component tasks in one largest-first queue
    // on the shared pool (each task carries its own plan's engine), and
    // every plan's conflicts/stitches come back unchanged bit for bit.
    let mut session = DecompositionSession::new();
    for plan in plans {
        session.submit(plan);
    }
    let batch_start = std::time::Instant::now();
    let batched = session.run(&pool);
    println!(
        "batch: {} plans ({} component tasks) drained in {:.3}s on one shared pool",
        session.layout_count(),
        session.task_count(),
        batch_start.elapsed().as_secs_f64()
    );
    for ((_, result), row) in batched.iter().zip(report.rows()) {
        assert_eq!(result.conflicts(), row.conflicts);
        assert_eq!(result.stitches(), row.stitches);
    }
    Ok(())
}
