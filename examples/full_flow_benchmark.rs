//! Full-flow walkthrough on one benchmark circuit: generate the synthetic
//! layout, plan the decomposition (graph construction + component tasks),
//! execute the plan with both the serial and the thread-pool executor, and
//! compare all four color-assignment engines — a single-circuit slice of
//! the paper's Table 1, staged through the plan → execute API.
//!
//! Run with: `cargo run --release --example full_flow_benchmark [CIRCUIT]`

use mpl_core::{
    ColorAlgorithm, Decomposer, DecomposerConfig, ResultRow, SerialExecutor, TableReport,
    ThreadPoolExecutor,
};
use mpl_layout::{gen::IscasCircuit, io, Technology};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "C5315".to_string());
    let circuit = IscasCircuit::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(&name))
        .unwrap_or(IscasCircuit::C5315);
    let tech = Technology::nm20();
    let layout = circuit.generate(&tech);
    let stats = layout.stats();
    println!("circuit {}: {}", circuit.name(), stats);

    // The layout can be serialised for inspection with external tools.
    let text = io::to_text(&layout);
    println!("layout text serialisation: {} bytes", text.len());

    // Stage 1: plan — decomposition-graph statistics come from the plan.
    let planner =
        Decomposer::new(DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::Linear));
    let plan = planner.plan(&layout)?;
    let graph = plan.graph();
    let largest = plan
        .tasks()
        .iter()
        .map(|task| task.vertex_count())
        .max()
        .unwrap_or(0);
    println!(
        "decomposition graph: {} vertices, {} conflict edges, {} stitch edges, {} components (largest {})",
        graph.vertex_count(),
        graph.conflict_edges().len(),
        graph.stitch_edges().len(),
        plan.tasks().len(),
        largest
    );

    // Stage 2: serial and thread-pool executors agree bit for bit.
    let serial = plan.execute(&SerialExecutor);
    let pool = ThreadPoolExecutor::new(4)?;
    let parallel = plan.execute(&pool);
    assert_eq!(serial.colors(), parallel.colors());
    println!(
        "executors agree: {} conflicts each (serial {:.3}s vs {} {:.3}s)",
        serial.conflicts(),
        serial.color_time().as_secs_f64(),
        parallel.executor(),
        parallel.color_time().as_secs_f64()
    );

    // One Table-1 row per engine.
    let mut report = TableReport::new();
    for algorithm in ColorAlgorithm::ALL {
        let config = DecomposerConfig::quadruple(tech)
            .with_algorithm(algorithm)
            .with_ilp_time_limit(Duration::from_secs(10));
        let result = Decomposer::new(config).plan(&layout)?.execute(&pool);
        report.push(ResultRow::from_result(&result));
    }
    println!("\n{report}");
    Ok(())
}
