//! Quickstart: build a tiny layout by hand, plan its decomposition for
//! quadruple patterning, execute the plan, and print the resulting mask
//! assignment.
//!
//! Run with: `cargo run --release --example quickstart`

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig, SerialExecutor};
use mpl_geometry::{Nm, Rect};
use mpl_layout::{Layout, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20 nm half-pitch technology: minimum width and spacing are 20 nm,
    // and the quadruple-patterning coloring distance is 80 nm.
    let tech = Technology::nm20();

    // A hand-built layout: a 2x2 contact cluster (the Fig. 1 pattern that
    // triple patterning cannot decompose) plus a wire running past it.
    let mut builder = Layout::builder("quickstart");
    for (x, y) in [(0, 0), (40, 0), (0, 40), (40, 40)] {
        builder.add_contact(Nm(x), Nm(y), tech.min_width());
    }
    builder.add_rect(Rect::new(Nm(-200), Nm(120), Nm(260), Nm(140)));
    let layout = builder.build();

    // Stage 1: plan. The plan exposes the decomposition graph and the
    // independent component tasks before any coloring happens.
    let config = DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::SdpBacktrack);
    let decomposer = Decomposer::new(config);
    let plan = decomposer.plan(&layout)?;
    let graph = plan.graph();
    println!(
        "plan: {} vertices, {} conflict edges, {} stitch edges, {} independent component(s)",
        graph.vertex_count(),
        graph.conflict_edges().len(),
        graph.stitch_edges().len(),
        plan.tasks().len()
    );
    for task in plan.tasks() {
        println!(
            "  task {}: {} vertices, {} conflict edges",
            task.index(),
            task.vertex_count(),
            task.problem().conflict_edges().len()
        );
    }

    // Stage 2: execute — the degenerate one-plan batch (see
    // full_flow_benchmark for the thread-pool executor and
    // batch_throughput for batching many layouts through one
    // DecompositionSession).
    let result = plan.execute(&SerialExecutor);

    println!(
        "{}: {} conflicts, {} stitches (K = {})",
        result.layout_name(),
        result.conflicts(),
        result.stitches(),
        result.k()
    );
    for (vertex, color) in result.colors().iter().enumerate() {
        println!("  vertex {vertex} -> mask {color}");
    }

    // The result can split the geometry into one layout per mask.
    for mask in result.mask_layouts() {
        println!("  {mask}");
    }
    Ok(())
}
