//! Quickstart: build a tiny layout by hand, decompose it for quadruple
//! patterning, and print the resulting mask assignment.
//!
//! Run with: `cargo run --release --example quickstart`

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionGraph, StitchConfig};
use mpl_geometry::{Nm, Rect};
use mpl_layout::{Layout, Technology};

fn main() {
    // A 20 nm half-pitch technology: minimum width and spacing are 20 nm,
    // and the quadruple-patterning coloring distance is 80 nm.
    let tech = Technology::nm20();

    // A hand-built layout: a 2x2 contact cluster (the Fig. 1 pattern that
    // triple patterning cannot decompose) plus a wire running past it.
    let mut builder = Layout::builder("quickstart");
    for (x, y) in [(0, 0), (40, 0), (0, 40), (40, 40)] {
        builder.add_contact(Nm(x), Nm(y), tech.min_width());
    }
    builder.add_rect(Rect::new(Nm(-200), Nm(120), Nm(260), Nm(140)));
    let layout = builder.build();

    // Inspect the decomposition graph first.
    let graph = DecompositionGraph::build(&layout, &tech, 4, &StitchConfig::default());
    println!(
        "decomposition graph: {} vertices, {} conflict edges, {} stitch edges",
        graph.vertex_count(),
        graph.conflict_edges().len(),
        graph.stitch_edges().len()
    );

    // Decompose with the SDP + backtracking engine (the paper's flagship).
    let config = DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::SdpBacktrack);
    let result = Decomposer::new(config).decompose(&layout);

    println!(
        "{}: {} conflicts, {} stitches (K = {})",
        result.layout_name(),
        result.conflicts(),
        result.stitches(),
        result.k()
    );
    for (vertex, color) in result.colors().iter().enumerate() {
        println!("  vertex {vertex} -> mask {color}");
    }
}
