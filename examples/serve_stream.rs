//! The streaming decomposition service, end to end in one process: spawn a
//! [`Server`] on an ephemeral port, stream several `submit` requests over
//! TCP with different engines and executors, watch per-component progress
//! frames arrive, and verify every served coloring against a direct
//! in-process run.
//!
//! This is the same wire protocol `qpl-serve` exposes; the in-process
//! spawn just makes the example self-contained (point a real deployment's
//! clients at `qpl-serve --addr HOST:PORT` instead, or use
//! `qpl-decompose --connect`).
//!
//! Run with: `cargo run --release --example serve_stream [COUNT]`

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig};
use mpl_layout::{gen, io, Technology};
use mpl_serve::{
    Client, ExecutorChoice, LayoutSource, Request, Response, Server, ServerConfig, SubmitRequest,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count: usize = std::env::args()
        .nth(1)
        .map(|value| value.parse())
        .transpose()?
        .unwrap_or(4);
    let tech = Technology::nm20();

    let handle = Server::spawn(&ServerConfig::default())?;
    println!("server listening on {}", handle.addr());

    // A mixed workload: row layouts plus the paper's contact clique, with
    // per-request engine and executor choices.
    let engines = [ColorAlgorithm::Linear, ColorAlgorithm::SdpBacktrack];
    let layouts: Vec<_> = (0..count)
        .map(|index| {
            if index % 3 == 2 {
                gen::fig1_contact_clique(&tech)
            } else {
                gen::generate_row_layout(
                    &gen::RowLayoutConfig::small(format!("stream-{index}"), index as u64 + 1),
                    &tech,
                )
            }
        })
        .collect();

    let mut client = Client::connect(handle.addr())?;
    for (index, layout) in layouts.iter().enumerate() {
        let mut submit =
            SubmitRequest::new(index.to_string(), LayoutSource::Text(io::to_text(layout)));
        submit.algorithm = engines[index % engines.len()];
        submit.executor = if index % 2 == 0 {
            ExecutorChoice::Pool
        } else {
            ExecutorChoice::Serial
        };
        submit.progress = true;
        submit.verify = true;
        client.send(&Request::Submit(submit))?;
        println!(
            "submitted {index}: {} via {:?}",
            layout.name(),
            engines[index % engines.len()]
        );
    }

    let mut results = vec![None; layouts.len()];
    let mut remaining = layouts.len();
    while remaining > 0 {
        match client.recv()? {
            Response::Queued { id, components, .. } => {
                println!("  queued {id}: {components} components")
            }
            Response::Progress { id, done, total } => {
                println!("  progress {id}: {done}/{total}")
            }
            Response::Result(payload) => {
                println!(
                    "  result {}: {} conflicts, {} stitches on {} ({} spacing violations)",
                    payload.id,
                    payload.conflicts,
                    payload.stitches,
                    payload.executor,
                    payload
                        .spacing_violations
                        .map_or("?".to_string(), |v| v.to_string()),
                );
                let index: usize = payload.id.parse()?;
                results[index] = Some(payload);
                remaining -= 1;
            }
            Response::Error { id, code, message } => {
                return Err(format!("{id:?} failed with {} error: {message}", code.as_str()).into())
            }
            other => println!("  {other:?}"),
        }
    }

    // Every served coloring is bit-identical to a direct in-process run.
    for (index, layout) in layouts.iter().enumerate() {
        let payload = results[index].as_ref().expect("all results collected");
        let direct = Decomposer::new(
            DecomposerConfig::quadruple(tech).with_algorithm(engines[index % engines.len()]),
        )
        .decompose(layout)?;
        assert_eq!(payload.colors, direct.colors(), "layout {index}");
        assert_eq!(payload.conflicts, direct.conflicts(), "layout {index}");
    }
    println!(
        "all {} served results match their direct runs bit for bit",
        layouts.len()
    );

    client.shutdown()?;
    handle.join();
    println!("server shut down cleanly");
    Ok(())
}
