//! Standard-cell contact decomposition: the motivating scenario of the
//! paper's introduction.  Contact layers inside standard cells contain
//! four-clique patterns that triple patterning cannot decompose (Fig. 1);
//! quadruple patterning resolves them, and denser five-contact clusters in
//! turn need a fifth mask.
//!
//! Run with: `cargo run --release --example standard_cell_contacts`

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig};
use mpl_layout::{gen, Technology};

fn main() {
    let tech = Technology::nm20();

    // The Fig. 1 pattern: a 2x2 contact clique.
    let clique = gen::fig1_contact_clique(&tech);
    // A dense five-contact cluster: a K5 under the quadruple-patterning rule.
    let cluster = gen::k5_cluster_layout(&tech);
    // A realistic cell row mixing contacts, wires and one embedded cluster.
    let row = gen::generate_row_layout(&gen::RowLayoutConfig::small("cell-row", 7), &tech);

    println!(
        "{:<12} {:>4} {:>10} {:>10} {:>10}",
        "layout", "K", "shapes", "conflicts", "stitches"
    );
    for layout in [&clique, &cluster, &row] {
        for k in [3usize, 4, 5] {
            let config = DecomposerConfig::k_patterning(k, tech)
                .with_algorithm(ColorAlgorithm::SdpBacktrack);
            let result = Decomposer::new(config)
                .decompose(layout)
                .expect("valid config");
            println!(
                "{:<12} {:>4} {:>10} {:>10} {:>10}",
                layout.name(),
                k,
                layout.shape_count(),
                result.conflicts(),
                result.stitches()
            );
        }
        println!();
    }

    println!("The 2x2 clique needs four masks (one conflict remains with K = 3);");
    println!("the five-contact cluster needs five masks (one conflict remains with K = 4).");
}
