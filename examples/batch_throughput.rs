//! Batch-first execution: decompose a fleet of layouts through one
//! [`DecompositionSession`] on a shared executor and report aggregate
//! throughput (layouts/sec, components/sec).
//!
//! Submitting many small layouts to one session keeps pool workers busy
//! across layout boundaries: every layout's independent components enter a
//! single largest-first queue, so a worker that finishes one chip's last
//! component immediately picks up the next chip's work.  On a single-CPU
//! machine (like the dev container; see `ThreadPoolExecutor::available`)
//! the pool schedules like the serial executor — the point of this example
//! is the *API shape* and the per-layout equality, not a speedup number.
//!
//! Run with: `cargo run --release --example batch_throughput [COUNT]`

use mpl_core::{
    ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionSession, SerialExecutor,
    ThreadPoolExecutor,
};
use mpl_layout::{gen, Technology};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count: usize = std::env::args()
        .nth(1)
        .map(|value| value.parse())
        .transpose()?
        .unwrap_or(6);
    let tech = Technology::nm20();
    let decomposer = Decomposer::new(
        DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::SdpBacktrack),
    );

    // A fleet of small layouts — the workload shape where per-layout
    // parallelism wastes workers and cross-layout batching shines.
    let layouts: Vec<_> = (0..count)
        .map(|index| {
            gen::generate_row_layout(
                &gen::RowLayoutConfig::small(format!("chip-{index}"), index as u64 + 3),
                &tech,
            )
        })
        .collect();

    // Plan and submit everything to one session; ids come back in
    // submission order.
    let mut session = DecompositionSession::new();
    for layout in &layouts {
        session.submit_layout(&decomposer, layout)?;
    }
    println!(
        "session: {} layouts, {} component tasks in one shared queue",
        session.layout_count(),
        session.task_count()
    );

    // Drain the batch once serially and once on a pool sized to the
    // machine; the per-layout results are bit-identical either way.
    let serial_start = Instant::now();
    let serial = session.run(&SerialExecutor);
    let serial_wall = serial_start.elapsed();

    let pool = ThreadPoolExecutor::available();
    let pool_start = Instant::now();
    let pooled = session.run(&pool);
    let pool_wall = pool_start.elapsed();

    println!(
        "{:<10} {:>9} {:>7} {:>5} {:>5} {:>10}",
        "layout", "vertices", "comps", "cn#", "st#", "color(s)"
    );
    for ((id, result), (_, check)) in serial.iter().zip(&pooled) {
        assert_eq!(
            result.colors(),
            check.colors(),
            "{id} diverged across executors"
        );
        println!(
            "{:<10} {:>9} {:>7} {:>5} {:>5} {:>10.4}",
            result.layout_name(),
            result.vertex_count(),
            result.component_count(),
            result.conflicts(),
            result.stitches(),
            result.color_time().as_secs_f64()
        );
    }

    let tasks = session.task_count() as f64;
    println!(
        "serial:        {:>8.3}s ({:.1} layouts/s, {:.1} components/s)",
        serial_wall.as_secs_f64(),
        session.layout_count() as f64 / serial_wall.as_secs_f64().max(1e-12),
        tasks / serial_wall.as_secs_f64().max(1e-12)
    );
    println!(
        "threads:{:<5} {:>8.3}s ({:.1} layouts/s, {:.1} components/s)",
        pool.threads(),
        pool_wall.as_secs_f64(),
        session.layout_count() as f64 / pool_wall.as_secs_f64().max(1e-12),
        tasks / pool_wall.as_secs_f64().max(1e-12)
    );
    Ok(())
}
