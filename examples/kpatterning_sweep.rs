//! General K-patterning sweep (Section 5 of the paper): run the same
//! decomposition flow with K = 3 … 8 masks on one benchmark circuit and
//! watch the conflict count fall as masks are added.
//!
//! Run with: `cargo run --release --example kpatterning_sweep [CIRCUIT]`

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig, ThreadPoolExecutor};
use mpl_layout::{gen::IscasCircuit, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "C6288".to_string());
    let circuit = IscasCircuit::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(&name))
        .unwrap_or(IscasCircuit::C6288);
    let tech = Technology::nm20();
    let layout = circuit.generate(&tech);
    println!(
        "circuit {} ({} shapes), linear color assignment, K = 3..8",
        circuit.name(),
        layout.shape_count()
    );
    println!(
        "{:>3} {:>8} {:>10} {:>10} {:>12}",
        "K", "min_s", "conflicts", "stitches", "CPU(s)"
    );
    // Each K builds its own plan (the coloring distance changes with K);
    // independent components are colored on a small thread pool.
    let pool = ThreadPoolExecutor::new(4)?;
    for k in 3..=8usize {
        let config = DecomposerConfig::k_patterning(k, tech).with_algorithm(ColorAlgorithm::Linear);
        let result = Decomposer::new(config).plan(&layout)?.execute(&pool);
        println!(
            "{:>3} {:>8} {:>10} {:>10} {:>12.3}",
            k,
            tech.coloring_distance(k).to_string(),
            result.conflicts(),
            result.stitches(),
            result.color_time().as_secs_f64()
        );
    }
    Ok(())
}
