//! Property-based tests of the iterated simplification pipeline
//! (simplify → kernel-color → reinsert), checked against the one-shot
//! division path on random layouts:
//!
//! 1. **Spacing consistency** — the simplified coloring answers to the
//!    same geometric checker as any other: every spacing violation is a
//!    counted conflict, and greedy reinsertion never hides one.
//! 2. **No palette waste** — the simplified path never uses more distinct
//!    colors than the unsimplified path on the same layout, for every
//!    engine and both executors.
//! 3. **Trivial fixed point identity** — when simplification finds
//!    nothing to hide and nothing to cut, the coloring is bit-identical
//!    to the run with `iterated_simplify` disabled (the code falls
//!    through to the very same one-shot path).

use mpl_core::{
    verify_spacing, ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionResult,
    DecompositionSession, DivisionConfig, Executor, SerialExecutor, ThreadPoolExecutor,
};
use mpl_geometry::Nm;
use mpl_layout::{Layout, Technology};
use proptest::prelude::*;

/// Grid features (contact or short wire) on a 40×60 nm step — the same
/// generator the tile and memo properties use, dense enough that
/// neighbouring features conflict and simplification finds work.
fn layout_from(features: &[(i64, i64, bool)], name: &str) -> Layout {
    let mut builder = Layout::builder(name);
    for &(gx, gy, is_wire) in features {
        let x = Nm(gx * 40);
        let y = Nm(gy * 60);
        if is_wire {
            builder.add_rect(mpl_geometry::Rect::new(x, y, x + Nm(140), y + Nm(20)));
        } else {
            builder.add_contact(x, y, Nm(20));
        }
    }
    builder.build()
}

fn arb_features() -> impl Strategy<Value = Vec<(i64, i64, bool)>> {
    prop::collection::vec((0i64..14, 0i64..6, prop::bool::weighted(0.25)), 1..32)
}

const ENGINES: [ColorAlgorithm; 4] = [
    ColorAlgorithm::Ilp,
    ColorAlgorithm::SdpBacktrack,
    ColorAlgorithm::SdpGreedy,
    ColorAlgorithm::Linear,
];

/// Runs `layout` with or without iterated simplification and returns the
/// result plus the spacing-violation count of its coloring under the
/// independent geometric checker.
fn outcome(
    layout: &Layout,
    algorithm: ColorAlgorithm,
    executor: &dyn Executor,
    simplify: bool,
) -> (DecompositionResult, usize) {
    let division = DivisionConfig {
        iterated_simplify: simplify,
        ..DivisionConfig::default()
    };
    let config = DecomposerConfig::quadruple(Technology::nm20())
        .with_algorithm(algorithm)
        .with_division(division);
    let decomposer = Decomposer::new(config);
    let mut session = DecompositionSession::new();
    let id = session
        .submit_layout(&decomposer, layout)
        .expect("valid config");
    let results = session.run(executor);
    let plan = session.plan(id).expect("plan retained");
    let (_, result) = results.into_iter().next().expect("one layout");
    let violations = verify_spacing(
        plan.graph(),
        result.colors(),
        Technology::nm20().coloring_distance(4),
    )
    .len();
    (result, violations)
}

fn distinct_colors(colors: &[u8]) -> usize {
    let mut seen = [false; 256];
    for &color in colors {
        seen[color as usize] = true;
    }
    seen.iter().filter(|&&used| used).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn simplified_colorings_match_the_one_shot_path(features in arb_features()) {
        let layout = layout_from(&features, "simplify-prop");
        let pool = ThreadPoolExecutor::new(2).expect("two threads");
        for algorithm in ENGINES {
            let executors: [&dyn Executor; 2] = [&SerialExecutor, &pool];
            for executor in executors {
                let (simplified, violations) = outcome(&layout, algorithm, executor, true);
                let (one_shot, _) = outcome(&layout, algorithm, executor, false);

                // Spacing-clean: reinsertion can never hide a violation
                // from the geometric checker.
                prop_assert_eq!(
                    violations,
                    simplified.conflicts(),
                    "algorithm {:?}: simplified coloring has {} spacing violations but reports {} conflicts",
                    algorithm, violations, simplified.conflicts()
                );
                prop_assert!(simplified.colors().iter().all(|&c| (c as usize) < 4));

                // The kernel pipeline never wastes palette: reinsertion
                // always has a free color (< K constrained neighbours),
                // so it cannot be forced past what the one-shot path used.
                prop_assert!(
                    distinct_colors(simplified.colors())
                        <= distinct_colors(one_shot.colors()),
                    "algorithm {:?}: simplified run used {} distinct colors, one-shot used {}",
                    algorithm,
                    distinct_colors(simplified.colors()),
                    distinct_colors(one_shot.colors())
                );

                // A trivial fixed point (nothing hidden, nothing cut —
                // observable as zero simplify rounds) falls through to
                // the identical one-shot path, bit for bit.
                if simplified.simplify_rounds() == 0 {
                    prop_assert_eq!(
                        simplified.colors(),
                        one_shot.colors(),
                        "algorithm {:?}: trivial simplification changed the coloring",
                        algorithm
                    );
                }
            }
        }
    }
}
