//! Black-box integration harness for the `mpl-serve` wire protocol.
//!
//! The server is spawned in-process on an ephemeral port and driven with
//! **raw TCP sockets** (hand-built frames, not the typed client), so these
//! tests pin the protocol itself: frame format, response ordering, typed
//! error codes — and the core acceptance property that results streamed
//! over TCP are **bit-identical** to a direct [`DecompositionSession`] run
//! for all four engines, under interleaved concurrent submissions, and
//! after in-band error responses.

use mpl_core::{
    ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionResult, DecompositionSession,
    MemoCache, SerialExecutor, TileConfig,
};
use mpl_geometry::Nm;
use mpl_layout::{gen, io, Layout, Technology};
use mpl_serve::{algorithm_wire_name, base64, FrameDecoder, Json, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A deliberately low-level protocol driver: writes hand-built lines,
/// reads frames straight off the socket.
struct RawClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Terminal frames received while waiting for a different submission:
    /// per-submission ordering is guaranteed by the protocol, cross-
    /// submission ordering (e.g. serial-choice vs pool-choice results of
    /// one wave) is not.
    stashed: Vec<Json>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        RawClient {
            stream: TcpStream::connect(addr).expect("connect to test server"),
            decoder: FrameDecoder::new(),
            stashed: Vec::new(),
        }
    }

    fn send_line(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write frame");
    }

    /// Blocks until the next frame arrives and parses it.
    fn recv(&mut self) -> Json {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(frame) = self.decoder.next_frame().expect("well-framed response") {
                return Json::parse(&frame).expect("server frames are valid JSON");
            }
            let read = self.stream.read(&mut chunk).expect("read from server");
            assert!(read > 0, "server closed the connection unexpectedly");
            self.decoder.push(&chunk[..read]);
        }
    }

    /// Skips `queued`/`progress` frames until the terminal frame (`result`,
    /// `cancelled` or `error`) for `id` arrives; terminal frames for other
    /// submissions are stashed for their own `await_terminal` calls.
    fn await_terminal(&mut self, id: &str) -> Json {
        if let Some(position) = self
            .stashed
            .iter()
            .position(|frame| frame.get("id").and_then(Json::as_str) == Some(id))
        {
            return self.stashed.remove(position);
        }
        loop {
            let frame = self.recv();
            let frame_type = frame.get("type").and_then(Json::as_str).expect("type");
            match frame_type {
                "queued" | "progress" | "tile_progress" | "hier_progress" => continue,
                "result" | "cancelled" | "error" => {
                    if frame.get("id").and_then(Json::as_str) == Some(id) {
                        return frame;
                    }
                    self.stashed.push(frame);
                }
                other => panic!("unexpected frame type {other:?}: {frame}"),
            }
        }
    }
}

fn spawn_server() -> mpl_serve::ServerHandle {
    Server::spawn(&ServerConfig::default()).expect("bind ephemeral port")
}

/// Builds a `submit` frame through the JSON writer so escaping is always
/// correct, whatever the layout text contains.
fn submit_frame(
    id: &str,
    source_key: &str,
    source_value: &str,
    engine: ColorAlgorithm,
    executor: &str,
) -> String {
    Json::object(vec![
        ("type", Json::string("submit")),
        ("id", Json::string(id)),
        (source_key, Json::string(source_value)),
        ("algorithm", Json::string(algorithm_wire_name(engine))),
        ("executor", Json::string(executor)),
    ])
    .to_string()
}

/// The exact configuration the server builds for a default submission —
/// the baseline runs must match it parameter for parameter.
fn server_side_config(engine: ColorAlgorithm) -> DecomposerConfig {
    DecomposerConfig::k_patterning(4, Technology::nm20()).with_algorithm(engine)
}

fn colors_of(frame: &Json) -> Vec<u8> {
    frame
        .get("colors")
        .and_then(Json::as_array)
        .expect("result carries colors")
        .iter()
        .map(|value| value.as_usize().expect("mask index") as u8)
        .collect()
}

fn assert_result_matches(frame: &Json, baseline: &DecompositionResult, context: &str) {
    assert_eq!(
        frame.get("type").and_then(Json::as_str),
        Some("result"),
        "{context}: expected a result frame, got {frame}"
    );
    assert_eq!(colors_of(frame), baseline.colors(), "{context}: colors");
    assert_eq!(
        frame.get("conflicts").and_then(Json::as_usize),
        Some(baseline.conflicts()),
        "{context}: conflicts"
    );
    assert_eq!(
        frame.get("stitches").and_then(Json::as_usize),
        Some(baseline.stitches()),
        "{context}: stitches"
    );
    assert_eq!(
        frame.get("vertices").and_then(Json::as_usize),
        Some(baseline.vertex_count()),
        "{context}: vertices"
    );
    assert_eq!(
        frame.get("components").and_then(Json::as_usize),
        Some(baseline.component_count()),
        "{context}: components"
    );
    // The objective is computed identically on both sides and f64 survives
    // the JSON round trip exactly (shortest-round-trip formatting).
    assert_eq!(
        frame.get("cost").and_then(Json::as_f64),
        Some(baseline.cost()),
        "{context}: cost"
    );
}

fn test_layouts() -> Vec<Layout> {
    let tech = Technology::nm20();
    vec![
        gen::fig1_contact_clique(&tech),
        gen::k5_cluster_layout(&tech),
        gen::generate_row_layout(&gen::RowLayoutConfig::small("serve-row", 11), &tech),
    ]
}

/// Direct (no server) baseline: the same layouts through one
/// [`DecompositionSession`] on the serial executor.
///
/// The baseline attaches a fresh memo cache because the server always runs
/// memoized — and memoized colorings are a pure function of each
/// component's canonical signature, so a *fresh* local cache reproduces
/// the served bits no matter how warm the server's shared cache is.
fn direct_session_results(engine: ColorAlgorithm, layouts: &[Layout]) -> Vec<DecompositionResult> {
    let decomposer = Decomposer::new(server_side_config(engine));
    let mut session = DecompositionSession::new().with_memo(Arc::new(MemoCache::new(4096)));
    for layout in layouts {
        session
            .submit_layout(&decomposer, layout)
            .expect("valid config");
    }
    session
        .run(&SerialExecutor)
        .into_iter()
        .map(|(_, result)| result)
        .collect()
}

/// One-layout convenience wrapper over [`direct_session_results`].
fn direct_memoized_result(engine: ColorAlgorithm, layout: &Layout) -> DecompositionResult {
    direct_session_results(engine, std::slice::from_ref(layout))
        .into_iter()
        .next()
        .expect("one layout, one result")
}

#[test]
fn streamed_results_are_bit_identical_to_direct_session_runs_for_all_engines() {
    let handle = spawn_server();
    let layouts = test_layouts();
    for engine in ColorAlgorithm::ALL {
        let baselines = direct_session_results(engine, &layouts);
        let mut client = RawClient::connect(handle.addr());
        // Stream every layout before reading anything back: the server
        // coalesces what it can into shared batches.
        for (index, layout) in layouts.iter().enumerate() {
            let id = format!("{}-{index}", algorithm_wire_name(engine));
            client.send_line(&submit_frame(
                &id,
                "layout_text",
                &io::to_text(layout),
                engine,
                if index % 2 == 0 { "pool" } else { "serial" },
            ));
        }
        for (index, baseline) in baselines.iter().enumerate() {
            let id = format!("{}-{index}", algorithm_wire_name(engine));
            let frame = client.await_terminal(&id);
            assert_result_matches(&frame, baseline, &id);
            // The executor that served the layout is reported and honours
            // the per-request choice.
            let executor = frame
                .get("executor")
                .and_then(Json::as_str)
                .expect("executor");
            if index % 2 == 0 {
                assert!(executor.starts_with("threads:"), "pool choice: {executor}");
            } else {
                assert_eq!(executor, "serial");
            }
        }
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn interleaved_concurrent_submissions_do_not_change_any_layout_output() {
    let handle = spawn_server();
    let layouts = test_layouts();
    let engine = ColorAlgorithm::SdpBacktrack;
    let baselines = direct_session_results(engine, &layouts);

    // Phase 1 — two connections submit the same layouts in opposite
    // orders, sequentially, so the scheduler sees interleaved queues.
    let mut forward = RawClient::connect(handle.addr());
    let mut backward = RawClient::connect(handle.addr());
    for (index, layout) in layouts.iter().enumerate() {
        forward.send_line(&submit_frame(
            &format!("fwd-{index}"),
            "layout_text",
            &io::to_text(layout),
            engine,
            "pool",
        ));
    }
    for (index, layout) in layouts.iter().enumerate().rev() {
        backward.send_line(&submit_frame(
            &format!("bwd-{index}"),
            "layout_text",
            &io::to_text(layout),
            engine,
            "pool",
        ));
    }
    for (index, baseline) in baselines.iter().enumerate() {
        let frame = forward.await_terminal(&format!("fwd-{index}"));
        assert_result_matches(&frame, baseline, &format!("forward order, layout {index}"));
    }
    for (index, baseline) in baselines.iter().enumerate().rev() {
        let frame = backward.await_terminal(&format!("bwd-{index}"));
        assert_result_matches(&frame, baseline, &format!("backward order, layout {index}"));
    }

    // Phase 2 — genuinely concurrent clients racing their submissions.
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..3usize {
            let layouts = &layouts;
            let baselines = &baselines;
            let addr = handle.addr();
            workers.push(scope.spawn(move || {
                let mut client = RawClient::connect(addr);
                // Each worker interleaves its own submission order.
                let order: Vec<usize> = (0..layouts.len())
                    .map(|index| (index + worker) % layouts.len())
                    .collect();
                for &index in &order {
                    client.send_line(&submit_frame(
                        &format!("w{worker}-{index}"),
                        "layout_text",
                        &io::to_text(&layouts[index]),
                        engine,
                        if worker % 2 == 0 { "pool" } else { "serial" },
                    ));
                }
                for &index in &order {
                    let frame = client.await_terminal(&format!("w{worker}-{index}"));
                    assert_result_matches(
                        &frame,
                        &baselines[index],
                        &format!("worker {worker}, layout {index}"),
                    );
                }
            }));
        }
        for worker in workers {
            worker.join().expect("concurrent client panicked");
        }
    });
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn gds_base64_submissions_match_local_decomposition_of_the_same_bytes() {
    let handle = spawn_server();
    let tech = Technology::nm20();
    let source = gen::generate_row_layout(&gen::RowLayoutConfig::small("serve-gds", 5), &tech);
    let bytes = mpl_gds::library_from_layout(&source, 1, 0)
        .expect("convert layout")
        .to_bytes()
        .expect("encode GDS");

    // What the server will decompose: the re-read of those exact bytes.
    let library = mpl_gds::GdsLibrary::from_bytes(&bytes).expect("parse GDS");
    let read_back = mpl_gds::layout_from_library(
        &library,
        &mpl_gds::LayerMap::all(),
        &mpl_gds::ReadOptions::default(),
    )
    .expect("convert GDS");
    let engine = ColorAlgorithm::Linear;
    let baseline = direct_memoized_result(engine, &read_back);

    let mut client = RawClient::connect(handle.addr());
    client.send_line(&submit_frame(
        "gds",
        "gds_base64",
        &base64::encode(&bytes),
        engine,
        "pool",
    ));
    let frame = client.await_terminal("gds");
    assert_result_matches(&frame, &baseline, "gds round trip");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn errors_are_typed_and_leave_the_connection_usable() {
    let handle = spawn_server();
    let mut client = RawClient::connect(handle.addr());
    let expect_error = |client: &mut RawClient, id: Option<&str>, code: &str, needle: &str| {
        let frame = client.recv();
        assert_eq!(
            frame.get("type").and_then(Json::as_str),
            Some("error"),
            "expected error frame, got {frame}"
        );
        assert_eq!(frame.get("id").and_then(Json::as_str), id, "{frame}");
        assert_eq!(
            frame.get("code").and_then(Json::as_str),
            Some(code),
            "{frame}"
        );
        let message = frame
            .get("message")
            .and_then(Json::as_str)
            .expect("message");
        assert!(message.contains(needle), "{message:?} lacks {needle:?}");
    };

    // 1. A frame that is not JSON at all.
    client.send_line("this is not json");
    expect_error(&mut client, None, "protocol", "invalid JSON");

    // 2. Valid JSON, unknown request type (id still echoed).
    client.send_line(r#"{"type":"frobnicate","id":"t2"}"#);
    expect_error(&mut client, Some("t2"), "protocol", "unknown request type");

    // 3. K = 0: decodes fine, fails config validation with the pipeline's
    //    typed error.
    let layout_text = io::to_text(&gen::fig1_contact_clique(&Technology::nm20()));
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("t3")),
            ("layout_text", Json::string(layout_text.clone())),
            ("k", Json::Number(0.0)),
        ])
        .to_string(),
    );
    expect_error(
        &mut client,
        Some("t3"),
        "config",
        "mask count K must be in 2..=255",
    );

    // 4. Unknown engine name.
    client.send_line(r#"{"type":"submit","id":"t4","layout_text":"x","algorithm":"warp-drive"}"#);
    expect_error(&mut client, Some("t4"), "protocol", "unknown algorithm");

    // 5. Truncated GDS payload: valid base64 of a cut-off stream.
    let full = mpl_gds::library_from_layout(&gen::k5_cluster_layout(&Technology::nm20()), 1, 0)
        .expect("convert")
        .to_bytes()
        .expect("encode");
    let truncated = base64::encode(&full[..full.len() / 2]);
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("t5")),
            ("gds_base64", Json::string(truncated)),
        ])
        .to_string(),
    );
    expect_error(&mut client, Some("t5"), "parse", "cannot parse GDS stream");

    // 6. Base64 that is not even base64.
    client.send_line(r#"{"type":"submit","id":"t6","gds_base64":"!!!not base64!!!"}"#);
    expect_error(&mut client, Some("t6"), "parse", "cannot decode gds_base64");

    // 7. An unreadable server-side path.
    client.send_line(r#"{"type":"submit","id":"t7","path":"/nonexistent/serve-integration.gds"}"#);
    expect_error(&mut client, Some("t7"), "io", "cannot read");

    // 8. The connection is still fully usable: ping, then a real submission
    //    whose result is bit-identical to the direct run.
    client.send_line(r#"{"type":"ping"}"#);
    assert_eq!(
        client.recv().get("type").and_then(Json::as_str),
        Some("pong")
    );
    let engine = ColorAlgorithm::SdpGreedy;
    let layout = gen::k5_cluster_layout(&Technology::nm20());
    let baseline = direct_memoized_result(engine, &layout);
    client.send_line(&submit_frame(
        "t8",
        "layout_text",
        &io::to_text(&layout),
        engine,
        "serial",
    ));
    let frame = client.await_terminal("t8");
    assert_result_matches(&frame, &baseline, "post-error submission");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn progress_frames_count_every_component_in_order() {
    let handle = spawn_server();
    let tech = Technology::nm20();
    let layout = gen::generate_row_layout(&gen::RowLayoutConfig::small("serve-progress", 3), &tech);
    let mut client = RawClient::connect(handle.addr());
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("p")),
            ("layout_text", Json::string(io::to_text(&layout))),
            ("algorithm", Json::string("linear")),
            ("progress", Json::Bool(true)),
        ])
        .to_string(),
    );

    let queued = client.recv();
    assert_eq!(queued.get("type").and_then(Json::as_str), Some("queued"));
    let total = queued
        .get("components")
        .and_then(Json::as_usize)
        .expect("components");
    assert!(total >= 2, "need a multi-component layout for this test");

    let mut expected_done = 1usize;
    loop {
        let frame = client.recv();
        match frame.get("type").and_then(Json::as_str) {
            Some("progress") => {
                assert_eq!(frame.get("id").and_then(Json::as_str), Some("p"));
                assert_eq!(
                    frame.get("done").and_then(Json::as_usize),
                    Some(expected_done),
                    "progress ticks arrive in order"
                );
                assert_eq!(frame.get("total").and_then(Json::as_usize), Some(total));
                expected_done += 1;
            }
            Some("result") => {
                assert_eq!(
                    expected_done,
                    total + 1,
                    "exactly one progress frame per component before the result"
                );
                break;
            }
            other => panic!("unexpected frame type {other:?}"),
        }
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn empty_layouts_and_session_reuse_across_waves() {
    let handle = spawn_server();
    let mut client = RawClient::connect(handle.addr());
    // An empty layout is legal: zero components, an immediate empty result.
    client.send_line(&submit_frame(
        "e0",
        "layout_text",
        "# layout empty\n",
        ColorAlgorithm::Linear,
        "pool",
    ));
    let frame = client.await_terminal("e0");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(frame.get("vertices").and_then(Json::as_usize), Some(0));
    assert!(colors_of(&frame).is_empty());

    // Waves submitted strictly after the previous result still work — the
    // server's sessions are reused across batches (unique ids internally).
    let tech = Technology::nm20();
    let layout = gen::fig1_contact_clique(&tech);
    let baseline = direct_memoized_result(ColorAlgorithm::Linear, &layout);
    for wave in 0..3 {
        let id = format!("wave-{wave}");
        client.send_line(&submit_frame(
            &id,
            "layout_text",
            &io::to_text(&layout),
            ColorAlgorithm::Linear,
            "pool",
        ));
        let frame = client.await_terminal(&id);
        assert_result_matches(&frame, &baseline, &id);
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn ping_reports_cache_statistics_and_resubmissions_are_served_warm() {
    let handle = spawn_server();
    let mut client = RawClient::connect(handle.addr());
    let ping = |client: &mut RawClient| -> Json {
        client.send_line(r#"{"type":"ping"}"#);
        let frame = client.recv();
        assert_eq!(frame.get("type").and_then(Json::as_str), Some("pong"));
        frame
            .get("cache")
            .expect("pong carries cache stats")
            .clone()
    };

    // Fresh server: an empty cache with the default capacity.
    let cold = ping(&mut client);
    assert_eq!(cold.get("entries").and_then(Json::as_usize), Some(0));
    assert_eq!(cold.get("hits").and_then(Json::as_usize), Some(0));
    assert_eq!(cold.get("misses").and_then(Json::as_usize), Some(0));
    assert!(
        cold.get("capacity")
            .and_then(Json::as_usize)
            .expect("capacity")
            >= 1
    );

    let engine = ColorAlgorithm::SdpBacktrack;
    let layout = gen::generate_row_layout(
        &gen::RowLayoutConfig::small("serve-memo", 7),
        &Technology::nm20(),
    );
    let baseline = direct_memoized_result(engine, &layout);
    let submit = |client: &mut RawClient, id: &str, executor: &str| {
        client.send_line(&submit_frame(
            id,
            "layout_text",
            &io::to_text(&layout),
            engine,
            executor,
        ));
    };

    // Cold submission: everything is engine-colored and the result frame
    // says so through its memo counters.
    submit(&mut client, "m-cold", "pool");
    let frame = client.await_terminal("m-cold");
    assert_result_matches(&frame, &baseline, "cold submission");
    let components = frame
        .get("components")
        .and_then(Json::as_usize)
        .expect("components");
    let hits = frame
        .get("memo_hits")
        .and_then(Json::as_usize)
        .expect("memo_hits");
    let misses = frame
        .get("memo_misses")
        .and_then(Json::as_usize)
        .expect("memo_misses");
    assert_eq!(hits + misses, components, "every component is accounted");
    assert!(misses > 0, "a cold cache cannot serve hits");

    let after_cold = ping(&mut client);
    let stored = after_cold
        .get("entries")
        .and_then(Json::as_usize)
        .expect("entries");
    assert!(stored > 0, "the cold batch fills the cache");
    assert!(
        after_cold
            .get("misses")
            .and_then(Json::as_usize)
            .expect("misses")
            > 0
    );

    // Warm resubmission — on the *other* executor: the sessions share one
    // cache, every component is stamped, and the bits do not move.
    submit(&mut client, "m-warm", "serial");
    let frame = client.await_terminal("m-warm");
    assert_result_matches(&frame, &baseline, "warm resubmission");
    assert_eq!(
        frame.get("memo_hits").and_then(Json::as_usize),
        Some(components),
        "a warm cache serves the whole layout"
    );
    assert_eq!(frame.get("memo_misses").and_then(Json::as_usize), Some(0));

    let after_warm = ping(&mut client);
    assert_eq!(
        after_warm.get("entries").and_then(Json::as_usize),
        Some(stored),
        "a fully-warm batch stores nothing new"
    );
    assert!(
        after_warm
            .get("hits")
            .and_then(Json::as_usize)
            .expect("hits")
            >= components,
        "the warm batch hit once per component"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn tiled_submissions_stream_tile_progress_and_match_local_tiled_runs() {
    let handle = spawn_server();
    let tech = Technology::nm20();
    let engine = ColorAlgorithm::Linear;
    // One connected component spanning several 300 nm windows.
    let lattice = gen::contact_array(&tech, 12, 12, Nm(70));

    // Local baseline through the same tiler (tiled runs are schedule
    // independent, so the server's pool executor reproduces these bits).
    let decomposer = Decomposer::new(server_side_config(engine));
    let mut session = DecompositionSession::new()
        .with_memo(Arc::new(MemoCache::new(4096)))
        .with_tiling(TileConfig::new(Nm(300)));
    session
        .submit_layout(&decomposer, &lattice)
        .expect("valid config");
    let baseline = mpl_tile::run_tiled(&session, &SerialExecutor).expect("valid tiling");
    let (_, baseline) = &baseline[0];

    let mut client = RawClient::connect(handle.addr());
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("tiled")),
            ("layout_text", Json::string(io::to_text(&lattice))),
            ("algorithm", Json::string(algorithm_wire_name(engine))),
            ("tile_size", Json::Number(300.0)),
            ("progress", Json::Bool(true)),
            ("verify", Json::Bool(true)),
        ])
        .to_string(),
    );

    // Tiled submissions tick per tile sub-problem, not per component.
    let queued = client.recv();
    assert_eq!(queued.get("type").and_then(Json::as_str), Some("queued"));
    let mut expected_done = 1usize;
    let frame = loop {
        let frame = client.recv();
        match frame.get("type").and_then(Json::as_str) {
            Some("tile_progress") => {
                assert_eq!(frame.get("id").and_then(Json::as_str), Some("tiled"));
                assert_eq!(
                    frame.get("done").and_then(Json::as_usize),
                    Some(expected_done),
                    "tile ticks arrive in order"
                );
                expected_done += 1;
            }
            Some("result") => break frame,
            other => panic!("unexpected frame type {other:?}"),
        }
    };
    assert_result_matches(&frame, &baseline.result, "tiled lattice");
    let tiles = frame.get("tiles").expect("tiled results report tile stats");
    assert_eq!(
        tiles.get("tiles").and_then(Json::as_usize),
        Some(baseline.stats.tiles)
    );
    assert_eq!(
        tiles.get("tiled_components").and_then(Json::as_usize),
        Some(baseline.stats.tiled_components)
    );
    assert_eq!(
        tiles.get("cross_conflicts_after").and_then(Json::as_usize),
        Some(baseline.stats.cross_conflicts_after)
    );
    assert_eq!(
        expected_done,
        baseline.stats.tiles + usize::from(baseline.stats.resident_components > 0) + 1,
        "one tile_progress frame per inner decomposition"
    );
    // Server-side verification agrees with the reconciled conflict count.
    assert_eq!(
        frame.get("spacing_violations").and_then(Json::as_usize),
        Some(baseline.result.conflicts()),
        "tiling never hides a spacing violation"
    );

    // A layout that fits one window is bit-identical to its untiled run
    // even when submitted with tiling enabled.
    let clique = gen::fig1_contact_clique(&tech);
    let untiled = direct_memoized_result(engine, &clique);
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("resident")),
            ("layout_text", Json::string(io::to_text(&clique))),
            ("algorithm", Json::string(algorithm_wire_name(engine))),
            ("tile_size", Json::Number(1_000_000.0)),
        ])
        .to_string(),
    );
    let frame = client.await_terminal("resident");
    assert_result_matches(&frame, &untiled, "one-window tiled submission");
    let tiles = frame.get("tiles").expect("tile stats");
    assert_eq!(tiles.get("tiles").and_then(Json::as_usize), Some(0));
    assert_eq!(
        tiles.get("resident_components").and_then(Json::as_usize),
        Some(untiled.component_count())
    );

    // Invalid tiling requests come back as the pipeline's typed errors.
    for (id, extra, needle) in [
        (
            "bad-size",
            vec![("tile_size", Json::Number(0.0))],
            "tile size must be a positive distance",
        ),
        (
            "bad-halo",
            vec![
                ("tile_size", Json::Number(300.0)),
                ("halo", Json::Number(40.0)),
            ],
            "tile halo must be a positive distance",
        ),
        (
            "halo-alone",
            vec![("halo", Json::Number(100.0))],
            "--halo requires tiling to be enabled",
        ),
    ] {
        let mut pairs = vec![
            ("type", Json::string("submit")),
            ("id", Json::string(id)),
            ("layout_text", Json::string(io::to_text(&clique))),
        ];
        pairs.extend(extra);
        client.send_line(&Json::object(pairs).to_string());
        let frame = client.await_terminal(id);
        assert_eq!(
            frame.get("type").and_then(Json::as_str),
            Some("error"),
            "{id}"
        );
        assert_eq!(
            frame.get("code").and_then(Json::as_str),
            Some("config"),
            "{id}"
        );
        let message = frame
            .get("message")
            .and_then(Json::as_str)
            .expect("message");
        assert!(message.contains(needle), "{id}: {message:?}");
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn hier_submissions_stream_hier_progress_and_match_local_hier_runs() {
    let handle = spawn_server();
    let engine = ColorAlgorithm::Linear;
    // The committed CLI fixture: a 4×3 merged SRAM-like array whose tabs
    // fuse the whole array into one conflict component (see
    // tests/cli_json_golden.rs), submitted as raw GDS bytes.
    let bytes = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/hier_array.gds"
    ))
    .expect("read committed hier fixture");

    // Local baseline through the same hierarchical driver on the bytes the
    // server will decompose.
    let library = mpl_gds::GdsLibrary::from_bytes(&bytes).expect("parse GDS");
    let (layout, hierarchy) = mpl_gds::layout_with_hierarchy(
        &library,
        &mpl_gds::LayerMap::all(),
        &mpl_gds::ReadOptions::default(),
    )
    .expect("convert GDS");
    let decomposer = Decomposer::new(server_side_config(engine));
    let mut session = DecompositionSession::new().with_memo(Arc::new(MemoCache::new(4096)));
    let id = session
        .submit_layout(&decomposer, &layout)
        .expect("valid config");
    session.set_hierarchy(id, Some(Arc::new(hierarchy)));
    let baseline = mpl_hier::run_hier(&session, &SerialExecutor).expect("hier run");
    let (_, baseline) = &baseline[0];

    let mut client = RawClient::connect(handle.addr());
    let ping_counters = |client: &mut RawClient| -> (usize, usize) {
        client.send_line(r#"{"type":"ping"}"#);
        let frame = client.recv();
        assert_eq!(frame.get("type").and_then(Json::as_str), Some("pong"));
        (
            frame
                .get("hier_runs")
                .and_then(Json::as_usize)
                .expect("hier_runs"),
            frame
                .get("tile_runs")
                .and_then(Json::as_usize)
                .expect("tile_runs"),
        )
    };
    assert_eq!(ping_counters(&mut client), (0, 0), "fresh server");

    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("hier")),
            ("gds_base64", Json::string(base64::encode(&bytes))),
            ("algorithm", Json::string(algorithm_wire_name(engine))),
            ("hier", Json::Bool(true)),
            ("progress", Json::Bool(true)),
            ("verify", Json::Bool(true)),
        ])
        .to_string(),
    );

    // Hierarchical submissions tick per inner cell piece, not per
    // flat component.
    let queued = client.recv();
    assert_eq!(queued.get("type").and_then(Json::as_str), Some("queued"));
    let mut expected_done = 1usize;
    let frame = loop {
        let frame = client.recv();
        match frame.get("type").and_then(Json::as_str) {
            Some("hier_progress") => {
                assert_eq!(frame.get("id").and_then(Json::as_str), Some("hier"));
                assert_eq!(
                    frame.get("done").and_then(Json::as_usize),
                    Some(expected_done),
                    "hier ticks arrive in order"
                );
                expected_done += 1;
            }
            Some("result") => break frame,
            other => panic!("unexpected frame type {other:?}"),
        }
    };
    assert!(expected_done > 1, "hier runs stream at least one tick");
    assert_result_matches(&frame, &baseline.result, "hier array");
    let payload = frame
        .get("hierarchy")
        .expect("hier results report hierarchy stats");
    assert_eq!(
        payload.get("instances").and_then(Json::as_usize),
        Some(baseline.stats.instances)
    );
    assert_eq!(
        payload.get("cells").and_then(Json::as_usize),
        Some(baseline.stats.cells)
    );
    assert_eq!(
        payload.get("instance_pieces").and_then(Json::as_usize),
        Some(baseline.stats.instance_pieces)
    );
    assert_eq!(
        payload
            .get("cross_conflicts_after")
            .and_then(Json::as_usize),
        Some(baseline.stats.cross_conflicts_after)
    );
    // Server-side verification agrees with the reconciled conflict count.
    assert_eq!(
        frame.get("spacing_violations").and_then(Json::as_usize),
        Some(baseline.result.conflicts()),
        "hierarchy never hides a spacing violation"
    );
    assert_eq!(ping_counters(&mut client).0, 1, "one hier run counted");

    // A text source with hier requested degenerates to an ordinary
    // memoized run — there is no hierarchy to exploit — and still counts.
    let tech = Technology::nm20();
    let clique = gen::fig1_contact_clique(&tech);
    let flat = direct_memoized_result(engine, &clique);
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("degenerate")),
            ("layout_text", Json::string(io::to_text(&clique))),
            ("algorithm", Json::string(algorithm_wire_name(engine))),
            ("hier", Json::Bool(true)),
        ])
        .to_string(),
    );
    let frame = client.await_terminal("degenerate");
    assert_result_matches(&frame, &flat, "text source under --hier");
    let payload = frame.get("hierarchy").expect("hier stats still reported");
    assert_eq!(payload.get("instances").and_then(Json::as_usize), Some(0));
    assert_eq!(
        payload.get("resident_components").and_then(Json::as_usize),
        Some(flat.component_count())
    );
    assert_eq!(ping_counters(&mut client).0, 2, "degenerate run counted");

    // Hierarchy and tiling are mutually exclusive, as a typed config error.
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("hier-tiled")),
            ("layout_text", Json::string(io::to_text(&clique))),
            ("hier", Json::Bool(true)),
            ("tile_size", Json::Number(300.0)),
        ])
        .to_string(),
    );
    let frame = client.await_terminal("hier-tiled");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(frame.get("code").and_then(Json::as_str), Some("config"));
    let message = frame
        .get("message")
        .and_then(Json::as_str)
        .expect("message");
    assert!(
        message.contains("cannot be combined with tiling"),
        "{message:?}"
    );

    // The tile counter is independent of the hier counter.
    client.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("tiled")),
            ("layout_text", Json::string(io::to_text(&clique))),
            ("tile_size", Json::Number(1_000_000.0)),
        ])
        .to_string(),
    );
    client.await_terminal("tiled");
    assert_eq!(ping_counters(&mut client), (2, 1), "counters stay separate");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn a_client_that_stops_reading_cannot_wedge_other_submissions() {
    // A short write timeout is the regression hook: before the timeout
    // existed, the scheduler's synchronous progress writes blocked forever
    // once the stalled client's socket buffers filled, and every other
    // submission hung behind it.
    let handle = Server::spawn(&ServerConfig {
        write_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let tech = Technology::nm20();

    // 3000 identical strip clusters, every cluster a real component
    // (isolated vertices would be packed into one trivial task), each
    // streaming a progress frame as the memo stamps it.  The submission id
    // is echoed on every frame, so a kilobytes-long id turns 3000 ticks
    // into ~12 MB of progress — far past socket buffering even with
    // autotuned multi-megabyte send buffers, so once the client stops
    // reading, the scheduler's synchronous writes must block.
    let flood = gen::repeated_strip_array(&tech, 60, 50, 3, Nm(400));
    let jam_id = format!("jam-{}", "x".repeat(4096));
    let mut stalled = RawClient::connect(handle.addr());
    stalled.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string(jam_id.as_str())),
            ("layout_text", Json::string(io::to_text(&flood))),
            ("algorithm", Json::string("linear")),
            ("progress", Json::Bool(true)),
        ])
        .to_string(),
    );
    // The stalled client reads until its flood demonstrably streams — the
    // first progress tick — and then goes silent with ~12 MB still to come.
    loop {
        let frame = stalled.recv();
        match frame.get("type").and_then(Json::as_str) {
            Some("queued") => continue,
            Some("progress") => break,
            other => panic!("unexpected frame before the flood: {other:?}"),
        }
    }

    // A healthy client submitted behind the flood still gets its result.
    let layout = gen::fig1_contact_clique(&tech);
    let engine = ColorAlgorithm::SdpGreedy;
    let baseline = direct_memoized_result(engine, &layout);
    let mut healthy = RawClient::connect(handle.addr());
    // Bound the regression failure mode: a wedged scheduler fails this
    // test by read timeout instead of hanging the suite.
    healthy
        .stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    healthy.send_line(&submit_frame(
        "healthy",
        "layout_text",
        &io::to_text(&layout),
        engine,
        "pool",
    ));
    let frame = healthy.await_terminal("healthy");
    assert_result_matches(&frame, &baseline, "submission behind a stalled client");
    drop(stalled);
    handle.shutdown().expect("clean shutdown");
}
