//! Batch determinism: a [`DecompositionSession`] mixing many layouts on one
//! shared executor must color every layout **bit-identically** to that
//! layout's standalone serial run.
//!
//! The batch engine interleaves component tasks from all submitted plans in
//! one largest-first queue, so these tests pin the core acceptance property
//! of the batch-first API: scheduling across layouts — with any engine, any
//! pool size, and any submission order — never changes any layout's colors,
//! conflicts or stitches.

use mpl_core::{
    ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionResult, DecompositionSession,
    LayoutId, SerialExecutor, ThreadPoolExecutor,
};
use mpl_layout::{gen, Layout, Technology};
use std::time::Duration;

fn config(k: usize, algorithm: ColorAlgorithm) -> DecomposerConfig {
    DecomposerConfig::k_patterning(k, Technology::nm20())
        .with_algorithm(algorithm)
        // Generous per-component budget so the exact engine never hits its
        // deadline on these small instances (a deadline hit could make the
        // incumbent depend on wall-clock timing instead of the instance).
        .with_ilp_time_limit(Duration::from_secs(120))
}

/// The mixed workload of the acceptance criteria: generated row layouts
/// plus a layout that went through a GDSII write/read round trip.
fn mixed_layouts() -> Vec<Layout> {
    let tech = Technology::nm20();
    let mut layouts = vec![
        gen::generate_row_layout(&gen::RowLayoutConfig::small("batch-a", 3), &tech),
        gen::generate_row_layout(&gen::RowLayoutConfig::small("batch-b", 7), &tech),
        gen::fig1_contact_clique(&tech),
    ];
    let round_trip_source =
        gen::generate_row_layout(&gen::RowLayoutConfig::small("batch-gds", 5), &tech);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "session-determinism-{}-{}.gds",
        std::process::id(),
        layouts.len()
    ));
    let path = path.to_string_lossy().into_owned();
    mpl_gds::write_layout_file(&path, &round_trip_source, 1, 0).expect("write gds");
    let map = mpl_gds::LayerMap::from_specs::<&str>(&[]).expect("empty layer map");
    let read_back = mpl_gds::load_layout_file(&path, &map, &mpl_gds::ReadOptions::default())
        .expect("re-read gds");
    std::fs::remove_file(&path).ok();
    layouts.push(read_back);
    layouts
}

/// Standalone baseline: each layout planned and executed alone on the
/// serial executor.
fn serial_baselines(decomposer: &Decomposer, layouts: &[Layout]) -> Vec<DecompositionResult> {
    layouts
        .iter()
        .map(|layout| {
            decomposer
                .plan(layout)
                .expect("valid config")
                .execute(&SerialExecutor)
        })
        .collect()
}

fn assert_matches_baseline(
    label: &str,
    id: LayoutId,
    batched: &DecompositionResult,
    baseline: &DecompositionResult,
) {
    assert_eq!(
        batched.colors(),
        baseline.colors(),
        "{label}: {id} ({}) diverged from its standalone serial run",
        baseline.layout_name()
    );
    assert_eq!(batched.conflicts(), baseline.conflicts(), "{label}: {id}");
    assert_eq!(batched.stitches(), baseline.stitches(), "{label}: {id}");
    assert_eq!(
        batched.component_count(),
        baseline.component_count(),
        "{label}: {id}"
    );
    // The per-component breakdown must agree too (not just the totals):
    // stats come back tagged by task index regardless of schedule.
    for (a, b) in batched
        .component_stats()
        .iter()
        .zip(baseline.component_stats())
    {
        assert_eq!(a.index, b.index, "{label}: {id}");
        assert_eq!(a.conflicts, b.conflicts, "{label}: {id} task {}", a.index);
        assert_eq!(a.stitches, b.stitches, "{label}: {id} task {}", a.index);
        assert_eq!(a.vertex_count, b.vertex_count, "{label}: {id}");
    }
}

#[test]
fn mixed_batches_match_standalone_serial_runs_for_every_engine_and_pool() {
    let layouts = mixed_layouts();
    for algorithm in ColorAlgorithm::ALL {
        let decomposer = Decomposer::new(config(4, algorithm));
        let baselines = serial_baselines(&decomposer, &layouts);

        let mut session = DecompositionSession::new();
        for layout in &layouts {
            session
                .submit_layout(&decomposer, layout)
                .expect("valid config");
        }

        // The serial executor drains the batch queue in largest-first
        // order — already a different schedule than per-layout execution.
        let serial_batch = session.run(&SerialExecutor);
        for ((id, result), baseline) in serial_batch.iter().zip(&baselines) {
            assert_matches_baseline(&format!("{algorithm}/serial"), *id, result, baseline);
        }

        for threads in [1usize, 2, 4] {
            let pool = ThreadPoolExecutor::new(threads).expect("non-zero threads");
            let batch = session.run(&pool);
            assert_eq!(batch.len(), layouts.len());
            for ((id, result), baseline) in batch.iter().zip(&baselines) {
                assert_matches_baseline(
                    &format!("{algorithm}/threads:{threads}"),
                    *id,
                    result,
                    baseline,
                );
            }
        }
    }
}

#[test]
fn submission_order_does_not_change_any_layouts_colors() {
    let layouts = mixed_layouts();
    let decomposer = Decomposer::new(config(4, ColorAlgorithm::SdpBacktrack));
    let baselines = serial_baselines(&decomposer, &layouts);

    // Interleave the submissions: reversed and rotated orders both map
    // back to the same per-layout baselines.
    let orders: Vec<Vec<usize>> = vec![
        (0..layouts.len()).rev().collect(),
        (0..layouts.len())
            .map(|i| (i + 2) % layouts.len())
            .collect(),
    ];
    for order in orders {
        let mut session = DecompositionSession::new();
        let mut submitted: Vec<usize> = Vec::new();
        for &slot in &order {
            let id = session
                .submit_layout(&decomposer, &layouts[slot])
                .expect("valid config");
            assert_eq!(id.index(), submitted.len(), "ids follow submission order");
            submitted.push(slot);
        }
        let results = session.run(&ThreadPoolExecutor::new(2).expect("threads"));
        assert_eq!(results.len(), layouts.len());
        for ((id, result), &slot) in results.iter().zip(&submitted) {
            assert_matches_baseline("interleaved/threads:2", *id, result, &baselines[slot]);
        }
    }
}

#[test]
fn pentuple_batches_match_standalone_runs() {
    let tech = Technology::nm20();
    let layouts = [
        gen::generate_row_layout(&gen::RowLayoutConfig::small("penta-a", 5), &tech),
        gen::k5_cluster_layout(&tech),
    ];
    let decomposer = Decomposer::new(config(5, ColorAlgorithm::Linear));
    let baselines = serial_baselines(&decomposer, &layouts);
    let mut session = DecompositionSession::new();
    for layout in &layouts {
        session
            .submit_layout(&decomposer, layout)
            .expect("valid config");
    }
    for threads in [2usize, 4] {
        let results = session.run(&ThreadPoolExecutor::new(threads).expect("threads"));
        for ((id, result), baseline) in results.iter().zip(&baselines) {
            assert_matches_baseline(&format!("penta/threads:{threads}"), *id, result, baseline);
            assert_eq!(result.k(), 5);
        }
    }
}
