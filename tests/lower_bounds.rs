//! Certifying decomposition quality with clique-cover lower bounds.
//!
//! A set of vertex-disjoint cliques in the conflict graph certifies a lower
//! bound on the conflicts of *any* K-coloring.  These tests sandwich the
//! engines between that bound and the exact optimum, which is the strongest
//! statement that can be made without re-proving optimality by brute force.

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionGraph, StitchConfig};
use mpl_graph::{conflict_lower_bound, Graph};
use mpl_layout::{gen, gen::IscasCircuit, Technology};
use std::time::Duration;

fn conflict_graph(graph: &DecompositionGraph) -> Graph {
    let mut g = Graph::new(graph.vertex_count());
    for &(u, v) in graph.conflict_edges() {
        g.add_edge(u, v);
    }
    g
}

fn config(k: usize, algorithm: ColorAlgorithm) -> DecomposerConfig {
    DecomposerConfig::k_patterning(k, Technology::nm20())
        .with_algorithm(algorithm)
        .with_ilp_time_limit(Duration::from_secs(5))
}

#[test]
fn k5_cluster_bound_is_tight() {
    let tech = Technology::nm20();
    let layout = gen::k5_cluster_layout(&tech);
    let graph = DecompositionGraph::build(&layout, &tech, 4, &StitchConfig::default());
    let bound = conflict_lower_bound(&conflict_graph(&graph), 4);
    assert_eq!(bound, 1);
    let result = Decomposer::new(config(4, ColorAlgorithm::Ilp))
        .decompose(&layout)
        .expect("valid config");
    assert_eq!(result.conflicts(), bound);
}

#[test]
fn dense_strip_results_respect_the_clique_bound() {
    let tech = Technology::nm20();
    for length in [6usize, 8, 10] {
        let layout = gen::dense_strip_layout(&tech, length);
        let graph = DecompositionGraph::build(&layout, &tech, 4, &StitchConfig::default());
        let bound = conflict_lower_bound(&conflict_graph(&graph), 4);
        let exact = Decomposer::new(config(4, ColorAlgorithm::Ilp))
            .decompose(&layout)
            .expect("valid config");
        let linear = Decomposer::new(config(4, ColorAlgorithm::Linear))
            .decompose(&layout)
            .expect("valid config");
        assert!(
            exact.conflicts() >= bound,
            "strip {length}: exact {} below the certified bound {bound}",
            exact.conflicts()
        );
        assert!(linear.conflicts() >= exact.conflicts());
        // The strip embeds at least one K5, so the bound is non-trivial.
        assert!(
            bound >= 1,
            "strip {length} should certify at least one conflict"
        );
    }
}

#[test]
fn benchmark_circuit_conflicts_are_bounded_below_by_the_clique_cover() {
    let tech = Technology::nm20();
    let layout = IscasCircuit::C432.generate(&tech);
    let graph = DecompositionGraph::build(&layout, &tech, 4, &StitchConfig::default());
    let bound = conflict_lower_bound(&conflict_graph(&graph), 4);
    for algorithm in ColorAlgorithm::ALL {
        let result = Decomposer::new(config(4, algorithm))
            .decompose(&layout)
            .expect("valid config");
        assert!(
            result.conflicts() >= bound,
            "{algorithm} reported {} conflicts, below the certified bound {bound}",
            result.conflicts()
        );
    }
}

#[test]
fn bound_vanishes_when_enough_masks_are_available() {
    let tech = Technology::nm20();
    let layout = gen::k5_cluster_layout(&tech);
    let graph = DecompositionGraph::build(&layout, &tech, 5, &StitchConfig::default());
    // Under the pentuple-patterning distance the cluster is still a K5, but
    // five masks suffice: the bound and the optimum both drop to zero.
    let bound = conflict_lower_bound(&conflict_graph(&graph), 5);
    assert_eq!(bound, 0);
    let result = Decomposer::new(config(5, ColorAlgorithm::SdpBacktrack))
        .decompose(&layout)
        .expect("valid config");
    assert_eq!(result.conflicts(), 0);
}
