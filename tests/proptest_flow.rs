//! Property-based integration tests over randomly generated layouts and
//! component problems.

use mpl_core::{
    coloring_cost, ColorAlgorithm, ComponentProblem, Decomposer, DecomposerConfig,
    DecompositionGraph,
};
use mpl_geometry::Nm;
use mpl_layout::{Layout, Technology};
use proptest::prelude::*;
use std::time::Duration;

/// A random contact-and-wire layout on a coarse grid; sparse enough that
/// every engine finishes instantly, dense enough to exercise conflicts and
/// stitch candidates.
fn arb_layout() -> impl Strategy<Value = Layout> {
    prop::collection::vec((0i64..16, 0i64..6, prop::bool::weighted(0.25)), 1..40).prop_map(
        |features| {
            let mut builder = Layout::builder("proptest");
            for (gx, gy, is_wire) in features {
                let x = Nm(gx * 40);
                let y = Nm(gy * 60);
                if is_wire {
                    builder.add_rect(mpl_geometry::Rect::new(x, y, x + Nm(140), y + Nm(20)));
                } else {
                    builder.add_contact(x, y, Nm(20));
                }
            }
            builder.build()
        },
    )
}

fn arb_component(max_n: usize) -> impl Strategy<Value = ComponentProblem> {
    (3..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (prop::collection::vec(0u8..10, pairs), 2usize..=5).prop_map(move |(kinds, k_offset)| {
            let k = 2 + k_offset % 4;
            let mut problem = ComponentProblem::new(n, k, 0.1);
            let mut index = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    match kinds[index] {
                        0..=3 => problem.add_conflict(i, j),
                        4 => problem.add_stitch(i, j),
                        _ => {}
                    }
                    index += 1;
                }
            }
            problem
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decomposer_output_is_always_a_valid_coloring(layout in arb_layout()) {
        let tech = Technology::nm20();
        let config = DecomposerConfig::quadruple(tech)
            .with_algorithm(ColorAlgorithm::Linear);
        let result = Decomposer::new(config.clone()).decompose(&layout).expect("valid config");
        prop_assert!(result.colors().iter().all(|&c| (c as usize) < 4));
        // Reported statistics must match an independent recomputation.
        let graph = DecompositionGraph::build(&layout, &tech, 4, &config.stitch);
        prop_assert_eq!(graph.vertex_count(), result.colors().len());
        let cost = coloring_cost(&graph, result.colors(), config.alpha);
        prop_assert_eq!(cost.conflicts, result.conflicts());
        prop_assert_eq!(cost.stitches, result.stitches());
    }

    #[test]
    fn peeling_plus_exact_kernel_coloring_matches_the_global_optimum(problem in arb_component(9)) {
        // Low-degree peeling is cost-preserving for conflicts: coloring the
        // kernel optimally and popping the peeled vertices back (each gets a
        // conflict-free color by construction) reaches exactly the global
        // optimal conflict count.
        let exact = mpl_ilp::solve_exact(
            &{
                let mut instance = mpl_ilp::ColoringInstance::new(problem.vertex_count(), problem.k())
                    .with_alpha(problem.alpha());
                for &(u, v) in problem.conflict_edges() {
                    instance.add_conflict(u, v);
                }
                for &(u, v) in problem.stitch_edges() {
                    instance.add_stitch(u, v);
                }
                instance
            },
            &mpl_ilp::ExactOptions {
                time_limit: Some(Duration::from_secs(5)),
                ..Default::default()
            },
        );
        // The decomposition-style solve: peel, color the kernel exactly, pop.
        use mpl_core::assign::{ColorAssigner, ExactAssigner};
        use mpl_core::division::peel_low_degree;
        let peeling = peel_low_degree(&problem);
        let assigner = ExactAssigner::new(Duration::from_secs(5));
        let mut colors = vec![u8::MAX; problem.vertex_count()];
        if !peeling.kernel.is_empty() {
            let (sub, original) = problem.induced(&peeling.kernel);
            let sub_colors = assigner.assign(&sub);
            for (local, &global) in original.iter().enumerate() {
                colors[global] = sub_colors[local];
            }
        }
        // Pop the stack greedily.
        let mut conflict_adj = vec![Vec::new(); problem.vertex_count()];
        for &(u, v) in problem.conflict_edges() {
            conflict_adj[u].push(v);
            conflict_adj[v].push(u);
        }
        for &v in peeling.stack.iter().rev() {
            let mut penalty = vec![0usize; problem.k()];
            for &u in &conflict_adj[v] {
                if colors[u] != u8::MAX {
                    penalty[colors[u] as usize] += 1;
                }
            }
            let best = penalty
                .iter()
                .enumerate()
                .min_by_key(|&(_, p)| *p)
                .map(|(c, _)| c as u8)
                .unwrap_or(0);
            colors[v] = best;
        }
        for c in colors.iter_mut() {
            if *c == u8::MAX {
                *c = 0;
            }
        }
        let (conflicts, _, _) = problem.evaluate(&colors);
        // The kernel optimum is at most the global optimum (induced
        // subgraph), and popping never adds a conflict, so the two conflict
        // counts must agree exactly.  Stitches may differ.
        prop_assert_eq!(conflicts, exact.conflicts);
    }

    #[test]
    fn engines_never_report_fewer_conflicts_than_the_exact_optimum(problem in arb_component(8)) {
        use mpl_core::assign::{ColorAssigner, ExactAssigner, LinearAssigner, SdpGreedyAssigner};
        let exact_colors = ExactAssigner::new(Duration::from_secs(5)).assign(&problem);
        let (exact_conflicts, _, _) = problem.evaluate(&exact_colors);
        for colors in [
            LinearAssigner::new().assign(&problem),
            SdpGreedyAssigner::new().assign(&problem),
        ] {
            let (conflicts, _, _) = problem.evaluate(&colors);
            prop_assert!(conflicts >= exact_conflicts);
        }
    }
}
