//! End-to-end integration tests: layout generation → decomposition graph →
//! graph division → color assignment, across engines and patterning orders.

use mpl_core::{
    coloring_cost, ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionGraph, StitchConfig,
};
use mpl_layout::{gen, gen::IscasCircuit, Technology};
use std::time::Duration;

fn config(k: usize, algorithm: ColorAlgorithm) -> DecomposerConfig {
    DecomposerConfig::k_patterning(k, Technology::nm20())
        .with_algorithm(algorithm)
        .with_ilp_time_limit(Duration::from_secs(5))
}

#[test]
fn fig1_motivating_example_tpl_fails_qpl_succeeds() {
    // The paper's Fig. 1: the 2x2 contact clique is indecomposable with
    // three masks but clean with four.
    let layout = gen::fig1_contact_clique(&Technology::nm20());
    let triple = Decomposer::new(config(3, ColorAlgorithm::Ilp))
        .decompose(&layout)
        .expect("valid config");
    let quad = Decomposer::new(config(4, ColorAlgorithm::Ilp))
        .decompose(&layout)
        .expect("valid config");
    assert_eq!(triple.conflicts(), 1);
    assert_eq!(quad.conflicts(), 0);
}

#[test]
fn k5_cluster_needs_a_fifth_mask() {
    let layout = gen::k5_cluster_layout(&Technology::nm20());
    let quad = Decomposer::new(config(4, ColorAlgorithm::SdpBacktrack))
        .decompose(&layout)
        .expect("valid config");
    let penta = Decomposer::new(config(5, ColorAlgorithm::SdpBacktrack))
        .decompose(&layout)
        .expect("valid config");
    assert_eq!(quad.conflicts(), 1);
    assert_eq!(penta.conflicts(), 0);
}

#[test]
fn reported_statistics_match_an_independent_recomputation() {
    let tech = Technology::nm20();
    let layout = IscasCircuit::C432.generate(&tech);
    for algorithm in ColorAlgorithm::ALL {
        let decomposer = Decomposer::new(config(4, algorithm));
        let result = decomposer.decompose(&layout).expect("valid config");
        let graph = DecompositionGraph::build(&layout, &tech, 4, &decomposer.config().stitch);
        let recomputed = coloring_cost(&graph, result.colors(), decomposer.config().alpha);
        assert_eq!(recomputed.conflicts, result.conflicts(), "{algorithm}");
        assert_eq!(recomputed.stitches, result.stitches(), "{algorithm}");
        assert!(result.colors().iter().all(|&c| (c as usize) < 4));
    }
}

#[test]
fn exact_engine_is_never_worse_than_the_heuristics_on_a_small_circuit() {
    let tech = Technology::nm20();
    let layout = IscasCircuit::C880.generate(&tech);
    let exact = Decomposer::new(config(4, ColorAlgorithm::Ilp))
        .decompose(&layout)
        .expect("valid config");
    for algorithm in [
        ColorAlgorithm::SdpBacktrack,
        ColorAlgorithm::SdpGreedy,
        ColorAlgorithm::Linear,
    ] {
        let other = Decomposer::new(config(4, algorithm))
            .decompose(&layout)
            .expect("valid config");
        assert!(
            exact.cost() <= other.cost() + 1e-9,
            "{algorithm} beat the exact engine: {} < {}",
            other.cost(),
            exact.cost()
        );
    }
}

#[test]
fn more_masks_never_increase_the_optimal_conflict_count() {
    let tech = Technology::nm20();
    let layout = IscasCircuit::C1908.generate(&tech);
    let mut previous = usize::MAX;
    for k in [4usize, 5, 6] {
        let result = Decomposer::new(config(k, ColorAlgorithm::SdpBacktrack))
            .decompose(&layout)
            .expect("valid config");
        assert!(
            result.conflicts() <= previous,
            "conflicts increased from {previous} to {} at K = {k}",
            result.conflicts()
        );
        previous = result.conflicts();
    }
}

#[test]
fn stitch_insertion_never_hurts_the_conflict_count() {
    let tech = Technology::nm20();
    let layout = IscasCircuit::C2670.generate(&tech);
    let mut with_stitches = config(4, ColorAlgorithm::SdpBacktrack);
    with_stitches.stitch = StitchConfig::default();
    let mut without_stitches = config(4, ColorAlgorithm::SdpBacktrack);
    without_stitches.stitch = StitchConfig::disabled();
    let with_result = Decomposer::new(with_stitches)
        .decompose(&layout)
        .expect("valid config");
    let without_result = Decomposer::new(without_stitches)
        .decompose(&layout)
        .expect("valid config");
    assert!(with_result.conflicts() <= without_result.conflicts());
}

#[test]
fn pentuple_patterning_runs_on_a_dense_circuit() {
    let layout = IscasCircuit::C7552.generate(&Technology::nm20());
    let result = Decomposer::new(config(5, ColorAlgorithm::Linear))
        .decompose(&layout)
        .expect("valid config");
    assert_eq!(result.k(), 5);
    assert!(result.colors().iter().all(|&c| c < 5));
}

#[test]
fn table_row_shapes_match_paper_ordering_on_a_medium_circuit() {
    // A single-circuit slice of Table 1: the exact engine is at least as
    // good as SDP+Backtrack, which is at least as good as SDP+Greedy; the
    // linear engine is the fastest.
    let layout = IscasCircuit::C6288.generate(&Technology::nm20());
    let exact = Decomposer::new(config(4, ColorAlgorithm::Ilp))
        .decompose(&layout)
        .expect("valid config");
    let backtrack = Decomposer::new(config(4, ColorAlgorithm::SdpBacktrack))
        .decompose(&layout)
        .expect("valid config");
    let greedy = Decomposer::new(config(4, ColorAlgorithm::SdpGreedy))
        .decompose(&layout)
        .expect("valid config");
    let linear = Decomposer::new(config(4, ColorAlgorithm::Linear))
        .decompose(&layout)
        .expect("valid config");
    assert!(exact.conflicts() <= backtrack.conflicts());
    assert!(backtrack.conflicts() <= greedy.conflicts());
    assert!(linear.color_time() <= backtrack.color_time());
    assert!(linear.conflicts() >= exact.conflicts());
}
