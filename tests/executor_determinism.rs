//! Executor determinism and parallel speedup.
//!
//! Independent components share no conflict or stitch edges, so the
//! per-component coloring is a pure function of each task: every executor
//! must produce **byte-identical** color vectors, regardless of thread
//! count or schedule.  These tests pin that property across all four
//! color-assignment engines, on generated row layouts and on a layout that
//! went through a GDSII round trip, and demonstrate the wall-clock speedup
//! on a many-component benchmark.  The cross-layout counterpart — batches
//! of many layouts on one shared executor — is pinned in
//! `tests/session_determinism.rs`.

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig, SerialExecutor, ThreadPoolExecutor};
use mpl_layout::{gen, Layout, Technology};
use std::time::Duration;

fn config(k: usize, algorithm: ColorAlgorithm) -> DecomposerConfig {
    DecomposerConfig::k_patterning(k, Technology::nm20())
        .with_algorithm(algorithm)
        // Generous per-component budget so the exact engine never hits its
        // deadline on these small instances (a deadline hit could make the
        // incumbent depend on wall-clock timing instead of the instance).
        .with_ilp_time_limit(Duration::from_secs(120))
}

/// Asserts that 2-, 4- and 8-thread pools color `layout` exactly like the
/// serial executor, for every engine.
fn assert_executors_agree(layout: &Layout, k: usize) {
    for algorithm in ColorAlgorithm::ALL {
        let decomposer = Decomposer::new(config(k, algorithm));
        let plan = decomposer.plan(layout).expect("valid config");
        let serial = plan.execute(&SerialExecutor);
        for threads in [2usize, 4, 8] {
            let pool = ThreadPoolExecutor::new(threads).expect("non-zero threads");
            let parallel = plan.execute(&pool);
            assert_eq!(
                serial.colors(),
                parallel.colors(),
                "{algorithm} diverged on {} with {threads} threads",
                layout.name()
            );
            assert_eq!(serial.conflicts(), parallel.conflicts());
            assert_eq!(serial.stitches(), parallel.stitches());
        }
    }
}

#[test]
fn thread_pools_match_serial_on_generated_row_layouts() {
    for seed in [3u64, 7] {
        let layout = gen::generate_row_layout(
            &gen::RowLayoutConfig::small(format!("det-{seed}"), seed),
            &Technology::nm20(),
        );
        assert_executors_agree(&layout, 4);
    }
}

#[test]
fn thread_pools_match_serial_on_pentuple_patterning() {
    let layout = gen::generate_row_layout(
        &gen::RowLayoutConfig::small("det-penta", 5),
        &Technology::nm20(),
    );
    assert_executors_agree(&layout, 5);
}

#[test]
fn thread_pools_match_serial_after_a_gds_round_trip() {
    let layout = gen::generate_row_layout(
        &gen::RowLayoutConfig::small("det-gds", 5),
        &Technology::nm20(),
    );
    let mut path = std::env::temp_dir();
    path.push(format!("executor-determinism-{}.gds", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    mpl_gds::write_layout_file(&path, &layout, 1, 0).expect("write gds");
    let map = mpl_gds::LayerMap::from_specs::<&str>(&[]).expect("empty layer map");
    let read_back =
        mpl_gds::load_layout_file(&path, &map, &mpl_gds::ReadOptions::default()).expect("re-read");
    std::fs::remove_file(&path).ok();
    assert_executors_agree(&read_back, 4);
}

/// Builds a layout of `clusters` dense contact clusters, far enough apart
/// that each cluster is its own independent component.
fn many_component_layout(clusters: usize, side: i64) -> Layout {
    let mut builder = Layout::builder(format!("clusters-{clusters}"));
    let pitch = 40i64; // contacts 20 nm wide, 20 nm apart: all in conflict range
    let cluster_span = 20_000i64; // far beyond the 100 nm color-friendly band
    let per_row = (clusters as f64).sqrt().ceil() as i64;
    for cluster in 0..clusters as i64 {
        let ox = (cluster % per_row) * cluster_span;
        let oy = (cluster / per_row) * cluster_span;
        for i in 0..side {
            for j in 0..side {
                builder.add_contact(
                    mpl_geometry::Nm(ox + i * pitch),
                    mpl_geometry::Nm(oy + j * pitch),
                    mpl_geometry::Nm(20),
                );
            }
        }
    }
    builder.build()
}

#[test]
#[ignore = "wall-clock benchmark: run explicitly with --ignored (see benchlogs/parallel_speedup.log)"]
fn parallel_speedup_on_many_components() {
    // ≥ 32 independent components, each a dense cluster that keeps the
    // SDP+Backtrack engine busy; 4 worker threads should finish the same
    // work well ahead of the serial executor.  The colors must still be
    // byte-identical.  Run with `--nocapture` to see the timings (recorded
    // in benchlogs/parallel_speedup.log).
    let layout = many_component_layout(48, 5);
    let decomposer = Decomposer::new(config(4, ColorAlgorithm::SdpBacktrack));
    let plan = decomposer.plan(&layout).expect("valid config");
    assert!(
        plan.tasks().len() >= 32,
        "expected >= 32 components, planned {}",
        plan.tasks().len()
    );

    let serial_start = std::time::Instant::now();
    let serial = plan.execute(&SerialExecutor);
    let serial_elapsed = serial_start.elapsed();

    let pool = ThreadPoolExecutor::new(4).expect("non-zero threads");
    let parallel_start = std::time::Instant::now();
    let parallel = plan.execute(&pool);
    let parallel_elapsed = parallel_start.elapsed();

    assert_eq!(serial.colors(), parallel.colors());
    assert_eq!(serial.component_count(), parallel.component_count());
    println!(
        "components: {}, vertices: {}",
        serial.component_count(),
        serial.vertex_count()
    );
    println!(
        "serial:     {:>8.3}s ({} conflicts)",
        serial_elapsed.as_secs_f64(),
        serial.conflicts()
    );
    println!(
        "threads:4   {:>8.3}s ({} conflicts), speedup {:.2}x",
        parallel_elapsed.as_secs_f64(),
        parallel.conflicts(),
        serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9)
    );
}
