//! Constructive reproductions of the paper's figures.

use mpl_core::{ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionGraph, StitchConfig};
use mpl_layout::{gen, Technology};

#[test]
fn fig1_contact_clique_is_a_k4_in_the_decomposition_graph() {
    // Fig. 1(a): the standard-cell contact pattern forms a 4-clique.
    let tech = Technology::nm20();
    let layout = gen::fig1_contact_clique(&tech);
    let graph = DecompositionGraph::build(&layout, &tech, 3, &StitchConfig::default());
    assert_eq!(graph.vertex_count(), 4);
    assert_eq!(graph.conflict_edges().len(), 6);
}

#[test]
fn fig1_resolved_by_four_masks_with_all_distinct_colors() {
    // Fig. 1(b): with four masks every contact gets its own mask.
    let tech = Technology::nm20();
    let layout = gen::fig1_contact_clique(&tech);
    let config = DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::Ilp);
    let result = Decomposer::new(config)
        .decompose(&layout)
        .expect("valid config");
    assert_eq!(result.conflicts(), 0);
    let mut colors = result.colors().to_vec();
    colors.sort_unstable();
    colors.dedup();
    assert_eq!(colors.len(), 4);
}

#[test]
fn fig3_simplex_vectors_have_the_stated_inner_products() {
    // Fig. 3: four unit vectors with pairwise inner product -1/3.
    let vectors = mpl_sdp::vectors::simplex_vectors(4);
    for (i, vi) in vectors.iter().enumerate() {
        for vj in vectors.iter().skip(i + 1) {
            let dot: f64 = vi.iter().zip(vj).map(|(a, b)| a * b).sum();
            assert!((dot + 1.0 / 3.0).abs() < 1e-9);
        }
    }
}

#[test]
fn fig5_three_cut_rotation_reconnects_components_without_conflicts() {
    // Fig. 5: two components joined by a 3-cut are colored independently and
    // reconnected by rotating one of them.
    use mpl_core::division::{ghtree_pieces, merge_with_rotation};
    use mpl_core::ComponentProblem;

    // Two internally 4-edge-connected components (K5s) joined by a 3-cut
    // (a-d, b-e, c-f in the figure's notation).
    let mut problem = ComponentProblem::new(10, 4, 0.1);
    for base in [0, 5] {
        for i in 0..5 {
            for j in (i + 1)..5 {
                problem.add_conflict(base + i, base + j);
            }
        }
    }
    problem.add_conflict(0, 5);
    problem.add_conflict(1, 6);
    problem.add_conflict(2, 7);
    let vertices: Vec<usize> = (0..10).collect();
    let mut pieces = ghtree_pieces(&problem, &vertices);
    pieces.sort_by_key(|piece| piece[0]);
    assert_eq!(pieces.len(), 2, "the 3-cut must split the graph for K = 4");

    // Color both K5s with the same pattern (one unavoidable internal conflict
    // each, and every cut edge monochromatic), then let the rotation fix the
    // cut edges without touching the internal cost.
    let mut colors: Vec<u8> = vec![0, 1, 2, 3, 0, 0, 1, 2, 3, 0];
    let before = problem.evaluate(&colors);
    assert_eq!(
        before.0,
        2 + 3,
        "two internal conflicts plus the three cut edges"
    );
    merge_with_rotation(&problem, &pieces, &mut colors);
    let (conflicts, _, _) = problem.evaluate(&colors);
    assert_eq!(
        conflicts, 2,
        "rotation removes every cut-edge conflict and preserves the internal ones"
    );
}

#[test]
fn fig6_ghtree_divides_exactly_at_small_cuts() {
    // Fig. 6: the GH-tree reports pairwise min-cuts; edges lighter than K
    // are removed and the remaining groups are colored independently.
    use mpl_graph::{GomoryHuTree, Graph};
    let mut g = Graph::new(5);
    // A K4 core {0,1,2,3} plus vertex 4 attached by three edges.
    for i in 0..4 {
        for j in (i + 1)..4 {
            g.add_edge(i, j);
        }
    }
    g.add_edge(4, 0);
    g.add_edge(4, 1);
    g.add_edge(4, 2);
    let tree = GomoryHuTree::build(&g);
    assert_eq!(tree.min_cut(4, 3), 3);
    let groups = tree.components_after_removing(4);
    assert!(groups.iter().any(|group| group == &vec![0, 1, 2]));
}

#[test]
fn fig7_tpl_coloring_distance_already_couples_second_neighbours() {
    // Fig. 7: under min_s = 2 s_m + w_m even regular line patterns stop
    // being sparsely coupled; under the QPL distance second neighbours
    // conflict outright, which is why planarity arguments do not apply.
    let tech = Technology::nm20();
    let layout = gen::dense_parallel_lines(&tech, 8, mpl_geometry::Nm(400));
    let tpl = DecompositionGraph::build(&layout, &tech, 3, &StitchConfig::disabled());
    let qpl = DecompositionGraph::build(&layout, &tech, 4, &StitchConfig::disabled());
    // Triple patterning distance: only adjacent lines conflict (7 edges).
    assert_eq!(tpl.conflict_edges().len(), 7);
    // Quadruple patterning distance: adjacent and second neighbours (7 + 6).
    assert_eq!(qpl.conflict_edges().len(), 13);
}

#[test]
fn fig7_dense_contact_pattern_contains_a_k5_and_defeats_four_coloring() {
    let tech = Technology::nm20();
    let layout = gen::k5_cluster_layout(&tech);
    let graph = DecompositionGraph::build(&layout, &tech, 4, &StitchConfig::default());
    // K5: five vertices, ten conflict edges, so the graph is not planar and
    // no four-coloring is conflict-free.
    assert_eq!(graph.vertex_count(), 5);
    assert_eq!(graph.conflict_edges().len(), 10);
    let config = DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::Ilp);
    let result = Decomposer::new(config)
        .decompose(&layout)
        .expect("valid config");
    assert_eq!(result.conflicts(), 1);
}
