//! Fault injection against the `mpl-serve` wire protocol.
//!
//! Where `serve_integration.rs` pins the happy path, this harness attacks
//! the server: readers that stall, connections that die mid-frame, cancel
//! frames racing completion, storms of already-expired deadlines,
//! malformed-frame floods and simultaneous shutdowns.  The properties
//! asserted are the robustness contract of the serve layer:
//!
//! * the server stays responsive to healthy connections whatever one
//!   misbehaving peer does;
//! * a submission resolves with **exactly one** terminal frame (`result`,
//!   `cancelled` or an id-tagged fatal `error`) — never zero, never two;
//! * result frames are never dropped by output back-pressure;
//! * cancellation takes effect before a not-yet-started component starts,
//!   asserted with work counters (`bnb_nodes`, skip counts), not
//!   wall-clock.

use mpl_layout::{gen, io, Technology};
use mpl_serve::{FrameDecoder, Json, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A low-level protocol driver: hand-built lines out, raw frames in.
struct RawClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    stashed: Vec<Json>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        RawClient {
            stream: TcpStream::connect(addr).expect("connect to test server"),
            decoder: FrameDecoder::new(),
            stashed: Vec::new(),
        }
    }

    fn send_line(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write frame");
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write bytes");
    }

    /// Blocks until the next frame arrives and parses it.
    fn recv(&mut self) -> Json {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(frame) = self.decoder.next_frame().expect("well-framed response") {
                if frame.trim().is_empty() {
                    continue;
                }
                return Json::parse(&frame).expect("server frames are valid JSON");
            }
            let read = self.stream.read(&mut chunk).expect("read from server");
            assert!(read > 0, "server closed the connection unexpectedly");
            self.decoder.push(&chunk[..read]);
        }
    }

    /// Skips non-terminal frames until the terminal frame (`result`,
    /// `cancelled` or `error`) for `id` arrives; terminal frames for other
    /// submissions are stashed.
    fn await_terminal(&mut self, id: &str) -> Json {
        if let Some(position) = self
            .stashed
            .iter()
            .position(|frame| frame.get("id").and_then(Json::as_str) == Some(id))
        {
            return self.stashed.remove(position);
        }
        loop {
            let frame = self.recv();
            match frame.get("type").and_then(Json::as_str).expect("type") {
                "queued" | "progress" | "tile_progress" | "hier_progress" | "pong" => continue,
                "result" | "cancelled" | "error" => {
                    if frame.get("id").and_then(Json::as_str) == Some(id) {
                        return frame;
                    }
                    self.stashed.push(frame);
                }
                other => panic!("unexpected frame type {other:?}: {frame}"),
            }
        }
    }
}

fn spawn_server() -> ServerHandle {
    Server::spawn(&ServerConfig::default()).expect("bind ephemeral port")
}

fn row_layout_text(name: &str, seed: u64) -> String {
    io::to_text(&gen::generate_row_layout(
        &gen::RowLayoutConfig::small(name, seed),
        &Technology::nm20(),
    ))
}

/// Builds a `submit` frame through the JSON writer so escaping is always
/// correct.
fn submit_frame(id: &str, layout_text: &str, extras: &[(&str, Json)]) -> String {
    let mut pairs = vec![
        ("type", Json::string("submit")),
        ("id", Json::string(id)),
        ("layout_text", Json::string(layout_text)),
        ("algorithm", Json::string("linear")),
        ("executor", Json::string("serial")),
    ];
    pairs.extend(extras.iter().cloned());
    Json::object(pairs).to_string()
}

fn field(frame: &Json, key: &str) -> usize {
    frame
        .get(key)
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("frame carries {key}: {frame}"))
}

fn pong_counter(pong: &Json, key: &str) -> usize {
    pong.get(key)
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("pong carries {key}: {pong}"))
}

#[test]
fn a_stalled_reader_does_not_block_other_connections_or_lose_results() {
    let handle = Server::spawn(&ServerConfig {
        // Small queue so the stalled connection actually exercises the
        // bounded-queue path while its frames pile up.
        output_queue_frames: 8,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");

    // The stalled connection submits three layouts with progress streaming
    // on, then reads nothing while another connection works.
    let mut stalled = RawClient::connect(handle.addr());
    let stalled_layouts: Vec<String> = (0..3)
        .map(|index| row_layout_text(&format!("stall-{index}"), 40 + index as u64))
        .collect();
    for (index, text) in stalled_layouts.iter().enumerate() {
        stalled.send_line(&submit_frame(
            &format!("stall-{index}"),
            text,
            &[("progress", Json::Bool(true))],
        ));
    }

    // A healthy connection completes several round trips meanwhile — the
    // server must stay responsive whatever the stalled peer's queue does.
    let mut healthy = RawClient::connect(handle.addr());
    for round in 0..4 {
        let id = format!("healthy-{round}");
        healthy.send_line(&submit_frame(&id, &row_layout_text(&id, 90 + round), &[]));
        let frame = healthy.await_terminal(&id);
        assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    }

    // The stalled reader finally drains its socket: every result frame must
    // be there, intact — back-pressure may only have cost progress ticks.
    for index in 0..3 {
        let frame = stalled.await_terminal(&format!("stall-{index}"));
        assert_eq!(
            frame.get("type").and_then(Json::as_str),
            Some("result"),
            "result frames are never dropped: {frame}"
        );
        let colors = frame
            .get("colors")
            .and_then(Json::as_array)
            .expect("full color assignment");
        assert_eq!(colors.len(), field(&frame, "vertices"));
    }
    assert!(stalled.stashed.is_empty(), "no duplicate terminal frames");
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn mid_frame_disconnects_leave_the_server_serving() {
    let handle = spawn_server();

    // Half a frame, then gone.
    let mut torn = RawClient::connect(handle.addr());
    torn.send_bytes(b"{\"type\":\"sub");
    drop(torn);

    // A full valid submit, then half of a second frame, then gone: the
    // accepted submission is auto-cancelled by the reader's EOF.
    let mut torn = RawClient::connect(handle.addr());
    let line = submit_frame("torn", &row_layout_text("torn", 5), &[]);
    torn.send_bytes(format!("{line}\n{{\"type\":\"canc").as_bytes());
    drop(torn);

    // Garbage bytes mid-"frame", then gone.
    let mut torn = RawClient::connect(handle.addr());
    torn.send_bytes(&[0xff, 0x00, 0x80]);
    drop(torn);

    let mut healthy = RawClient::connect(handle.addr());
    healthy.send_line(&submit_frame("after", &row_layout_text("after", 6), &[]));
    let frame = healthy.await_terminal("after");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn cancel_completion_races_resolve_with_exactly_one_terminal_frame() {
    let handle = spawn_server();
    let mut client = RawClient::connect(handle.addr());
    let layout = row_layout_text("race", 17);

    for round in 0..12 {
        let id = format!("race-{round}");
        // Submit and cancel in one TCP write: the cancel chases the
        // submission as closely as the protocol allows.
        let submit = submit_frame(&id, &layout, &[]);
        let cancel = Json::object(vec![
            ("type", Json::string("cancel")),
            ("id", Json::string(id.clone())),
        ])
        .to_string();
        client.send_bytes(format!("{submit}\n{cancel}\n").as_bytes());

        let mut components = None;
        let mut terminal = None;
        let mut cancel_errors = 0usize;
        // Read until the terminal frame and a trailing pong barrier: any
        // non-fatal cancel error (the cancel lost the race) is enqueued by
        // the reader before the pong, so draining to the pong observes it.
        client.send_line("{\"type\":\"ping\"}");
        loop {
            let frame = client.recv();
            match frame.get("type").and_then(Json::as_str).expect("type") {
                "queued" => components = Some(field(&frame, "components")),
                "progress" => {}
                "pong" if terminal.is_some() => break,
                "pong" => {
                    // The scheduler has not resolved the submission yet;
                    // keep a second barrier in flight.
                    client.send_line("{\"type\":\"ping\"}");
                }
                "result" | "cancelled" => {
                    assert!(
                        terminal.is_none(),
                        "second terminal frame for {id}: {frame}"
                    );
                    terminal = Some(frame);
                }
                "error" => {
                    assert_eq!(frame.get("code").and_then(Json::as_str), Some("cancel"));
                    assert_eq!(frame.get("id").and_then(Json::as_str), Some(id.as_str()));
                    cancel_errors += 1;
                }
                other => panic!("unexpected frame type {other:?}: {frame}"),
            }
        }

        let terminal = terminal.expect("every submission resolves");
        let components = components.expect("queued frame seen");
        match terminal.get("type").and_then(Json::as_str).unwrap() {
            "cancelled" => {
                // The cancel was processed while the submission was still
                // pending: its counters must cover every component, and a
                // submission cancelled before its batch started must not
                // have burned any search nodes — the work-counter form of
                // "cancellation latency is bounded".
                let completed = field(&terminal, "components_completed");
                let skipped = field(&terminal, "components_skipped");
                assert_eq!(completed + skipped, components);
                if skipped == components {
                    assert_eq!(field(&terminal, "bnb_nodes"), 0);
                }
                assert_eq!(cancel_errors, 0, "cancelled ⇒ the cancel frame hit");
            }
            "result" => {
                // Completion won; the late cancel must have answered with
                // the non-fatal typed error (or raced the retirement and
                // still fired the token — then the terminal would have
                // been `cancelled`, handled above).
                assert_eq!(cancel_errors, 1, "late cancel answers typed error");
            }
            other => panic!("unexpected terminal {other:?}"),
        }
    }
    assert!(client.stashed.is_empty());
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn cancelling_unknown_or_finished_ids_is_a_nonfatal_typed_error() {
    let handle = spawn_server();
    let mut client = RawClient::connect(handle.addr());

    client.send_line("{\"type\":\"cancel\",\"id\":\"never-submitted\"}");
    let frame = client.recv();
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(frame.get("code").and_then(Json::as_str), Some("cancel"));
    assert_eq!(
        frame.get("id").and_then(Json::as_str),
        Some("never-submitted")
    );

    // A finished submission is indistinguishable from an unknown one.
    client.send_line(&submit_frame("done", &row_layout_text("done", 8), &[]));
    let frame = client.await_terminal("done");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    client.send_line("{\"type\":\"cancel\",\"id\":\"done\"}");
    let frame = client.recv();
    assert_eq!(frame.get("code").and_then(Json::as_str), Some("cancel"));

    // The connection survives both errors.
    client.send_line(&submit_frame("again", &row_layout_text("again", 9), &[]));
    let frame = client.await_terminal("again");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn a_deadline_storm_returns_well_formed_flagged_partial_results() {
    let handle = spawn_server();
    let mut client = RawClient::connect(handle.addr());

    // Every submission's deadline is already expired on acceptance, so
    // every component is skipped at its work-entry poll — no wall-clock
    // sensitivity, pure counter assertions.
    const STORM: usize = 8;
    for index in 0..STORM {
        client.send_line(&submit_frame(
            &format!("storm-{index}"),
            &row_layout_text(&format!("storm-{index}"), 60 + index as u64),
            &[("deadline_ms", Json::Number(0.0))],
        ));
    }
    for index in 0..STORM {
        let frame = client.await_terminal(&format!("storm-{index}"));
        assert_eq!(
            frame.get("type").and_then(Json::as_str),
            Some("result"),
            "a deadline miss is a partial *result*, not an error: {frame}"
        );
        assert_eq!(frame.get("deadline_exceeded"), Some(&Json::Bool(true)));
        // Undisturbed flags stay off the wire: a deadline miss is not a
        // cancellation.
        assert_eq!(frame.get("cancelled"), None);
        let components = field(&frame, "components");
        assert_eq!(field(&frame, "components_skipped"), components);
        assert_eq!(field(&frame, "components_completed"), 0);
        let colors = frame
            .get("colors")
            .and_then(Json::as_array)
            .expect("partial results still carry a full-length color array");
        assert_eq!(colors.len(), field(&frame, "vertices"));
        assert!(colors.iter().all(|color| color.as_usize() == Some(0)));
    }

    client.send_line("{\"type\":\"ping\"}");
    let pong = client.recv();
    assert_eq!(pong.get("type").and_then(Json::as_str), Some("pong"));
    assert!(pong_counter(&pong, "deadline_exceeded_requests") >= STORM);

    // A deadline-free submission on the same connection is unaffected.
    client.send_line(&submit_frame("calm", &row_layout_text("calm", 99), &[]));
    let frame = client.await_terminal("calm");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(frame.get("deadline_exceeded"), None);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_frame_floods_yield_typed_errors_and_the_connection_survives() {
    let handle = spawn_server();
    let mut client = RawClient::connect(handle.addr());

    let mut expected_errors = 0usize;
    for round in 0..10 {
        // Unparsable JSON.
        client.send_line(&format!("this is not json #{round}"));
        // Parsable, but not a request.
        client.send_line("{}");
        client.send_line("[1,2,3]");
        client.send_line("{\"type\":\"no-such-frame\"}");
        client.send_line("{\"type\":\"submit\"}");
        expected_errors += 5;
    }
    // A non-UTF-8 frame: discarded, stream survives.
    client.send_bytes(&[0xff, 0xfe, 0xfd, b'\n']);
    expected_errors += 1;

    for count in 0..expected_errors {
        let frame = client.recv();
        assert_eq!(
            frame.get("type").and_then(Json::as_str),
            Some("error"),
            "flood frame {count} answers a typed error: {frame}"
        );
        assert!(frame.get("code").and_then(Json::as_str).is_some());
    }

    // The connection is still newline-synchronised and fully usable.
    client.send_line(&submit_frame("sane", &row_layout_text("sane", 3), &[]));
    let frame = client.await_terminal("sane");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn an_oversized_frame_is_discarded_and_an_unterminated_one_is_fatal() {
    // A cap far below one TCP segment, so the oversized line arrives whole
    // in a single read and hits the recoverable newline-synchronised path.
    let config = ServerConfig {
        max_frame_len: 64,
        ..ServerConfig::default()
    };

    let handle = Server::spawn(&config).expect("bind ephemeral port");
    let mut client = RawClient::connect(handle.addr());
    client.send_line(&"x".repeat(100));
    let frame = client.recv();
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("error"));
    assert!(
        frame
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|message| message.contains("64-byte limit")),
        "{frame}"
    );
    // The offending frame was discarded whole: the connection still works.
    client.send_line("{\"type\":\"ping\"}");
    let pong = client.recv();
    assert_eq!(pong.get("type").and_then(Json::as_str), Some("pong"));
    handle.shutdown().expect("clean shutdown");

    // A frame that exceeds the cap with its newline nowhere in sight can
    // never be resynchronised: typed error, then the connection closes.
    let handle = Server::spawn(&config).expect("bind ephemeral port");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(&[b'y'; 200]).expect("write unterminated");
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 1024];
    let mut saw_error = false;
    loop {
        while let Ok(Some(frame)) = decoder.next_frame() {
            if frame.trim().is_empty() {
                continue;
            }
            let json = Json::parse(&frame).expect("valid frame");
            assert_eq!(json.get("type").and_then(Json::as_str), Some("error"));
            saw_error = true;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(read) => decoder.push(&chunk[..read]),
        }
    }
    assert!(
        saw_error,
        "the fatal framing offence still answers an error"
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn a_reader_disconnect_auto_cancels_that_connections_pending_requests() {
    let handle = spawn_server();

    // Pre-generate everything so the doomed phase below is nothing but
    // socket round-trips.
    let doomed_texts: Vec<String> = (0..6)
        .map(|index| row_layout_text(&format!("doomed-{index}"), 70 + index as u64))
        .collect();
    let plug_text = io::to_text(&gen::generate_row_layout(
        &gen::RowLayoutConfig {
            rows: 32,
            cells_per_row: 80,
            k5_clusters: 6,
            dense_strips: 3,
            ..gen::RowLayoutConfig::small("plug", 700)
        },
        &Technology::nm20(),
    ));

    // The scheduler retires submissions wave by wave: everything that
    // arrives while a wave is computing resolves only after that wave's
    // whole batch finishes.  One large exact-solver job therefore opens a
    // deterministic window in which later submissions cannot retire.
    let mut plug = RawClient::connect(handle.addr());
    plug.send_line(
        &Json::object(vec![
            ("type", Json::string("submit")),
            ("id", Json::string("plug")),
            ("layout_text", Json::string(plug_text)),
            ("algorithm", Json::string("ilp")),
            ("executor", Json::string("serial")),
        ])
        .to_string(),
    );
    let ack = plug.recv();
    assert_eq!(
        ack.get("type").and_then(Json::as_str),
        Some("queued"),
        "{ack}"
    );

    // Submit a wave inside the plug's window and vanish.  Draining the
    // acks first guarantees all six are registered and every byte this
    // connection will ever send has been consumed, so the disconnect
    // cannot race the submits themselves.
    let mut doomed = RawClient::connect(handle.addr());
    for (index, text) in doomed_texts.iter().enumerate() {
        doomed.send_line(&submit_frame(&format!("doomed-{index}"), text, &[]));
    }
    for _ in 0..6 {
        let ack = doomed.recv();
        assert_eq!(
            ack.get("type").and_then(Json::as_str),
            Some("queued"),
            "{ack}"
        );
    }
    drop(doomed);

    // The disconnect cancels whatever had not resolved yet; the scheduler
    // counts those as it retires them.  Poll the counter — bounded
    // iterations, no wall-clock assertion on *how fast*.
    let mut observer = RawClient::connect(handle.addr());
    let mut cancelled = 0usize;
    for _ in 0..24_000 {
        observer.send_line("{\"type\":\"ping\"}");
        let pong = observer.recv();
        cancelled = pong_counter(&pong, "cancelled_requests");
        if cancelled > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        cancelled > 0,
        "at least one of the six pending submissions was auto-cancelled"
    );

    // And the server keeps serving.
    observer.send_line(&submit_frame("alive", &row_layout_text("alive", 1), &[]));
    let frame = observer.await_terminal("alive");
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("result"));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn simultaneous_shutdown_frames_from_two_connections_resolve_once() {
    let handle = spawn_server();
    let addr = handle.addr();

    let shooters: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .write_all(b"{\"type\":\"shutdown\"}\n")
                    .expect("send shutdown");
                // Half-close so the server's reader sees EOF and hangs up
                // once the ack has drained, then read to EOF; the ack may
                // or may not arrive before the socket closes, and both
                // are acceptable.
                stream
                    .shutdown(std::net::Shutdown::Write)
                    .expect("half-close");
                let mut decoder = FrameDecoder::new();
                let mut chunk = [0u8; 1024];
                let mut acked = false;
                loop {
                    while let Ok(Some(frame)) = decoder.next_frame() {
                        if !frame.trim().is_empty() {
                            let json = Json::parse(&frame).expect("valid frame");
                            assert_eq!(
                                json.get("type").and_then(Json::as_str),
                                Some("shutting_down")
                            );
                            acked = true;
                        }
                    }
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return acked,
                        Ok(read) => decoder.push(&chunk[..read]),
                    }
                }
            })
        })
        .collect();

    let acks: Vec<bool> = shooters
        .into_iter()
        .map(|shooter| shooter.join().expect("shutdown client panicked"))
        .collect();
    assert!(
        acks.iter().any(|&acked| acked),
        "at least one shutdown frame is acknowledged"
    );

    // The deterministic part of the regression: the server must come down
    // exactly once, promptly, with no hung listener or scheduler thread.
    handle.join();
}
