//! End-to-end GDSII flow: generate a synthetic benchmark, write it to GDS,
//! read it back through the layer map, decompose with K = 4, export a
//! colored GDS (one layer per mask) and independently re-verify that every
//! mask layer is spacing-clean — the full path a real layout would take
//! through the system.

use mpl_core::{
    extract_masks, verify_spacing, ColorAlgorithm, Decomposer, DecomposerConfig,
    DecompositionGraph, StitchConfig,
};
use mpl_gds::{LayerMap, ReadOptions};
use mpl_layout::{gen, Layout, Technology};

fn temp_path(name: &str) -> String {
    let mut path = std::env::temp_dir();
    path.push(format!("qpl-gds-flow-{}-{name}", std::process::id()));
    path.to_string_lossy().into_owned()
}

fn synthetic_benchmark(tech: &Technology) -> Layout {
    let config = gen::RowLayoutConfig {
        name: "gdsflow".into(),
        rows: 2,
        cells_per_row: 10,
        contact_density: 0.6,
        wire_density: 0.6,
        // No K5 clusters (they need a fifth mask) and no dense strips (they
        // need stitches, which this test disables so decomposition vertices
        // coincide with shapes): the benchmark must be 4-colorable outright.
        k5_clusters: 0,
        dense_strips: 0,
        strip_length: 5,
        seed: 20140601,
    };
    gen::generate_row_layout(&config, tech)
}

#[test]
fn colored_gds_round_trip_verifies_clean_per_mask() {
    let tech = Technology::nm20();
    let k = 4;
    let layout = synthetic_benchmark(&tech);
    assert!(layout.shape_count() > 20, "benchmark should be non-trivial");

    // Write the benchmark to GDS on layer 17:0 and read it back through the
    // layer map.
    let input_path = temp_path("input.gds");
    mpl_gds::write_layout_file(&input_path, &layout, 17, 0).expect("write input GDS");
    let map = LayerMap::all().with(17, Some(0));
    let read_back =
        mpl_gds::read_layout_file(&input_path, &map, &ReadOptions::default()).expect("read input");
    assert_eq!(read_back.shape_count(), layout.shape_count());
    for (original, parsed) in layout.iter().zip(read_back.iter()) {
        assert_eq!(
            original.polygon().canonical_rects(),
            parsed.polygon().canonical_rects(),
            "round trip must preserve geometry up to rect fragmentation"
        );
    }

    // Decompose the re-read layout for quadruple patterning. Stitches are
    // disabled so that decomposition vertices coincide with shapes and the
    // per-mask layers partition the layout exactly.
    let mut config = DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::SdpBacktrack);
    config.stitch = StitchConfig::disabled();
    let result = Decomposer::new(config.clone())
        .decompose(&read_back)
        .expect("valid config");
    assert_eq!(
        result.conflicts(),
        0,
        "the synthetic benchmark must decompose cleanly with K = 4"
    );

    // Export the colored GDS: mask k on layer 100 + k.
    let graph = DecompositionGraph::build(&read_back, &tech, k, &config.stitch);
    let masks = extract_masks(&graph, result.colors());
    let mut per_mask = vec![Vec::new(); k];
    for mask in &masks {
        for &vertex in &mask.vertices {
            per_mask[mask.index].push(graph.polygon(vertex).clone());
        }
    }
    let colored_path = temp_path("colored.gds");
    mpl_gds::write_colored_file(&colored_path, read_back.name(), &per_mask, 100)
        .expect("write colored GDS");

    // Independently re-read each mask layer and re-verify the same-mask
    // spacing rule from the geometry alone: a clean decomposition means no
    // two features on one mask are closer than the coloring distance.
    let coloring_distance = tech.coloring_distance(k);
    let mut total_features = 0;
    for mask_index in 0..k {
        let mask_map = LayerMap::all().with(100 + mask_index as i16, None);
        let mask_layout =
            mpl_gds::read_layout_file(&colored_path, &mask_map, &ReadOptions::default())
                .expect("read mask layer");
        total_features += mask_layout.shape_count();
        let mask_graph =
            DecompositionGraph::build(&mask_layout, &tech, k, &StitchConfig::disabled());
        let same_mask_colors = vec![0u8; mask_graph.vertex_count()];
        let violations = verify_spacing(&mask_graph, &same_mask_colors, coloring_distance);
        assert!(
            violations.is_empty(),
            "mask layer {mask_index} has {} spacing violations",
            violations.len()
        );
    }
    assert_eq!(
        total_features,
        read_back.shape_count(),
        "the mask layers must partition the layout"
    );

    std::fs::remove_file(&input_path).ok();
    std::fs::remove_file(&colored_path).ok();
}

#[test]
fn gds_errors_surface_with_byte_offsets() {
    // A file whose second record is truncated reports the exact offset.
    let layout = synthetic_benchmark(&Technology::nm20());
    let path = temp_path("trunc.gds");
    mpl_gds::write_layout_file(&path, &layout, 1, 0).expect("write");
    let mut bytes = std::fs::read(&path).expect("read bytes");
    bytes.truncate(9);
    std::fs::write(&path, &bytes).expect("rewrite");
    let error = mpl_gds::read_layout_file(&path, &LayerMap::all(), &ReadOptions::default())
        .expect_err("truncated file must fail");
    let message = error.to_string();
    assert!(
        message.contains("byte 6"),
        "error should carry the record offset: {message}"
    );
    std::fs::remove_file(&path).ok();
}
