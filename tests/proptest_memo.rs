//! Property-based tests of the memoization subsystem's two core
//! guarantees:
//!
//! 1. **Translation invariance** — the canonical signature of a component
//!    depends only on its shape relative to its own bounding box, so any
//!    translated copy of a layout produces the identical signature list.
//! 2. **Determinism** — a coloring stamped from a warm cache is
//!    bit-identical to the coloring a cold (fresh) cache produces for the
//!    same layout, for every engine and both executors.  This is the
//!    property that makes the cache safe to share across batches,
//!    sessions, and serve connections.

use mpl_core::{
    component_signatures, ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionSession,
    Executor, MemoCache, SerialExecutor, ThreadPoolExecutor,
};
use mpl_geometry::Nm;
use mpl_layout::{Layout, Technology};
use proptest::prelude::*;
use std::sync::Arc;

/// Grid features (contact or short wire) rendered at an arbitrary origin.
/// Generating the *same* features at two origins yields exact translates.
fn layout_at(features: &[(i64, i64, bool)], origin: (i64, i64), name: &str) -> Layout {
    let mut builder = Layout::builder(name);
    for &(gx, gy, is_wire) in features {
        let x = Nm(origin.0 + gx * 40);
        let y = Nm(origin.1 + gy * 60);
        if is_wire {
            builder.add_rect(mpl_geometry::Rect::new(x, y, x + Nm(140), y + Nm(20)));
        } else {
            builder.add_contact(x, y, Nm(20));
        }
    }
    builder.build()
}

fn arb_features() -> impl Strategy<Value = Vec<(i64, i64, bool)>> {
    prop::collection::vec((0i64..14, 0i64..6, prop::bool::weighted(0.25)), 1..32)
}

/// Runs `layout` through a memoized session and returns the coloring.
fn memoized_colors(
    layout: &Layout,
    algorithm: ColorAlgorithm,
    executor: &dyn Executor,
    cache: Arc<MemoCache>,
) -> Vec<u8> {
    let config = DecomposerConfig::quadruple(Technology::nm20()).with_algorithm(algorithm);
    let decomposer = Decomposer::new(config);
    let mut session = DecompositionSession::new().with_memo(cache);
    session
        .submit_layout(&decomposer, layout)
        .expect("valid config");
    let results = session.run(executor);
    results
        .into_iter()
        .next()
        .expect("one layout")
        .1
        .colors()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn translated_copies_share_every_component_signature(
        features in arb_features(),
        dx in -3i64..=3,
        dy in -3i64..=3,
    ) {
        let base = layout_at(&features, (0, 0), "memo-base");
        let moved = layout_at(&features, (dx * 1_000, dy * 1_000), "memo-moved");
        let config = DecomposerConfig::quadruple(Technology::nm20())
            .with_algorithm(ColorAlgorithm::Linear);
        let decomposer = Decomposer::new(config);
        let base_plan = decomposer.plan(&base).expect("valid config");
        let moved_plan = decomposer.plan(&moved).expect("valid config");
        prop_assert_eq!(
            component_signatures(&base_plan),
            component_signatures(&moved_plan)
        );
    }

    #[test]
    fn warm_stamps_are_bit_identical_to_cold_colorings_for_every_engine(
        features in arb_features(),
    ) {
        let layout = layout_at(&features, (0, 0), "memo-roundtrip");
        let pool = ThreadPoolExecutor::new(2).expect("two threads");
        for algorithm in [
            ColorAlgorithm::Ilp,
            ColorAlgorithm::SdpBacktrack,
            ColorAlgorithm::SdpGreedy,
            ColorAlgorithm::Linear,
        ] {
            let executors: [&dyn Executor; 2] = [&SerialExecutor, &pool];
            for executor in executors {
                // Cold: a fresh cache colors every component and fills
                // itself.  Warm: the same cache serves every component by
                // stamping.  The colorings must agree bit for bit.
                let cache = Arc::new(MemoCache::new(1024));
                let cold = memoized_colors(&layout, algorithm, executor, Arc::clone(&cache));
                let before = cache.stats();
                let warm = memoized_colors(&layout, algorithm, executor, Arc::clone(&cache));
                let after = cache.stats();
                prop_assert_eq!(&cold, &warm, "algorithm {:?} diverged", algorithm);
                // The warm run was served entirely from the cache: the
                // miss counter did not move.
                prop_assert_eq!(after.misses, before.misses);
                prop_assert!(after.hits > before.hits || layout.is_empty());
            }
        }
    }
}
