//! Property-based tests of the cell-level hierarchical driver's two core
//! guarantees, checked against the flat pipeline on bit-cell arrays of
//! random dimensions:
//!
//! 1. **Isolated-instance identity** — when no component crosses an
//!    instance boundary, every component is resident or a whole-instance
//!    stamp and the hierarchical coloring is bit-identical to the flat
//!    *memoized* session's, for every engine and both executors.  This is
//!    the contract that lets the driver skip reconciliation entirely for
//!    well-separated standard-cell rows.
//! 2. **Spacing consistency** — for arrays whose cell geometry merges
//!    across instance boundaries (the case reconciliation exists for),
//!    the merged coloring answers to the same geometric checker as a flat
//!    run: every spacing violation is a counted conflict, nothing hides in
//!    an instance seam, and reconciliation never increases the number of
//!    cross-instance conflicts.

use mpl_core::{
    verify_spacing, ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionSession, Executor,
    MemoCache, SerialExecutor, ThreadPoolExecutor,
};
use mpl_hier::fixtures::{bit_cell_array, BitArrayStyle};
use mpl_hier::{run_hier, HierStats};
use mpl_layout::{Layout, LayoutHierarchy, Technology};
use proptest::prelude::*;
use std::sync::Arc;

const ENGINES: [ColorAlgorithm; 4] = [
    ColorAlgorithm::Ilp,
    ColorAlgorithm::SdpBacktrack,
    ColorAlgorithm::SdpGreedy,
    ColorAlgorithm::Linear,
];

/// Runs `layout` flat through a memoized session and returns its coloring.
/// The memo cache is what the hierarchical driver shares semantics with:
/// stamped colorings are a pure function of the component's canonical
/// signature, independent of executor and cache state.
fn flat_memo_colors(
    layout: &Layout,
    algorithm: ColorAlgorithm,
    executor: &dyn Executor,
) -> Vec<u8> {
    let config = DecomposerConfig::quadruple(Technology::nm20()).with_algorithm(algorithm);
    let decomposer = Decomposer::new(config);
    let mut session = DecompositionSession::new()
        .with_memo(Arc::new(MemoCache::new(MemoCache::DEFAULT_CAPACITY)));
    session
        .submit_layout(&decomposer, layout)
        .expect("valid config");
    session
        .run(executor)
        .into_iter()
        .next()
        .expect("one layout")
        .1
        .colors()
        .to_vec()
}

/// Runs `layout` through the hierarchical driver and returns the merged
/// coloring, the reported conflict count, the hierarchy stats, and the
/// spacing-violation count of the merged coloring under the flat checker.
fn hier_outcome(
    layout: &Layout,
    hierarchy: LayoutHierarchy,
    algorithm: ColorAlgorithm,
    executor: &dyn Executor,
) -> (Vec<u8>, usize, HierStats, usize) {
    let config = DecomposerConfig::quadruple(Technology::nm20()).with_algorithm(algorithm);
    let decomposer = Decomposer::new(config);
    let mut session = DecompositionSession::new();
    let id = session
        .submit_layout(&decomposer, layout)
        .expect("valid config");
    session.set_hierarchy(id, Some(Arc::new(hierarchy)));
    let results = run_hier(&session, executor).expect("no tiling attached");
    let (id, hier) = results.into_iter().next().expect("one layout");
    let plan = session.plan(id).expect("plan retained");
    let violations = verify_spacing(
        plan.graph(),
        hier.result.colors(),
        Technology::nm20().coloring_distance(4),
    )
    .len();
    (
        hier.result.colors().to_vec(),
        hier.result.conflicts(),
        hier.stats,
        violations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn isolated_arrays_reproduce_flat_memoized_bits_for_every_engine(
        nx in 1usize..5,
        ny in 1usize..4,
    ) {
        let pool = ThreadPoolExecutor::new(2).expect("two threads");
        for algorithm in ENGINES {
            let executors: [&dyn Executor; 2] = [&SerialExecutor, &pool];
            for executor in executors {
                let (layout, hierarchy) = bit_cell_array(nx, ny, BitArrayStyle::Isolated);
                let flat = flat_memo_colors(&layout, algorithm, executor);
                let (hier, conflicts, stats, violations) =
                    hier_outcome(&layout, hierarchy, algorithm, executor);
                prop_assert_eq!(
                    &hier, &flat,
                    "algorithm {:?} diverged from the flat memoized path on a {}x{} isolated array",
                    algorithm, nx, ny
                );
                prop_assert_eq!(
                    stats.split_components, 0,
                    "no component crosses an instance boundary in the isolated style"
                );
                prop_assert_eq!(stats.instance_pieces, 0, "nothing to reconcile");
                prop_assert_eq!(stats.cross_conflicts_after, 0);
                prop_assert_eq!(violations, conflicts);
            }
        }
    }

    #[test]
    fn merged_arrays_are_spacing_consistent_for_every_engine(
        nx in 2usize..6,
        ny in 1usize..4,
    ) {
        let pool = ThreadPoolExecutor::new(2).expect("two threads");
        for algorithm in ENGINES {
            let executors: [&dyn Executor; 2] = [&SerialExecutor, &pool];
            for executor in executors {
                let (layout, hierarchy) = bit_cell_array(nx, ny, BitArrayStyle::Merged);
                let (_, conflicts, stats, violations) =
                    hier_outcome(&layout, hierarchy, algorithm, executor);
                prop_assert_eq!(
                    violations, conflicts,
                    "algorithm {:?} on a {}x{} merged array: merged coloring has {} spacing \
                     violations but reports {} conflicts",
                    algorithm, nx, ny, violations, conflicts
                );
                prop_assert!(
                    stats.cross_conflicts_after <= stats.cross_conflicts_before,
                    "algorithm {:?}: reconciliation went from {} to {} cross-instance conflicts",
                    algorithm, stats.cross_conflicts_before, stats.cross_conflicts_after
                );
                prop_assert_eq!(
                    stats.instance_pieces, nx * ny,
                    "the merged tab chains every instance into one split component"
                );
            }
        }
    }
}
