//! Golden-file tests pinning the `qpl-decompose --json` output schemas.
//!
//! The single-layout and batch JSON shapes are consumed by scripts, CI
//! checks and now the wire protocol's siblings — they must not drift
//! silently.  Each test runs the real binary on committed fixture layouts
//! and compares the parsed output against a committed golden document
//! after **float normalisation**: every timing/throughput field (keys
//! ending in `seconds` or `_per_sec`) is zeroed on both sides, everything
//! else — including key order, which the parser preserves — must match
//! exactly.
//!
//! To regenerate after an *intentional* schema change:
//!
//! ```text
//! cargo run --bin qpl-decompose -- --layout tests/fixtures/golden_a.txt \
//!     --algorithm linear --verify --json > tests/golden/single_layout.json
//! cargo run --bin qpl-decompose -- tests/fixtures/golden_a.txt \
//!     tests/fixtures/golden_b.txt --algorithm linear --verify --json \
//!     > tests/golden/batch.json
//! cargo run --bin qpl-decompose -- --layout tests/fixtures/golden_c.txt \
//!     --algorithm linear --verify --tile-size 500 --json \
//!     > tests/golden/single_layout_tiled.json
//! cargo run --bin qpl-decompose -- --layout tests/fixtures/hier_array.gds \
//!     --algorithm linear --verify --hier --json \
//!     > tests/golden/single_layout_hier.json
//! ```
//!
//! `hier_array.gds` is a committed 522-byte GDSII stream: a `BIT` cell of
//! four 20 nm contacts plus a merge tab, stamped by a 4×3 `AREF` at the
//! 120 × 100 nm `Merged` pitch of `mpl_hier::fixtures` (tabs fuse each
//! cell's bottom row into the next column, so the whole array is one
//! conflict component that only provenance splitting can decompose).

use mpl_serve::Json;
use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Zeroes every timing/throughput number so wall-clock noise cannot fail
/// the comparison; everything structural stays.
fn normalize(value: &mut Json) {
    match value {
        Json::Array(items) => items.iter_mut().for_each(normalize),
        Json::Object(pairs) => {
            for (key, child) in pairs {
                if key.ends_with("seconds") || key.ends_with("_per_sec") {
                    if let Json::Number(number) = child {
                        *number = 0.0;
                    }
                }
                normalize(child);
            }
        }
        _ => {}
    }
}

fn run_cli(args: &[&str]) -> Json {
    let output = Command::new(env!("CARGO_BIN_EXE_qpl-decompose"))
        .args(args)
        .output()
        .expect("run qpl-decompose");
    assert!(
        output.status.success(),
        "qpl-decompose failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("JSON output is UTF-8");
    Json::parse(&stdout).expect("stdout is one valid JSON document")
}

fn golden(name: &str) -> Json {
    let path = fixture(&format!("golden/{name}"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|error| panic!("cannot read golden file {path}: {error}"));
    Json::parse(&text).expect("golden file is valid JSON")
}

fn assert_matches_golden(mut actual: Json, golden_name: &str) {
    let mut expected = golden(golden_name);
    normalize(&mut actual);
    normalize(&mut expected);
    assert_eq!(
        actual, expected,
        "`qpl-decompose --json` drifted from tests/golden/{golden_name} \
         (after float normalisation).\n  actual: {actual}\nexpected: {expected}\n\
         If the schema change is intentional, regenerate the golden file \
         (see this test file's module docs)."
    );
}

#[test]
fn single_layout_json_schema_matches_the_golden_file() {
    let actual = run_cli(&[
        "--layout",
        &fixture("fixtures/golden_a.txt"),
        "--algorithm",
        "linear",
        "--verify",
        "--json",
    ]);
    // Spot-check the deterministic load-bearing fields before the full
    // structural comparison, so failures name the likely culprit.
    assert_eq!(
        actual.get("layout").and_then(Json::as_str),
        Some("golden-a")
    );
    assert_eq!(actual.get("conflicts").and_then(Json::as_usize), Some(0));
    assert_eq!(
        actual.get("spacing_violations").and_then(Json::as_usize),
        Some(0)
    );
    assert_matches_golden(actual, "single_layout.json");
}

#[test]
fn batch_json_schema_matches_the_golden_file() {
    let actual = run_cli(&[
        &fixture("fixtures/golden_a.txt"),
        &fixture("fixtures/golden_b.txt"),
        "--algorithm",
        "linear",
        "--verify",
        "--json",
    ]);
    let layouts = actual
        .get("layouts")
        .and_then(Json::as_array)
        .expect("batch JSON has a layouts array");
    assert_eq!(layouts.len(), 2);
    // golden-b embeds a five-clique: quadruple patterning must report
    // exactly one conflict, and verification must agree.
    assert_eq!(
        layouts[1].get("conflicts").and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(
        layouts[1]
            .get("spacing_violations")
            .and_then(Json::as_usize),
        Some(1)
    );
    assert_matches_golden(actual, "batch.json");
}

#[test]
fn tiled_single_layout_json_schema_matches_the_golden_file() {
    // golden-c is a 30-contact chain at 70 nm pitch: one spanning
    // component that a 500 nm tile window must shard into five tiles.
    // The `tiles` object is additive — it only appears with --tile-size —
    // and the untiled goldens above pin its absence.
    let actual = run_cli(&[
        "--layout",
        &fixture("fixtures/golden_c.txt"),
        "--algorithm",
        "linear",
        "--verify",
        "--tile-size",
        "500",
        "--json",
    ]);
    let tiles = actual
        .get("tiles")
        .expect("tiled runs report a tiles object");
    assert_eq!(tiles.get("tiles").and_then(Json::as_usize), Some(5));
    assert_eq!(
        tiles.get("tiled_components").and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(
        tiles.get("cross_conflicts_after").and_then(Json::as_usize),
        Some(0)
    );
    assert_eq!(
        actual.get("spacing_violations").and_then(Json::as_usize),
        actual.get("conflicts").and_then(Json::as_usize)
    );
    assert_matches_golden(actual, "single_layout_tiled.json");
}

#[test]
fn hier_single_layout_json_schema_matches_the_golden_file() {
    // hier_array.gds is a 4×3 merged SRAM-like array: one spanning
    // conflict component whose provenance tags split it into 12 instance
    // pieces plus the merge-tab boundary residual.  The `hierarchy`
    // object is additive — it only appears with --hier — and the flat
    // goldens above pin its absence.
    let actual = run_cli(&[
        "--layout",
        &fixture("fixtures/hier_array.gds"),
        "--algorithm",
        "linear",
        "--verify",
        "--hier",
        "--json",
    ]);
    let hierarchy = actual
        .get("hierarchy")
        .expect("hier runs report a hierarchy object");
    assert_eq!(
        hierarchy.get("instances").and_then(Json::as_usize),
        Some(12)
    );
    assert_eq!(hierarchy.get("cells").and_then(Json::as_usize), Some(1));
    assert_eq!(
        hierarchy.get("instance_pieces").and_then(Json::as_usize),
        Some(12)
    );
    assert_eq!(
        hierarchy
            .get("cross_conflicts_after")
            .and_then(Json::as_usize),
        Some(0)
    );
    // The reconciled hierarchical coloring must be spacing-clean and its
    // conflict count must agree with the untiled verifier.
    assert_eq!(actual.get("conflicts").and_then(Json::as_usize), Some(0));
    assert_eq!(
        actual.get("spacing_violations").and_then(Json::as_usize),
        actual.get("conflicts").and_then(Json::as_usize)
    );
    assert_matches_golden(actual, "single_layout_hier.json");
}

#[test]
fn no_memo_runs_omit_every_memo_field() {
    let actual = run_cli(&[
        "--layout",
        &fixture("fixtures/golden_a.txt"),
        "--algorithm",
        "linear",
        "--no-memo",
        "--json",
    ]);
    assert!(actual.get("memo_hits").is_none());
    assert!(actual.get("memo_misses").is_none());
    assert!(actual.get("memo_cache").is_none());
    assert_eq!(actual.get("conflicts").and_then(Json::as_usize), Some(0));
}

#[test]
fn contradictory_memo_flags_are_rejected_with_typed_config_errors() {
    let run_failing = |args: &[&str]| -> String {
        let output = Command::new(env!("CARGO_BIN_EXE_qpl-decompose"))
            .args(args)
            .output()
            .expect("run qpl-decompose");
        assert!(!output.status.success(), "expected failure for {args:?}");
        String::from_utf8_lossy(&output.stderr).into_owned()
    };
    let layout = fixture("fixtures/golden_a.txt");
    let stderr = run_failing(&["--layout", &layout, "--no-memo", "--memo-capacity", "64"]);
    assert!(
        stderr.contains("--memo-capacity requires memoization to be enabled"),
        "{stderr}"
    );
    let stderr = run_failing(&["--layout", &layout, "--memo-capacity", "0"]);
    assert!(
        stderr.contains("memo capacity must be at least 1 entry"),
        "{stderr}"
    );
}

#[test]
fn single_and_batch_schemas_stay_consistent_per_layout() {
    // The per-layout objects of the batch schema must carry exactly the
    // same keys as the single-layout schema — consumers share one reader.
    let single = run_cli(&[
        "--layout",
        &fixture("fixtures/golden_a.txt"),
        "--algorithm",
        "linear",
        "--verify",
        "--json",
    ]);
    let batch = run_cli(&[
        &fixture("fixtures/golden_a.txt"),
        &fixture("fixtures/golden_b.txt"),
        "--algorithm",
        "linear",
        "--verify",
        "--json",
    ]);
    let keys = |value: &Json| -> Vec<String> {
        match value {
            Json::Object(pairs) => pairs.iter().map(|(key, _)| key.clone()).collect(),
            _ => panic!("expected an object"),
        }
    };
    let batch_layouts = batch
        .get("layouts")
        .and_then(Json::as_array)
        .expect("layouts");
    assert_eq!(keys(&single), keys(&batch_layouts[0]));
    assert_eq!(keys(&single), keys(&batch_layouts[1]));
    assert_eq!(
        keys(&batch),
        vec!["batch".to_string(), "layouts".to_string()]
    );
}
