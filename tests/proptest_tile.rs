//! Property-based tests of the tiled sharding driver's two core
//! guarantees, checked against the untiled pipeline on random layouts:
//!
//! 1. **Spacing consistency** — for any layout and any tile size, the
//!    merged tiled coloring answers to the same geometric checker as an
//!    untiled run: every spacing violation is a counted conflict, nothing
//!    hides in a window seam.  Reconciliation never increases the number
//!    of cross-window conflicts.
//! 2. **One-window identity** — when every component fits inside a single
//!    tile window, the tiled driver takes the resident path and the
//!    coloring is bit-identical to the untiled session's, for every
//!    engine and both executors.

use mpl_core::{
    verify_spacing, ColorAlgorithm, Decomposer, DecomposerConfig, DecompositionSession, Executor,
    MemoCache, SerialExecutor, ThreadPoolExecutor, TileConfig,
};
use mpl_geometry::Nm;
use mpl_layout::{Layout, Technology};
use mpl_tile::{run_tiled, TileStats};
use proptest::prelude::*;

/// Grid features (contact or short wire) on a 40×60 nm step — the same
/// generator the memo properties use, dense enough that neighbouring
/// features conflict and components can straddle small tile windows.
fn layout_from(features: &[(i64, i64, bool)], name: &str) -> Layout {
    let mut builder = Layout::builder(name);
    for &(gx, gy, is_wire) in features {
        let x = Nm(gx * 40);
        let y = Nm(gy * 60);
        if is_wire {
            builder.add_rect(mpl_geometry::Rect::new(x, y, x + Nm(140), y + Nm(20)));
        } else {
            builder.add_contact(x, y, Nm(20));
        }
    }
    builder.build()
}

fn arb_features() -> impl Strategy<Value = Vec<(i64, i64, bool)>> {
    prop::collection::vec((0i64..14, 0i64..6, prop::bool::weighted(0.25)), 1..32)
}

const ENGINES: [ColorAlgorithm; 4] = [
    ColorAlgorithm::Ilp,
    ColorAlgorithm::SdpBacktrack,
    ColorAlgorithm::SdpGreedy,
    ColorAlgorithm::Linear,
];

/// Runs `layout` untiled and returns its coloring.
fn untiled_colors(layout: &Layout, algorithm: ColorAlgorithm, executor: &dyn Executor) -> Vec<u8> {
    let config = DecomposerConfig::quadruple(Technology::nm20()).with_algorithm(algorithm);
    let decomposer = Decomposer::new(config);
    let mut session = DecompositionSession::new();
    session
        .submit_layout(&decomposer, layout)
        .expect("valid config");
    let results = session.run(executor);
    results
        .into_iter()
        .next()
        .expect("one layout")
        .1
        .colors()
        .to_vec()
}

/// Runs `layout` through the tiled driver and returns the coloring, the
/// reported conflict count, the tile stats, and the spacing-violation
/// count of the merged coloring under the untiled checker.
fn tiled_outcome(
    layout: &Layout,
    algorithm: ColorAlgorithm,
    executor: &dyn Executor,
    tiling: TileConfig,
) -> (Vec<u8>, usize, TileStats, usize) {
    let config = DecomposerConfig::quadruple(Technology::nm20()).with_algorithm(algorithm);
    let decomposer = Decomposer::new(config);
    let mut session = DecompositionSession::new().with_tiling(tiling);
    session
        .submit_layout(&decomposer, layout)
        .expect("valid config");
    let results = run_tiled(&session, executor).expect("valid tiling");
    let (id, tiled) = results.into_iter().next().expect("one layout");
    let plan = session.plan(id).expect("plan retained");
    let violations = verify_spacing(
        plan.graph(),
        tiled.result.colors(),
        Technology::nm20().coloring_distance(4),
    )
    .len();
    (
        tiled.result.colors().to_vec(),
        tiled.result.conflicts(),
        tiled.stats,
        violations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn tiled_colorings_are_spacing_consistent_for_every_engine(
        features in arb_features(),
        tile_step in 0usize..3,
    ) {
        let layout = layout_from(&features, "tile-prop");
        let tile_size = Nm([200, 300, 450][tile_step]);
        let pool = ThreadPoolExecutor::new(2).expect("two threads");
        for algorithm in ENGINES {
            let executors: [&dyn Executor; 2] = [&SerialExecutor, &pool];
            for executor in executors {
                let (_, conflicts, stats, violations) =
                    tiled_outcome(&layout, algorithm, executor, TileConfig::new(tile_size));
                prop_assert_eq!(
                    violations, conflicts,
                    "algorithm {:?}, tile {}: merged coloring has {} spacing violations but reports {} conflicts",
                    algorithm, tile_size, violations, conflicts
                );
                prop_assert!(
                    stats.cross_conflicts_after <= stats.cross_conflicts_before,
                    "algorithm {:?}, tile {}: reconciliation went from {} to {} cross-window conflicts",
                    algorithm, tile_size, stats.cross_conflicts_before, stats.cross_conflicts_after
                );
            }
        }
    }

    #[test]
    fn one_window_tilings_reproduce_untiled_bits_for_every_engine(
        features in arb_features(),
    ) {
        let layout = layout_from(&features, "tile-prop-one-window");
        let pool = ThreadPoolExecutor::new(2).expect("two threads");
        // The feature grid spans < 1 µm, so every component fits one window.
        let tiling = TileConfig::new(Nm(1_000_000));
        for algorithm in ENGINES {
            let executors: [&dyn Executor; 2] = [&SerialExecutor, &pool];
            for executor in executors {
                let untiled = untiled_colors(&layout, algorithm, executor);
                let (tiled, conflicts, stats, violations) =
                    tiled_outcome(&layout, algorithm, executor, tiling);
                prop_assert_eq!(
                    &tiled, &untiled,
                    "algorithm {:?} diverged on the one-window path", algorithm
                );
                prop_assert_eq!(stats.tiles, 0, "nothing should shard");
                prop_assert_eq!(stats.grid_x, 1);
                prop_assert_eq!(stats.grid_y, 1);
                prop_assert_eq!(stats.tiled_components, 0);
                prop_assert_eq!(violations, conflicts);
            }
        }
    }
}

/// Memo × tiling regression: a tiled run over a repeated-array layout must
/// hit the shared memo cache across tile windows — the strips land in
/// different windows but are exact translates, so only one canonical strip
/// is ever colored and the rest are stamped — and the merged coloring must
/// stay bit-identical to the untiled memoized run.
#[test]
fn tiled_repeated_arrays_hit_the_shared_memo_across_tiles() {
    use mpl_layout::gen;
    use std::sync::Arc;

    let tech = Technology::nm20();
    // 4×3 identical dense strips, 400 nm of clear space between them: every
    // strip is resident in its own window under a 600 nm tiling, and all
    // twelve share one canonical signature.
    let layout = gen::repeated_strip_array(&tech, 4, 3, 6, Nm(400));
    let config = DecomposerConfig::quadruple(tech).with_algorithm(ColorAlgorithm::Linear);
    let decomposer = Decomposer::new(config);
    let cache = Arc::new(MemoCache::new(MemoCache::DEFAULT_CAPACITY));

    let tiled_run = |cache: &Arc<MemoCache>| {
        let mut session = DecompositionSession::new()
            .with_memo(Arc::clone(cache))
            .with_tiling(TileConfig::new(Nm(600)));
        session
            .submit_layout(&decomposer, &layout)
            .expect("valid config");
        let results = run_tiled(&session, &SerialExecutor).expect("valid tiling");
        results.into_iter().next().expect("one layout").1
    };

    let cold = tiled_run(&cache);
    // The grid actually sharded the chip, and the cache was shared across
    // those windows: one canonical strip colored fresh, the other eleven
    // stamped from it at collection time even though they sit in different
    // tile windows.
    assert!(
        cold.stats.grid_x > 1 && cold.stats.grid_y > 1,
        "the array should span a multi-window grid, got {}x{}",
        cold.stats.grid_x,
        cold.stats.grid_y
    );
    assert_eq!(cold.stats.resident_components, 12);
    assert_eq!(cold.result.memo_misses(), Some(1), "one lead coloring");
    assert_eq!(cold.result.memo_hits(), Some(11), "eleven stamped copies");
    assert_eq!(cache.stats().entries, 1, "one canonical strip stored");

    // A second tiled run against the now-warm shared cache stamps every
    // strip straight from the cache — true cross-run hits.
    let warm = tiled_run(&cache);
    assert_eq!(warm.result.memo_hits(), Some(12));
    assert_eq!(cache.stats().hits, 12);
    assert_eq!(warm.result.colors(), cold.result.colors());

    // Bit-identical to the untiled memoized run (with its own fresh cache).
    let mut flat_session = DecompositionSession::new()
        .with_memo(Arc::new(MemoCache::new(MemoCache::DEFAULT_CAPACITY)));
    flat_session
        .submit_layout(&decomposer, &layout)
        .expect("valid config");
    let flat = flat_session
        .run(&SerialExecutor)
        .into_iter()
        .next()
        .expect("one layout")
        .1;
    // The dense strip is deliberately over-constrained (some conflicts are
    // unavoidable at K = 4), so the regression pin is identity with the
    // flat memoized run, not zero conflicts.
    assert_eq!(cold.result.colors(), flat.colors());
    assert_eq!(cold.result.conflicts(), flat.conflicts());
}
