//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The workspace must build without network access, so this vendored crate
//! reimplements the subset of the proptest API used by the test suites:
//!
//! * [`strategy::Strategy`] with `prop_map` and `prop_flat_map` combinators,
//! * integer range strategies (`0i64..100`, `2usize..=5`, …),
//! * tuple strategies up to arity 6,
//! * [`collection::vec`] and [`bool::weighted`],
//! * [`test_runner::ProptestConfig`] (`with_cases`),
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Values are generated from a deterministic per-test RNG (seeded from the
//! test's module path and name), so failures are reproducible. Unlike the
//! real proptest there is **no shrinking**: a failing case reports the case
//! number and the assertion message only.

#![forbid(unsafe_code)]

/// Test-runner configuration and error types.
pub mod test_runner {
    use std::fmt;

    /// Configuration for a `proptest!` block; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by a `prop_assert*` macro inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runs one property-test case; exists so the [`crate::proptest!`] macro
    /// can wrap bodies without an immediately-invoked closure.
    pub fn run_case(case: impl FnOnce() -> Result<(), TestCaseError>) -> Result<(), TestCaseError> {
        case()
    }

    /// Deterministic splitmix64 RNG used to drive value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test identifier (module path + test name).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test path gives a stable, well-mixed seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The `Strategy` trait and combinator types.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// This mirrors the real proptest trait shape (`Strategy<Value = T>`)
    /// closely enough that `impl Strategy<Value = T>` return types and the
    /// `prop_map`/`prop_flat_map` combinators work unchanged.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = rng.below(span) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    let offset = rng.below(span) as i128;
                    (start as i128 + offset) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for [`vec()`]: a fixed length or a length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::weighted`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        probability: f64,
    }

    /// Generates `true` with probability `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.probability
        }
    }
}

/// The `prop::` namespace used by idiomatic proptest code
/// (`prop::collection::vec`, `prop::bool::weighted`).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left != *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left != *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests.
///
/// Supports the common form used across this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..100, v in prop::collection::vec(0u8..10, 1..5)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!(cfg = ($cfg); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests!(
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                )+
                let outcome = $crate::test_runner::run_case(|| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(error) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, error);
                }
            }
        }
        $crate::__proptest_tests!(cfg = ($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        // Overwhelmingly likely to differ for different seeds.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (-5i64..7).new_value(&mut rng);
            assert!((-5..7).contains(&v));
            let w = (2usize..=5).new_value(&mut rng);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..3, 1..4).new_value(&mut rng);
            assert!(!v.is_empty() && v.len() <= 3);
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_compiles_and_runs(x in 0i64..10, flip in prop::bool::weighted(0.5)) {
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, x + 1);
        }
    }
}
