//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate (0.8 API).
//!
//! The workspace must build without network access, so this vendored crate
//! implements the subset of the rand API used here: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer and float ranges.
//!
//! The generator is splitmix64: deterministic, fast, and statistically fine
//! for synthetic-layout generation and solver initialisation, but **not**
//! cryptographically secure.

#![forbid(unsafe_code)]

/// Types that can seed an RNG, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value interface, mirroring the parts of `rand::Rng` in use.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value within a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `probability` (must be in `[0, 1]`).
    fn gen_bool(&mut self, probability: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&probability),
            "gen_bool probability {probability} outside [0, 1]"
        );
        uniform_f64(self.next_u64()) < probability
    }
}

fn uniform_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that [`Rng::gen_range`] can sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = (rng.next_u64() % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                let offset = (rng.next_u64() % span) as i128;
                (start as i128 + offset) as $ty
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, deterministic generator (splitmix64 underneath).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..9);
            assert!((-3..9).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
