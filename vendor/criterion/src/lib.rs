//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The workspace must build without network access, so this vendored crate
//! implements just enough of the criterion API for the benches under
//! `crates/mpl-bench/benches/` to compile and run: benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling, each benchmark is timed for
//! a small fixed number of iterations (default 3, configurable with
//! `sample_size`) and the mean wall-clock time per iteration is printed to
//! stdout. That keeps `cargo bench` useful for coarse regression tracking
//! while remaining dependency-free.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimisation barrier.
pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 3,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times `routine` with access to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
            timed_iterations: 0,
        };
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Times `routine` without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
            timed_iterations: 0,
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing harness handed to benchmark routines.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
    timed_iterations: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly (one warm-up pass plus the configured
    /// number of timed iterations) and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.timed_iterations += self.iterations;
    }

    fn report(&self, group: &str, label: &str) {
        if self.timed_iterations == 0 {
            println!("{group}/{label}: no iterations recorded");
        } else {
            let per_iteration = self.elapsed / self.timed_iterations as u32;
            println!(
                "{group}/{label}: {:.6} s/iter over {} iterations",
                per_iteration.as_secs_f64(),
                self.timed_iterations
            );
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test");
        group.sample_size(2);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &input| {
            b.iter(|| {
                calls += 1;
                input + 1
            });
        });
        group.finish();
        // One warm-up pass plus two timed iterations.
        assert_eq!(calls, 3);
    }

    #[test]
    fn benchmark_ids_format_labels() {
        assert_eq!(BenchmarkId::new("algo", "k4").label, "algo/k4");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
